#![warn(missing_docs)]

//! The extensible scheduling language of UGC (paper §III-D).
//!
//! UGC decouples the algorithm from its optimization schedule. Because
//! every backend supports different optimizations, each GraphVM defines its
//! own scheduling types (`SimpleGPUSchedule`, `SimpleHBSchedule`, …, living
//! in the backend crates), all implementing the hardware-independent
//! [`SimpleSchedule`] interface of the paper's Table IV. The
//! hardware-independent compiler only ever queries that interface — e.g.
//! the atomics-insertion pass asks for [`SimpleSchedule::direction`] and
//! [`SimpleSchedule::parallelization`] — while backends downcast via
//! [`SimpleSchedule::as_any`] to reach their hardware-specific knobs.
//!
//! Hybrid schedules that switch on a runtime value (Table V / Fig. 6a) are
//! expressed with [`CompositeSchedule`], which pairs two schedules with a
//! [`CompositeCriteria`].
//!
//! Schedules are attached to labeled statements with [`apply_schedule`],
//! mirroring the paper's `program->applyGPUSchedule("s0:s1", sched)`.
//!
//! # Example
//!
//! ```
//! use ugc_schedule::{DefaultSchedule, ScheduleRef, SimpleSchedule, SchedDirection};
//!
//! let sched = DefaultSchedule::new();
//! assert_eq!(sched.direction(), SchedDirection::Push);
//! let r: ScheduleRef = ScheduleRef::simple(sched);
//! assert!(r.as_simple().is_some());
//! ```

pub mod space;

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use ugc_graphir::ir::{Program, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::visit::walk_stmts_mut;

/// Parallelization scheme (Table IV `getParallelization`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelization {
    /// One unit of work per active vertex.
    #[default]
    VertexBased,
    /// One unit of work per edge.
    EdgeBased,
    /// Vertex-based, but chunked by degree so heavy vertices are split
    /// (GraphIt's edge-aware vertex parallelism).
    EdgeAwareVertexBased,
}

/// Traversal direction requested by a schedule (Table IV `getDirection`).
///
/// Unlike the IR-level [`ugc_graphir::types::Direction`], a schedule may
/// request `Hybrid`, which the hardware-independent compiler lowers into a
/// runtime condition choosing between push and pull (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedDirection {
    /// Iterate out-edges of the frontier.
    #[default]
    Push,
    /// Iterate in-edges of candidate destinations.
    Pull,
    /// Direction-optimizing: switch between push and pull on frontier
    /// density.
    Hybrid,
}

/// Representation used for the input frontier when pulling (Table IV
/// `getPullFrontier`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PullFrontierRepr {
    /// One byte per vertex.
    #[default]
    Boolmap,
    /// One bit per vertex.
    Bitmap,
}

/// The hardware-independent schedule interface (paper Table IV).
///
/// Backend-specific schedule types implement this trait; defaults match the
/// paper's baseline schedule (push, vertex-based, no dedup).
pub trait SimpleSchedule: fmt::Debug + Send + Sync {
    /// Parallelization scheme.
    fn parallelization(&self) -> Parallelization {
        Parallelization::VertexBased
    }

    /// Traversal direction.
    fn direction(&self) -> SchedDirection {
        SchedDirection::Push
    }

    /// Pull-side frontier representation.
    fn pull_frontier(&self) -> PullFrontierRepr {
        PullFrontierRepr::Boolmap
    }

    /// Whether the output frontier must be explicitly deduplicated.
    fn deduplication(&self) -> bool {
        false
    }

    /// ∆ bucket width for priority-queue algorithms.
    fn delta(&self) -> i64 {
        1
    }

    /// Frontier-density threshold (fraction of |V|) at which hybrid
    /// direction switches from push to pull.
    fn hybrid_threshold(&self) -> f64 {
        0.15
    }

    /// Downcast hook for backends to reach hardware-specific options.
    fn as_any(&self) -> &dyn Any;
}

/// Runtime criteria of a [`CompositeSchedule`] (Fig. 6a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompositeCriteria {
    /// Use the first schedule while
    /// `|input frontier| < threshold × |V|`, else the second.
    InputSetSize {
        /// Fraction of total vertices.
        threshold: f64,
    },
}

/// A hybrid schedule switching between two schedules on a runtime value
/// (paper Table V).
#[derive(Debug, Clone)]
pub struct CompositeSchedule {
    criteria: CompositeCriteria,
    first: ScheduleRef,
    second: ScheduleRef,
}

impl CompositeSchedule {
    /// Creates a hybrid schedule: `first` is used when the criteria holds.
    pub fn new(criteria: CompositeCriteria, first: ScheduleRef, second: ScheduleRef) -> Self {
        CompositeSchedule {
            criteria,
            first,
            second,
        }
    }

    /// The switch criteria.
    pub fn criteria(&self) -> CompositeCriteria {
        self.criteria
    }

    /// The first schedule (Table V `getFirstSchedule`).
    pub fn first_schedule(&self) -> &ScheduleRef {
        &self.first
    }

    /// The second schedule (Table V `getSecondSchedule`).
    pub fn second_schedule(&self) -> &ScheduleRef {
        &self.second
    }
}

/// A shared handle to a schedule: simple or composite.
#[derive(Debug, Clone)]
pub enum ScheduleRef {
    /// A single schedule object.
    Simple(Arc<dyn SimpleSchedule>),
    /// A hybrid schedule (may nest further composites).
    Composite(Arc<CompositeSchedule>),
}

impl ScheduleRef {
    /// Wraps a concrete simple schedule.
    pub fn simple<S: SimpleSchedule + 'static>(s: S) -> Self {
        ScheduleRef::Simple(Arc::new(s))
    }

    /// Wraps a composite schedule.
    pub fn composite(c: CompositeSchedule) -> Self {
        ScheduleRef::Composite(Arc::new(c))
    }

    /// Returns the simple schedule if this is not a composite.
    pub fn as_simple(&self) -> Option<&Arc<dyn SimpleSchedule>> {
        match self {
            ScheduleRef::Simple(s) => Some(s),
            ScheduleRef::Composite(_) => None,
        }
    }

    /// Returns the composite if this is one.
    pub fn as_composite(&self) -> Option<&Arc<CompositeSchedule>> {
        match self {
            ScheduleRef::Composite(c) => Some(c),
            ScheduleRef::Simple(_) => None,
        }
    }

    /// The "representative" simple schedule: itself, or the first leaf of a
    /// composite — used by hardware-independent passes that need a single
    /// answer (e.g. deduplication) regardless of the runtime branch.
    pub fn representative(&self) -> &Arc<dyn SimpleSchedule> {
        match self {
            ScheduleRef::Simple(s) => s,
            ScheduleRef::Composite(c) => c.first_schedule().representative(),
        }
    }

    /// Whether any leaf schedule requests `Hybrid` direction or this is a
    /// composite (both lower to runtime conditions).
    pub fn needs_runtime_branch(&self) -> bool {
        match self {
            ScheduleRef::Simple(s) => s.direction() == SchedDirection::Hybrid,
            ScheduleRef::Composite(_) => true,
        }
    }
}

/// The hardware-independent *schedule point* of one edge traversal: the
/// subset of a schedule that selects a specialized kernel.
///
/// Backends that compile monomorphized traversal kernels (rather than
/// interpreting GraphIR per edge) key their kernel tables on this value
/// plus operator-level facts only they can see (UDF shape, property
/// widths, weightedness). Deriving the point here — next to the schedule
/// types themselves — keeps the key space in one place: a new knob on
/// [`SimpleSchedule`] that affects traversal must be added to this struct
/// before any backend can specialize on it.
///
/// The point is `Copy`, `Eq` and `Hash` so it can be used directly as (part
/// of) a `HashMap` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SchedulePoint {
    /// Traversal direction. `Hybrid` only appears when the point is taken
    /// before the hardware-independent compiler lowers direction choice to
    /// a runtime branch; post-midend statements carry `Push` or `Pull`.
    pub direction: SchedDirection,
    /// Parallelization scheme.
    pub parallelization: Parallelization,
    /// Whether the output frontier must be deduplicated.
    pub deduplication: bool,
    /// Pull-side input frontier representation.
    pub pull_frontier: PullFrontierRepr,
}

impl SchedulePoint {
    /// The point of a concrete schedule.
    pub fn of(sched: &dyn SimpleSchedule) -> Self {
        SchedulePoint {
            direction: sched.direction(),
            parallelization: sched.parallelization(),
            deduplication: sched.deduplication(),
            pull_frontier: sched.pull_frontier(),
        }
    }

    /// The point of the statement's attached schedule (its representative
    /// leaf for composites), or the baseline point when none is attached.
    pub fn of_stmt(stmt: &Stmt) -> Self {
        match schedule_of(stmt) {
            Some(r) => Self::of(r.representative().as_ref()),
            None => Self::of(&DefaultSchedule),
        }
    }
}

/// The default (baseline) schedule used when none is supplied — the paper's
/// "baseline, unoptimized code generated by applying the default schedule":
/// push direction, vertex-based parallelism, no deduplication, ∆ = 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSchedule;

impl DefaultSchedule {
    /// Creates the default schedule.
    pub fn new() -> Self {
        DefaultSchedule
    }
}

impl SimpleSchedule for DefaultSchedule {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Error returned by [`apply_schedule`] when the label path does not match
/// any statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyScheduleError {
    /// The path that failed to resolve.
    pub path: String,
}

impl fmt::Display for ApplyScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no statement matches schedule label path `{}`",
            self.path
        )
    }
}

impl std::error::Error for ApplyScheduleError {}

/// Attaches `sched` to the statement identified by `path` in `main`.
///
/// `path` is a `:`-separated chain of labels (`"s0:s1"` = the statement
/// labeled `s1` nested inside the statement labeled `s0`); a single label
/// targets that statement directly. The schedule is stored in the
/// statement's metadata under [`keys::SCHEDULE`].
///
/// # Errors
///
/// Returns [`ApplyScheduleError`] when no statement matches.
///
/// # Example
///
/// ```
/// use ugc_graphir::ir::{Program, Stmt, StmtKind, Expr};
/// use ugc_schedule::{apply_schedule, DefaultSchedule, ScheduleRef};
///
/// let mut p = Program::new();
/// p.main.push(Stmt::labeled("s0", StmtKind::Print(Expr::int(1))));
/// apply_schedule(&mut p, "s0", ScheduleRef::simple(DefaultSchedule::new())).unwrap();
/// assert!(p.main[0].meta.contains(ugc_graphir::keys::SCHEDULE));
/// ```
pub fn apply_schedule(
    prog: &mut Program,
    path: &str,
    sched: ScheduleRef,
) -> Result<(), ApplyScheduleError> {
    let segments: Vec<&str> = path.split(':').map(str::trim).collect();
    if segments.is_empty() || segments.iter().any(|s| s.is_empty()) {
        return Err(ApplyScheduleError { path: path.into() });
    }
    if attach_in(&mut prog.main, &segments, &sched) {
        Ok(())
    } else {
        Err(ApplyScheduleError { path: path.into() })
    }
}

fn attach_in(stmts: &mut [Stmt], segments: &[&str], sched: &ScheduleRef) -> bool {
    let (head, rest) = (segments[0], &segments[1..]);
    let mut attached = false;
    for s in stmts.iter_mut() {
        if s.label.as_deref() == Some(head) {
            if rest.is_empty() {
                s.meta.set_any(keys::SCHEDULE, Arc::new(sched.clone()));
                attached = true;
            } else if let Some(body) = stmt_bodies(s) {
                for b in body {
                    if attach_in(b, rest, sched) {
                        attached = true;
                    }
                }
            }
        } else if let Some(body) = stmt_bodies(s) {
            // Labels may be nested deeper without intermediate labels.
            for b in body {
                if attach_in(b, segments, sched) {
                    attached = true;
                }
            }
        }
    }
    attached
}

fn stmt_bodies(s: &mut Stmt) -> Option<Vec<&mut Vec<Stmt>>> {
    match &mut s.kind {
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => Some(vec![then_body, else_body]),
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => Some(vec![body]),
        _ => None,
    }
}

/// Reads the schedule attached to a statement, if any.
pub fn schedule_of(stmt: &Stmt) -> Option<ScheduleRef> {
    stmt.meta
        .get_any::<ScheduleRef>(keys::SCHEDULE)
        .map(|arc| (*arc).clone())
}

/// Removes every attached schedule (used when re-scheduling a program).
pub fn clear_schedules(prog: &mut Program) {
    walk_stmts_mut(&mut prog.main, &mut |s| {
        s.meta.remove(keys::SCHEDULE);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graphir::ir::{EdgeSetIteratorData, Expr};

    #[derive(Debug)]
    struct PullSchedule;
    impl SimpleSchedule for PullSchedule {
        fn direction(&self) -> SchedDirection {
            SchedDirection::Pull
        }
        fn deduplication(&self) -> bool {
            true
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn program_with_loop() -> Program {
        let mut p = Program::new();
        p.main.push(Stmt::labeled(
            "s0",
            StmtKind::While {
                cond: Expr::bool(true),
                body: vec![Stmt::labeled(
                    "s1",
                    StmtKind::EdgeSetIterator(EdgeSetIteratorData::all_edges("edges", "f")),
                )],
            },
        ));
        p
    }

    #[test]
    fn default_schedule_matches_paper_baseline() {
        let s = DefaultSchedule::new();
        assert_eq!(s.direction(), SchedDirection::Push);
        assert_eq!(s.parallelization(), Parallelization::VertexBased);
        assert!(!s.deduplication());
        assert_eq!(s.delta(), 1);
    }

    #[test]
    fn apply_to_nested_path() {
        let mut p = program_with_loop();
        apply_schedule(&mut p, "s0:s1", ScheduleRef::simple(PullSchedule)).unwrap();
        let StmtKind::While { body, .. } = &p.main[0].kind else {
            panic!()
        };
        let sched = schedule_of(&body[0]).unwrap();
        assert_eq!(sched.representative().direction(), SchedDirection::Pull);
        assert!(schedule_of(&p.main[0]).is_none());
    }

    #[test]
    fn apply_to_loop_head() {
        let mut p = program_with_loop();
        apply_schedule(&mut p, "s0", ScheduleRef::simple(DefaultSchedule)).unwrap();
        assert!(schedule_of(&p.main[0]).is_some());
    }

    #[test]
    fn apply_with_skipped_intermediate_labels() {
        // Path "s1" alone should find the nested statement.
        let mut p = program_with_loop();
        apply_schedule(&mut p, "s1", ScheduleRef::simple(DefaultSchedule)).unwrap();
        let StmtKind::While { body, .. } = &p.main[0].kind else {
            panic!()
        };
        assert!(schedule_of(&body[0]).is_some());
    }

    #[test]
    fn unknown_path_errors() {
        let mut p = program_with_loop();
        let e = apply_schedule(&mut p, "sX", ScheduleRef::simple(DefaultSchedule)).unwrap_err();
        assert!(e.to_string().contains("sX"));
    }

    #[test]
    fn composite_representative_is_first_leaf() {
        let comp = CompositeSchedule::new(
            CompositeCriteria::InputSetSize { threshold: 0.15 },
            ScheduleRef::simple(DefaultSchedule),
            ScheduleRef::simple(PullSchedule),
        );
        let r = ScheduleRef::composite(comp);
        assert_eq!(r.representative().direction(), SchedDirection::Push);
        assert!(r.needs_runtime_branch());
        let c = r.as_composite().unwrap();
        assert_eq!(
            c.second_schedule().representative().direction(),
            SchedDirection::Pull
        );
    }

    #[test]
    fn nested_composites() {
        let inner = CompositeSchedule::new(
            CompositeCriteria::InputSetSize { threshold: 0.5 },
            ScheduleRef::simple(PullSchedule),
            ScheduleRef::simple(DefaultSchedule),
        );
        let outer = CompositeSchedule::new(
            CompositeCriteria::InputSetSize { threshold: 0.1 },
            ScheduleRef::composite(inner),
            ScheduleRef::simple(DefaultSchedule),
        );
        let r = ScheduleRef::composite(outer);
        assert_eq!(r.representative().direction(), SchedDirection::Pull);
    }

    #[test]
    fn clear_schedules_removes_all() {
        let mut p = program_with_loop();
        apply_schedule(&mut p, "s0:s1", ScheduleRef::simple(DefaultSchedule)).unwrap();
        clear_schedules(&mut p);
        let StmtKind::While { body, .. } = &p.main[0].kind else {
            panic!()
        };
        assert!(schedule_of(&body[0]).is_none());
    }

    #[test]
    fn schedule_point_mirrors_schedule_and_defaults() {
        let mut p = program_with_loop();
        apply_schedule(&mut p, "s0:s1", ScheduleRef::simple(PullSchedule)).unwrap();
        let StmtKind::While { body, .. } = &p.main[0].kind else {
            panic!()
        };
        let point = SchedulePoint::of_stmt(&body[0]);
        assert_eq!(point.direction, SchedDirection::Pull);
        assert!(point.deduplication);
        // Unscheduled statement: the baseline point.
        assert_eq!(SchedulePoint::of_stmt(&p.main[0]), SchedulePoint::default());
        assert_eq!(
            SchedulePoint::default(),
            SchedulePoint::of(&DefaultSchedule)
        );
    }

    #[test]
    fn downcast_reaches_concrete_type() {
        let r = ScheduleRef::simple(PullSchedule);
        let s = r.representative();
        assert!(s.as_any().downcast_ref::<PullSchedule>().is_some());
        assert!(s.as_any().downcast_ref::<DefaultSchedule>().is_none());
    }
}
