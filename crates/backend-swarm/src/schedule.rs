//! `SimpleSwarmSchedule` — the Swarm GraphVM's scheduling object (paper
//! Fig. 6c).

use std::any::Any;

use ugc_schedule::space::{
    delta_dimension, delta_value, Dimension, PruneRule, ScheduleSpace, SpaceParams,
};
use ugc_schedule::{Parallelization, SchedDirection, ScheduleRef, SimpleSchedule};

/// Task granularity for edge processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskGranularity {
    /// One task per active vertex, processing all its edges.
    #[default]
    Coarse,
    /// Per-edge-chunk subtasks with spatial hints (Fig. 5).
    FineGrained,
}

/// How frontiers are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Frontiers {
    /// Software work queues with a barrier per round (the T4 baseline).
    #[default]
    Buffered,
    /// `VERTEXSET_TO_TASKS`: rounds become timestamps; no barriers.
    VertexsetToTasks,
}

/// Swarm scheduling options.
///
/// # Example
///
/// ```
/// use ugc_backend_swarm::{SwarmSchedule, TaskGranularity, Frontiers};
///
/// let sched1 = SwarmSchedule::new()
///     .with_task_granularity(TaskGranularity::FineGrained)
///     .with_frontiers(Frontiers::VertexsetToTasks);
/// assert!(sched1.spatial_hints());
/// ```
#[derive(Debug, Clone)]
pub struct SwarmSchedule {
    direction: SchedDirection,
    granularity: TaskGranularity,
    frontiers: Frontiers,
    spatial_hints: bool,
    shuffle_edges: bool,
    privatize: bool,
    delta: i64,
}

impl Default for SwarmSchedule {
    fn default() -> Self {
        SwarmSchedule {
            direction: SchedDirection::Push,
            granularity: TaskGranularity::Coarse,
            frontiers: Frontiers::Buffered,
            spatial_hints: false,
            shuffle_edges: false,
            privatize: true,
            delta: 1,
        }
    }
}

impl SwarmSchedule {
    /// The default Swarm schedule (the T4-style baseline: coarse tasks,
    /// buffered frontiers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets traversal direction (`configDirection`).
    pub fn with_direction(mut self, d: SchedDirection) -> Self {
        self.direction = d;
        self
    }

    /// Sets task granularity (`taskGranularity`); fine granularity enables
    /// spatial hints (the two ship together in the paper's Fig. 5).
    pub fn with_task_granularity(mut self, g: TaskGranularity) -> Self {
        self.granularity = g;
        if g == TaskGranularity::FineGrained {
            self.spatial_hints = true;
        }
        self
    }

    /// Sets frontier handling (`configFrontiers`).
    pub fn with_frontiers(mut self, f: Frontiers) -> Self {
        self.frontiers = f;
        self
    }

    /// Explicitly toggles spatial hints.
    pub fn with_spatial_hints(mut self, yes: bool) -> Self {
        self.spatial_hints = yes;
        self
    }

    /// Shuffles edge-processing order (reduces same-line overlap for
    /// topology-driven algorithms at some locality cost).
    pub fn with_shuffle_edges(mut self, yes: bool) -> Self {
        self.shuffle_edges = yes;
        self
    }

    /// Toggles shared→private state conversion (on by default; turning it
    /// off reintroduces a shared round counter — the ablation knob).
    pub fn with_privatization(mut self, yes: bool) -> Self {
        self.privatize = yes;
        self
    }

    /// Sets the ∆ bucket width: priorities are coarsened to `prio / delta`
    /// timestamps.
    pub fn with_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// Task granularity.
    pub fn task_granularity(&self) -> TaskGranularity {
        self.granularity
    }

    /// Frontier handling.
    pub fn frontiers(&self) -> Frontiers {
        self.frontiers
    }

    /// Whether spatial hints are attached to update tasks.
    pub fn spatial_hints(&self) -> bool {
        self.spatial_hints
    }

    /// Whether edges are shuffled.
    pub fn shuffle_edges(&self) -> bool {
        self.shuffle_edges
    }

    /// Whether shared state is privatized.
    pub fn privatize(&self) -> bool {
        self.privatize
    }
}

impl SimpleSchedule for SwarmSchedule {
    fn parallelization(&self) -> Parallelization {
        match self.granularity {
            TaskGranularity::Coarse => Parallelization::VertexBased,
            TaskGranularity::FineGrained => Parallelization::EdgeAwareVertexBased,
        }
    }

    fn direction(&self) -> SchedDirection {
        self.direction
    }

    fn delta(&self) -> i64 {
        self.delta
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The Swarm GraphVM's declared search space (paper Fig. 6c): frontier
/// handling × task splitting × spatial hints × privatization, plus the
/// shared ∆ sweep for ordered algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwarmScheduleSpace;

/// Cost-model pruning table, keyed by the Swarm attribution components
/// (`commit` / `abort` / `idle_no_task` / `idle_cq_full` / `spill` /
/// `host`). Hints and privatization exist to cut conflict aborts, so a
/// run dominated by useful commits or task starvation cannot be helped by
/// sweeping them.
pub const SWARM_PRUNE_RULES: &[PruneRule] = &[
    PruneRule {
        component: "commit",
        axis: "hints",
        reason: "spatial hints steer conflicting tasks apart; commit-bound runs have no conflicts to avoid",
    },
    PruneRule {
        component: "commit",
        axis: "privatize",
        reason: "privatization splits shared counters to cut aborts; commit-dominated runs abort rarely",
    },
    PruneRule {
        component: "idle_no_task",
        axis: "privatize",
        reason: "starved cores need more tasks (frontiers/gran), not fewer conflicts",
    },
    PruneRule {
        component: "idle_no_task",
        axis: "hints",
        reason: "hints serialize same-vertex tasks; starvation needs more parallelism, not less",
    },
];

impl ScheduleSpace for SwarmScheduleSpace {
    fn target_name(&self) -> &'static str {
        "swarm"
    }

    fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
        vec![
            Dimension::new("frontiers", vec!["buffered", "tasks"]),
            Dimension::new("gran", vec!["coarse", "fine"]),
            Dimension::new("hints", vec!["off", "on"]),
            Dimension::new("privatize", vec!["on", "off"]),
            delta_dimension(p),
        ]
    }

    fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
        let dims = self.dimensions(p);
        let level = |i: usize| dims[i].levels[point[i]];
        let mut s = SwarmSchedule::new()
            .with_frontiers(match level(0) {
                "tasks" => Frontiers::VertexsetToTasks,
                _ => Frontiers::Buffered,
            })
            .with_task_granularity(match level(1) {
                "fine" => TaskGranularity::FineGrained,
                _ => TaskGranularity::Coarse,
            })
            .with_spatial_hints(level(2) == "on")
            .with_privatization(level(3) == "on");
        if p.ordered {
            s = s.with_delta(delta_value(point[4]));
        }
        Some(ScheduleRef::simple(s))
    }

    fn prune_rules(&self) -> &'static [PruneRule] {
        SWARM_PRUNE_RULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_t4_baseline() {
        let s = SwarmSchedule::new();
        assert_eq!(s.task_granularity(), TaskGranularity::Coarse);
        assert_eq!(s.frontiers(), Frontiers::Buffered);
        assert!(!s.spatial_hints());
        assert!(s.privatize());
    }

    #[test]
    fn fine_granularity_implies_hints() {
        let s = SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained);
        assert!(s.spatial_hints());
        assert_eq!(s.parallelization(), Parallelization::EdgeAwareVertexBased);
    }

    #[test]
    fn options_round_trip() {
        let s = SwarmSchedule::new()
            .with_frontiers(Frontiers::VertexsetToTasks)
            .with_shuffle_edges(true)
            .with_privatization(false)
            .with_delta(4);
        assert_eq!(s.frontiers(), Frontiers::VertexsetToTasks);
        assert!(s.shuffle_edges());
        assert!(!s.privatize());
        assert_eq!(s.delta(), 4);
    }

    #[test]
    fn space_materializes_every_point() {
        use ugc_schedule::space::{cardinality, PointIter};
        let p = SpaceParams {
            ordered: true,
            data_driven: false,
            num_vertices: 500,
        };
        let dims = SwarmScheduleSpace.dimensions(&p);
        assert_eq!(cardinality(&dims), 2 * 2 * 2 * 2 * 6);
        for pt in PointIter::new(&dims) {
            assert!(SwarmScheduleSpace.materialize(&p, &pt).is_some());
        }
        // The hand-tuned SSSP point (tasks, fine, hints, ∆=16) is in-space.
        let s = SwarmScheduleSpace
            .materialize(&p, &[1, 1, 1, 0, 3])
            .unwrap();
        let sw = s
            .representative()
            .as_any()
            .downcast_ref::<SwarmSchedule>()
            .unwrap()
            .clone();
        assert_eq!(sw.frontiers(), Frontiers::VertexsetToTasks);
        assert_eq!(sw.task_granularity(), TaskGranularity::FineGrained);
        assert!(sw.spatial_hints());
        assert_eq!(sw.delta(), 16);
    }
}
