//! Property-based end-to-end tests: on random graphs, every backend's
//! result matches the sequential reference implementations.

use proptest::prelude::*;
use ugc::{Algorithm, Compiler, Target};
use ugc_graph::{EdgeList, Graph};

/// Random symmetric weighted graph (the shape every paper dataset has).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1i32..32);
        proptest::collection::vec(edge, 1..128).prop_map(move |edges| {
            let mut el = EdgeList::new(n);
            for (s, d, w) in edges {
                el.push_weighted(s, d, w);
            }
            el.symmetrize();
            el.dedup_and_strip_loops();
            el.into_graph()
        })
    })
}

fn run(algo: Algorithm, target: Target, graph: &Graph, start: u32) -> ugc::RunResult {
    let mut c = Compiler::new(algo);
    if algo.needs_start_vertex() {
        c.start_vertex(start);
    }
    c.run(target, graph).expect("run succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bfs_valid_on_every_backend(graph in graph_strategy()) {
        for target in Target::ALL {
            let r = run(Algorithm::Bfs, target, &graph, 0);
            ugc_algorithms::validate::check_bfs_parents(&graph, 0, r.property_ints("parent"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    }

    #[test]
    fn sssp_matches_dijkstra_on_every_backend(graph in graph_strategy()) {
        for target in Target::ALL {
            let r = run(Algorithm::Sssp, target, &graph, 0);
            ugc_algorithms::validate::check_sssp_distances(&graph, 0, r.property_ints("dist"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    }

    #[test]
    fn cc_matches_union_find_on_every_backend(graph in graph_strategy()) {
        for target in Target::ALL {
            let r = run(Algorithm::Cc, target, &graph, 0);
            ugc_algorithms::validate::check_cc_labels(&graph, r.property_ints("IDs"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    }

    #[test]
    fn pagerank_matches_reference_on_every_backend(graph in graph_strategy()) {
        for target in Target::ALL {
            let r = run(Algorithm::PageRank, target, &graph, 0);
            ugc_algorithms::validate::check_pagerank(&graph, r.property_floats("old_rank"), 1e-7)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    }

    #[test]
    fn bc_matches_brandes_on_every_backend(graph in graph_strategy()) {
        for target in Target::ALL {
            let r = run(Algorithm::Bc, target, &graph, 0);
            ugc_algorithms::validate::check_bc(&graph, 0, r.property_floats("centrality"), 1e-6)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    }

    /// All four backends compute bit-identical integer results.
    #[test]
    fn backends_agree_exactly(graph in graph_strategy()) {
        let cpu = run(Algorithm::Sssp, Target::Cpu, &graph, 0);
        for target in [Target::Gpu, Target::Swarm, Target::HammerBlade] {
            let other = run(Algorithm::Sssp, target, &graph, 0);
            prop_assert_eq!(
                cpu.property_ints("dist"),
                other.property_ints("dist"),
                "{} disagrees with CPU", target.name()
            );
        }
    }
}
