//! The HammerBlade GraphVM entry point.

use std::collections::HashMap;

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::{contain, run_main, ExecError, ProgramState};
use ugc_runtime::value::Value;
use ugc_sim_hb::{HbConfig, HbSim, HbStats};

use crate::executor::HbExecutor;

/// The HammerBlade GraphVM: runs GraphIR on the manycore simulator.
#[derive(Debug, Clone, Default)]
pub struct HbGraphVm {
    /// Simulated machine configuration.
    pub config: HbConfig,
}

/// Result of one simulated execution.
pub struct HbExecution<'g> {
    /// Final program state.
    pub state: ProgramState<'g>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated milliseconds.
    pub time_ms: f64,
    /// Memory-system statistics (Table IX's inputs).
    pub stats: HbStats,
    /// Achieved DRAM bandwidth as a fraction of peak.
    pub bandwidth_utilization: f64,
}

impl std::fmt::Debug for HbExecution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HbExecution")
            .field("cycles", &self.cycles)
            .field("stats", &self.stats)
            .finish()
    }
}

impl HbExecution<'_> {
    /// Snapshot of an integer property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_ints(&self, name: &str) -> Vec<i64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_int())
            .collect()
    }

    /// Snapshot of a float property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_floats(&self, name: &str) -> Vec<f64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_float())
            .collect()
    }
}

impl HbGraphVm {
    /// A VM over the given machine configuration.
    pub fn new(config: HbConfig) -> Self {
        HbGraphVm { config }
    }

    /// A VM with the given grid rows (16 columns, as in Fig. 10a).
    pub fn with_rows(rows: usize) -> Self {
        HbGraphVm {
            config: HbConfig::default().with_rows(rows),
        }
    }

    /// Executes a midend-processed program on `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound externs or execution failures.
    pub fn execute<'g>(
        &self,
        prog: Program,
        graph: &'g Graph,
        externs: &HashMap<String, Value>,
    ) -> Result<HbExecution<'g>, ExecError> {
        contain(std::panic::AssertUnwindSafe(|| {
            let mut state = ProgramState::new(prog, graph, externs)?;
            let mut exec = HbExecutor::new(HbSim::new(self.config.clone()));
            run_main(&mut state, &mut exec)?;
            Ok(HbExecution {
                cycles: exec.sim.time_cycles(),
                time_ms: exec.sim.time_ms(),
                stats: exec.sim.stats,
                bandwidth_utilization: exec.sim.bandwidth_utilization(),
                state,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{HbLoadBalance, HbSchedule};
    use ugc_schedule::{apply_schedule, ScheduleRef};

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn run_bfs(sched: Option<HbSchedule>, rows: usize) -> (Vec<i64>, u64) {
        let mut prog = ugc_midend::frontend_to_ir(BFS).unwrap();
        if let Some(s) = sched {
            apply_schedule(&mut prog, "s0:s1", ScheduleRef::simple(s)).unwrap();
        }
        ugc_midend::run_passes(&mut prog).unwrap();
        let graph = ugc_graph::generators::rmat(9, 6, 3, true);
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let vm = HbGraphVm::with_rows(rows);
        let run = vm.execute(prog, &graph, &externs).unwrap();
        (run.property_ints("parent"), run.cycles)
    }

    #[test]
    fn bfs_default_correct() {
        let (parents, cycles) = run_bfs(None, 8);
        let reached = parents.iter().filter(|&&p| p != -1).count();
        assert!(reached > 300, "{reached}");
        assert!(cycles > 0);
    }

    #[test]
    fn aligned_partitioning_correct() {
        let (parents, _) = run_bfs(
            Some(HbSchedule::new().with_load_balance(HbLoadBalance::Aligned)),
            8,
        );
        assert!(parents.iter().filter(|&&p| p != -1).count() > 300);
    }

    #[test]
    fn more_rows_is_faster() {
        let (_, c2) = run_bfs(None, 2);
        let (_, c16) = run_bfs(None, 16);
        assert!(c16 < c2, "256 cores {c16} should beat 32 cores {c2}");
    }
}
