//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p ugc-bench --bin repro -- [--scale tiny|small] <what>
//! ```
//!
//! `<what>` is one of: `fig8 fig9 fig10a fig10b fig11 fig12 table3 table8
//! table9 table10 configs all`, or the autotuner:
//!
//! ```sh
//! repro -- [--scale S] [--seed N] [--budget N] [--no-cache] \
//!     tune <cpu|gpu|swarm|hb> <pr|bfs|sssp|cc|bc> <RN|..|SW>
//! ```

use std::collections::BTreeMap;

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_hb::HbGraphVm;
use ugc_backend_swarm::SwarmGraphVm;
use ugc_baselines::gpu_frameworks::{run_framework, Framework};
use ugc_baselines::swarm_hand;
use ugc_bench::{
    baseline_schedule, fig8_cell, measure, parse_algo, parse_dataset, parse_profile, parse_scale,
    parse_target, profile_backend, tune_dataset, tuned_schedule, Tuned, Tuner,
};
use ugc_graph::{Dataset, Scale};
use ugc_sim_gpu::GpuConfig;
use ugc_sim_swarm::SwarmConfig;

const USAGE: &str = "usage: repro [--scale tiny|small|medium] [--seed N] [--budget N] [--no-cache] \
                     <fig8|fig9|fig10a|fig10b|fig11|fig12|table3|table8|table9|table10|configs|chaos|chaos-serve|all> \
                     | tune [--explain] <cpu|gpu|swarm|hb> <pr|bfs|sssp|cc|bc|tc|kcore|lp> <dataset> \
                     | run [--k N] [--max-iters N] <cpu|gpu|swarm|hb> <algo> <dataset> \
                     | --profile <cpu|gpu|swarm|hb|all|serve> \
                     | serve [--port N | --socket PATH] [--admit N] [--queue N] [--batch-max N] \
                     [--batch-window-ms N] [--drain-ms N] [--deadline-ms N] \
                     | client <unix:PATH|HOST:PORT> <request words...>\n\
                     env: UGC_FAULTS=<gpu|swarm|hb|serve>:<kind>:p=<prob>:seed=<N>[,...] \
                     UGC_BUDGET_MS=<N> UGC_BUDGET_CYCLES=<N> UGC_FALLBACK=<cpu,seq,...|none> \
                     UGC_CACHE_BYTES=<bytes>";

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Rejects malformed supervisor environment variables up front (exit 2)
/// instead of letting every experiment fail identically mid-run.
fn validate_supervisor_env() {
    if let Ok(v) = std::env::var("UGC_FAULTS") {
        if !v.trim().is_empty() {
            if let Err(e) = ugc_resilience::fault::parse_faults(&v) {
                usage_error(&format!("UGC_FAULTS: {e}"));
            }
        }
    }
    if let Err(e) = ugc::Policy::from_env() {
        usage_error(&e);
    }
}

fn main() {
    validate_supervisor_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` and `client` own the rest of the argument list (their flags
    // are not the experiment flags below).
    match args.first().map(String::as_str) {
        Some("serve") => return serve_cmd(&args[1..]),
        Some("client") => return client_cmd(&args[1..]),
        _ => {}
    }
    let mut scale = Scale::Tiny;
    let mut tuner = Tuner::default();
    let mut use_cache = true;
    let mut explain = false;
    let mut profile_targets: Option<Vec<Target>> = None;
    let mut profile_serve_flag = false;
    let mut kcore_k: Option<i64> = None;
    let mut lp_max_iters: Option<i64> = None;
    let mut what = Vec::new();
    let mut i = 0;
    let flag_value = |args: &[String], i: usize| -> String {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("flag `{}` needs a value", args[i])))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = parse_scale(&flag_value(&args, i)).unwrap_or_else(|e| usage_error(&e));
                i += 2;
            }
            "--seed" => {
                tuner.seed = flag_value(&args, i)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed expects an integer"));
                i += 2;
            }
            "--budget" => {
                tuner.budget = flag_value(&args, i)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--budget expects an integer"));
                i += 2;
            }
            "--no-cache" => {
                use_cache = false;
                i += 1;
            }
            "--k" => {
                let v: i64 = flag_value(&args, i)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--k expects an integer"));
                if v < 1 {
                    usage_error(&format!("--k must be a positive integer, got {v}"));
                }
                kcore_k = Some(v);
                i += 2;
            }
            "--max-iters" => {
                let v: i64 = flag_value(&args, i)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--max-iters expects an integer"));
                if v < 1 {
                    usage_error(&format!("--max-iters must be at least 1, got {v}"));
                }
                lp_max_iters = Some(v);
                i += 2;
            }
            "--explain" => {
                explain = true;
                i += 1;
            }
            "--profile" => {
                let v = flag_value(&args, i);
                if v == "serve" {
                    profile_serve_flag = true;
                } else {
                    profile_targets = Some(parse_profile(&v).unwrap_or_else(|e| usage_error(&e)));
                }
                i += 2;
            }
            _ => {
                what.push(args[i].clone());
                i += 1;
            }
        }
    }
    if profile_serve_flag {
        if !what.is_empty() || profile_targets.is_some() {
            usage_error("--profile serve runs on its own; drop the other words");
        }
        profile_serve(scale);
        return;
    }
    if let Some(targets) = profile_targets {
        if !what.is_empty() {
            usage_error("--profile runs on its own; drop the experiment/tune words");
        }
        profile(&targets, scale);
        return;
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    if explain && !what.iter().any(|w| w == "tune") {
        usage_error("--explain only applies to `tune`");
    }
    let mut w = 0;
    while w < what.len() {
        match what[w].as_str() {
            "fig8" => fig8(scale),
            "fig9" => fig9(scale),
            "fig10a" => fig10a(scale),
            "fig10b" => fig10b(scale),
            "fig11" => fig11(scale),
            "fig12" => fig12(scale),
            "table3" => table3(),
            "table8" => table8(scale),
            "table9" => table9(scale),
            "table10" => table10(scale),
            "configs" => configs(),
            "chaos" => chaos(scale),
            "chaos-serve" => chaos_serve(scale),
            "tune" => {
                // `tune` consumes the next three words.
                if what.len() - w < 4 {
                    usage_error("tune needs <target> <algo> <dataset>");
                }
                let target = parse_target(&what[w + 1]).unwrap_or_else(|e| usage_error(&e));
                let algo = parse_algo(&what[w + 2]).unwrap_or_else(|e| usage_error(&e));
                let dataset = parse_dataset(&what[w + 3]).unwrap_or_else(|e| usage_error(&e));
                tune(target, algo, dataset, scale, &tuner, use_cache, explain);
                w += 3;
            }
            "run" => {
                // `run` consumes the next three words.
                if what.len() - w < 4 {
                    usage_error("run needs <target> <algo> <dataset>");
                }
                let target = parse_target(&what[w + 1]).unwrap_or_else(|e| usage_error(&e));
                let algo = parse_algo(&what[w + 2]).unwrap_or_else(|e| usage_error(&e));
                let dataset = parse_dataset(&what[w + 3]).unwrap_or_else(|e| usage_error(&e));
                if kcore_k.is_some() && algo != Algorithm::KCore {
                    usage_error("--k only applies to kcore");
                }
                if lp_max_iters.is_some() && algo != Algorithm::Lp {
                    usage_error("--max-iters only applies to lp");
                }
                run_one(target, algo, dataset, scale, kcore_k, lp_max_iters);
                w += 3;
            }
            "all" => {
                configs();
                table8(scale);
                table3();
                fig8(scale);
                fig9(scale);
                fig10a(scale);
                fig10b(scale);
                fig11(scale);
                fig12(scale);
                table9(scale);
                table10(scale);
            }
            other => usage_error(&format!("unknown experiment `{other}`")),
        }
        w += 1;
    }
}

/// `repro --profile`: run the profile workload per backend, print each
/// attribution table, and append the telemetry snapshots (JSON lines) to
/// the bench output file.
fn profile(targets: &[Target], scale: Scale) {
    if !ugc_telemetry::enabled() {
        eprintln!("repro: --profile needs telemetry (run without UGC_TELEMETRY=0)");
        std::process::exit(2);
    }
    let out_path = std::env::var("UGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_profile.json".into());
    let mut lines = String::new();
    let mut consistent = true;
    for &target in targets {
        banner(&format!(
            "Profile: {} GraphVM — PageRank + BFS on PK (scale {}, default schedules)",
            target.name(),
            scale.name()
        ));
        let col = ugc_telemetry::Collector::start();
        let (attr, delta) = profile_backend(target, scale);
        print!("{}", attr.render());
        consistent &= attr.is_consistent();
        lines.push_str(&format!(
            "{{\"profile\":\"{}\",\"scale\":\"{}\"}}\n",
            target.name(),
            scale.name()
        ));
        lines.push_str(&delta.to_json_lines());
        if target == Target::Cpu {
            // Kernel selection + pool chunk feedback: the two knobs the
            // compiled-kernel path adds to the CPU hot loop. Pool counters
            // live outside the `cpu.` prefix, so read them from a full
            // collector delta spanning the same window.
            let pool = col.snapshot();
            println!(
                "kernel dispatch: {} specialized, {} interpreter fallback",
                delta.value("cpu.kernel.specialized"),
                delta.value("cpu.kernel.fallback"),
            );
            if let Some(mean) = pool.histogram_mean("pool.chunk_size") {
                println!(
                    "pool chunk feedback: mean executed chunk {mean:.0} items over {} chunks",
                    pool.value("pool.chunk_size.count")
                );
                lines.push_str(&format!(
                    "{{\"histogram_mean\":\"pool.chunk_size\",\"value\":{mean:.3}}}\n"
                ));
            }
            lines.push_str(&pool.filter_prefix("pool.").to_json_lines());
        }
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        Ok(mut f) => match f.write_all(lines.as_bytes()) {
            Ok(()) => eprintln!("appended telemetry snapshots to {out_path}"),
            Err(e) => eprintln!("repro: could not write {out_path}: {e}"),
        },
        Err(e) => eprintln!("repro: could not open {out_path}: {e}"),
    }
    if !consistent {
        eprintln!("repro: attribution components do not sum to the reported total");
        std::process::exit(1);
    }
}

/// `repro serve`: run the `ugc-serve` daemon until a client sends
/// `shutdown`. Flag and configuration errors exit 2 with usage; runtime
/// bind failures exit 1.
fn serve_cmd(args: &[String]) {
    let mut config = ugc_serve::ServeConfig {
        bind: ugc_serve::Bind::Tcp(7411),
        policy: ugc::Policy::from_env().unwrap_or_else(|e| usage_error(&e)),
        cache_bytes: ugc_serve::ServeConfig::cache_bytes_from_env()
            .unwrap_or_else(|e| usage_error(&e)),
        // The standalone daemon is the one place that owns its process:
        // SIGTERM triggers the same graceful drain as the wire `shutdown`.
        install_sigterm: true,
        ..ugc_serve::ServeConfig::default()
    };
    let flag_value = |args: &[String], i: usize| -> String {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("flag `{}` needs a value", args[i])))
    };
    let parse_count = |flag: &str, v: &str| -> usize {
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects an integer, got `{v}`")))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                let v = flag_value(args, i);
                let port: u16 = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!(
                        "--port expects an integer in 0..=65535, got `{v}`"
                    ))
                });
                config.bind = ugc_serve::Bind::Tcp(port);
                i += 2;
            }
            "--socket" => {
                config.bind = ugc_serve::Bind::Unix(flag_value(args, i).into());
                i += 2;
            }
            "--admit" => {
                config.admit = parse_count("--admit", &flag_value(args, i));
                i += 2;
            }
            "--queue" => {
                config.queue_cap = parse_count("--queue", &flag_value(args, i));
                i += 2;
            }
            "--batch-max" => {
                config.batch_max = parse_count("--batch-max", &flag_value(args, i));
                i += 2;
            }
            "--batch-window-ms" => {
                config.batch_window = std::time::Duration::from_millis(parse_count(
                    "--batch-window-ms",
                    &flag_value(args, i),
                ) as u64);
                i += 2;
            }
            "--drain-ms" => {
                config.drain = std::time::Duration::from_millis(parse_count(
                    "--drain-ms",
                    &flag_value(args, i),
                ) as u64);
                i += 2;
            }
            "--deadline-ms" => {
                config.default_deadline = Some(std::time::Duration::from_millis(parse_count(
                    "--deadline-ms",
                    &flag_value(args, i),
                )
                    as u64));
                i += 2;
            }
            other => usage_error(&format!("unknown serve flag `{other}`")),
        }
    }
    if let Err(e) = config.validate() {
        usage_error(&e);
    }
    match ugc_serve::Server::start(config) {
        Ok(handle) => {
            use std::io::Write;
            println!("ugc-serve listening on {}", handle.addr());
            let _ = std::io::stdout().flush();
            handle.join();
            println!("ugc-serve: shutdown complete");
        }
        Err(e) => {
            eprintln!("repro: serve failed to start: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro client`: send one protocol line to a running daemon and print
/// the response. Exits 0 on an `ok` reply, 1 otherwise.
fn client_cmd(args: &[String]) {
    if args.len() < 2 {
        usage_error("client needs <unix:PATH|HOST:PORT> <request words...>");
    }
    let line = args[1..].join(" ");
    match client_send(&args[0], &line) {
        Ok(reply) => {
            println!("{reply}");
            if !reply.starts_with("ok") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("repro: client: {e}");
            std::process::exit(1);
        }
    }
}

/// One protocol round trip: connect, send `line`, read one reply line.
fn client_send(addr: &str, line: &str) -> Result<String, String> {
    fn roundtrip<S: std::io::Read + std::io::Write>(
        mut s: S,
        line: &str,
    ) -> Result<String, String> {
        use std::io::BufRead;
        writeln!(s, "{line}").map_err(|e| e.to_string())?;
        s.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        std::io::BufReader::new(s)
            .read_line(&mut reply)
            .map_err(|e| e.to_string())?;
        if reply.is_empty() {
            return Err("connection closed without a reply".into());
        }
        Ok(reply.trim_end().to_string())
    }
    if let Some(path) = addr.strip_prefix("unix:") {
        let s = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("connect {path}: {e}"))?;
        roundtrip(s, line)
    } else {
        let s = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        roundtrip(s, line)
    }
}

/// `repro --profile serve`: in-process serving smoke — a coalesced pair of
/// same-source BFS queries plus one degenerate single, with the `serve.`
/// telemetry delta printed (and appended as JSON lines like the backend
/// profiles).
fn profile_serve(scale: Scale) {
    if !ugc_telemetry::enabled() {
        eprintln!("repro: --profile needs telemetry (run without UGC_TELEMETRY=0)");
        std::process::exit(2);
    }
    banner(&format!(
        "Profile: ugc-serve — coalesced BFS pair + degenerate single on RN (scale {})",
        scale.name()
    ));
    let col = ugc_telemetry::Collector::start();
    let config = ugc_serve::ServeConfig {
        bind: ugc_serve::Bind::Tcp(0),
        admit: 1,
        batch_max: 2,
        batch_window: std::time::Duration::from_millis(500),
        ..ugc_serve::ServeConfig::default()
    };
    let handle = ugc_serve::Server::start(config).unwrap_or_else(|e| {
        eprintln!("repro: serve failed to start: {e}");
        std::process::exit(1);
    });
    let addr = handle.addr().to_string();
    let addr = addr.strip_prefix("tcp ").unwrap_or(&addr).to_string();
    let query = format!("query bfs RN source=0 scale={}", scale.name());
    let pair: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let query = query.clone();
            std::thread::spawn(move || client_send(&addr, &query))
        })
        .collect();
    for t in pair {
        match t.join().expect("client thread") {
            Ok(reply) => println!("{reply}"),
            Err(e) => {
                eprintln!("repro: client: {e}");
                std::process::exit(1);
            }
        }
    }
    match client_send(&addr, &query) {
        Ok(reply) => println!("{reply}"),
        Err(e) => {
            eprintln!("repro: client: {e}");
            std::process::exit(1);
        }
    }
    match client_send(&addr, "stats") {
        Ok(reply) => println!("{reply}"),
        Err(e) => {
            eprintln!("repro: client: {e}");
            std::process::exit(1);
        }
    }
    let coalesced = handle.counters().coalesced.get();
    handle.shutdown();
    handle.join();
    let delta = col.snapshot().filter_prefix("serve.");
    print!("{}", delta.to_json_lines());
    let out_path = std::env::var("UGC_BENCH_OUT").unwrap_or_else(|_| "BENCH_profile.json".into());
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        let _ = f.write_all(delta.to_json_lines().as_bytes());
    }
    if coalesced == 0 {
        eprintln!("repro: serve profile ran but no query coalescing happened");
        std::process::exit(1);
    }
}

/// `repro tune`: autotune one (target, algo, dataset) triple and print the
/// ranked candidate table.
fn tune(
    target: Target,
    algo: Algorithm,
    dataset: Dataset,
    scale: Scale,
    tuner: &Tuner,
    use_cache: bool,
    explain: bool,
) {
    banner(&format!(
        "Autotune: {} / {} / {} (scale {}, seed {}, budget {})",
        target.name(),
        algo.name(),
        dataset.abbrev(),
        scale.name(),
        tuner.seed,
        tuner.budget
    ));
    let cache_path = std::env::var("UGC_TUNE_CACHE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new("target").join("tuning-cache.jsonl"));
    let cache = use_cache.then_some(cache_path.as_path());
    match tune_dataset(target, algo, dataset, scale, tuner, cache) {
        Ok(Tuned::Cached { entry, .. }) => {
            println!(
                "cache hit ({}): winner `{}` at {:.4} ms ({} cycles), \
                 tuned with seed {} over {} measured candidates",
                cache_path.display(),
                entry.winner,
                entry.time_ms,
                entry.cycles,
                entry.seed,
                entry.explored
            );
            if !entry.profile.is_empty() {
                println!("winner profile: {}", entry.profile);
            }
            if explain {
                println!("explain: cache hit — no search ran, nothing was pruned");
            }
            println!("(delete the cache file or pass --no-cache to re-measure)");
        }
        Ok(Tuned::Fresh(out)) => {
            println!(
                "space: {} points, strategy: {}, measured: {} (+{} pinned)",
                out.cardinality,
                out.strategy,
                out.explored,
                out.ranked.len().saturating_sub(out.explored)
            );
            println!("{:<4}{:>12}{:>14}  candidate", "#", "time (ms)", "cycles");
            for (i, r) in out.ranked.iter().enumerate().take(15) {
                println!(
                    "{:<4}{:>12.4}{:>14}  {}",
                    i + 1,
                    r.sample.time_ms,
                    r.sample.cycles,
                    r.name
                );
            }
            if out.ranked.len() > 15 {
                println!("... ({} more)", out.ranked.len() - 15);
            }
            let winner = out.winner();
            if !winner.sample.profile.is_empty() {
                println!("winner profile: {}", winner.sample.profile);
            }
            if let Some(hand) = out.find("hand_tuned") {
                println!(
                    "winner `{}` vs hand-tuned: {:.3}x",
                    winner.name,
                    hand.sample.time_ms / winner.sample.time_ms.max(1e-12)
                );
            }
            if explain {
                explain_report(&out);
            }
        }
        Err(e) => {
            eprintln!("repro: autotuning failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `tune --explain` report: what the cost model pruned, which
/// attribution component justified each skip, where the search started,
/// and a balanced budget line (`measured + pruned == considered`).
fn explain_report(out: &ugc_autotune::TuneOutcome) {
    match &out.warm_start {
        Some(label) => println!("warm start: `{label}` (nearest-fingerprint cached winner)"),
        None => println!("warm start: none (cold random restarts)"),
    }
    if out.pruned.is_empty() {
        println!(
            "pruned axes: none (no dominant component ≥{}% matched a prune rule)",
            ugc_autotune::DOMINANCE_THRESHOLD
        );
    } else {
        for p in &out.pruned {
            println!(
                "pruned axis `{}`: dominant `{}` ({}%) — {} (saved {} measurements)",
                p.axis, p.component, p.share, p.reason, p.saved
            );
        }
    }
    let saved = out.saved();
    println!(
        "budget: measured={} pruned={} considered={}",
        out.explored,
        saved,
        out.explored + saved
    );
}

/// `repro chaos`: seeded fault-injection smoke. Runs BFS and SSSP on
/// every backend under the supervisor with the `UGC_FAULTS` schedule from
/// the environment; each run must either validate against the sequential
/// reference (possibly after retries/fallback) or fail with a typed
/// error — a silent wrong answer exits 1. With telemetry on, also
/// requires the resilience counters to have moved.
fn chaos(scale: Scale) {
    let spec = std::env::var("UGC_FAULTS").unwrap_or_default();
    if spec.trim().is_empty() {
        usage_error("chaos needs UGC_FAULTS (e.g. gpu:kernel_launch_fail:p=0.2:seed=7)");
    }
    banner(&format!(
        "Chaos: BFS + SSSP under injected faults (UGC_FAULTS={spec}, scale {})",
        scale.name()
    ));
    let graph = Dataset::RoadNetCa.generate(scale);
    let mut wrong = 0usize;
    println!("{:<6}{:<13}outcome", "algo", "target");
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        for target in Target::ALL {
            let mut c = Compiler::new(algo);
            c.start_vertex(0);
            let outcome = match c.run(target, &graph) {
                Ok(r) => {
                    let check = match algo {
                        Algorithm::Bfs => ugc_algorithms::validate::check_bfs_parents(
                            &graph,
                            0,
                            r.property_ints("parent"),
                        ),
                        _ => ugc_algorithms::validate::check_sssp_distances(
                            &graph,
                            0,
                            r.property_ints("dist"),
                        ),
                    };
                    match check {
                        Ok(()) => format!(
                            "reference-equal (attempts {}, degraded to {})",
                            r.attempts,
                            r.degraded_to.as_deref().unwrap_or("-")
                        ),
                        Err(e) => {
                            wrong += 1;
                            format!("SILENT WRONG ANSWER: {e}")
                        }
                    }
                }
                Err(e) => format!("typed failure: {e}"),
            };
            println!("{:<6}{:<13}{outcome}", algo.name(), target.name());
        }
    }
    if ugc_telemetry::enabled() {
        let snap = ugc_telemetry::snapshot();
        let activity: u64 = [
            "resilience.faults_injected",
            "resilience.retries",
            "resilience.fallbacks",
            "resilience.budget_kills",
        ]
        .iter()
        .map(|k| snap.get(k).unwrap_or(0))
        .sum();
        println!(
            "resilience: injected {}, retries {}, fallbacks {}, budget kills {}",
            snap.get("resilience.faults_injected").unwrap_or(0),
            snap.get("resilience.retries").unwrap_or(0),
            snap.get("resilience.fallbacks").unwrap_or(0),
            snap.get("resilience.budget_kills").unwrap_or(0),
        );
        if activity == 0 {
            eprintln!("repro: chaos ran but no resilience counter moved — fault spec never fired");
            std::process::exit(1);
        }
    }
    if wrong > 0 {
        eprintln!("repro: {wrong} chaos run(s) returned a silent wrong answer");
        std::process::exit(1);
    }
}

/// Extracts `key=<u64>` from a `stats` reply; missing keys exit 1 (the
/// daemon's stats line is part of its contract).
fn stat_field(stats: &str, key: &str) -> u64 {
    let prefix = format!("{key}=");
    stats
        .split_whitespace()
        .find_map(|w| w.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("repro: stats reply missing `{key}=`: {stats}");
            std::process::exit(1);
        })
}

/// `repro chaos-serve`: daemon chaos smoke. Boots an in-process
/// `ugc-serve` on a unix socket with the `UGC_FAULTS` schedule from the
/// environment and drives it through healthy traffic, a circuit-breaker
/// trip, deadline sheds under a jammed worker, and fuzzed protocol
/// frames, then drains it. Every connection must end in a typed reply or
/// a clean close; exits 1 unless at least one circuit opened, at least
/// one request was deadline-shed, the accounting balances
/// (ok + errored + shed = admitted), and the worker pool stayed intact.
fn chaos_serve(scale: Scale) {
    let spec = std::env::var("UGC_FAULTS").unwrap_or_default();
    if spec.trim().is_empty() {
        usage_error("chaos-serve needs UGC_FAULTS (e.g. serve:batch_abort:p=0.9:seed=7)");
    }
    banner(&format!(
        "Chaos-serve: daemon under injected faults (UGC_FAULTS={spec}, scale {})",
        scale.name()
    ));
    let sock = std::env::temp_dir().join(format!("ugc-chaos-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let config = ugc_serve::ServeConfig {
        bind: ugc_serve::Bind::Unix(sock.clone()),
        admit: 1,
        queue_cap: 32,
        batch_max: 4,
        batch_window: std::time::Duration::from_millis(5),
        drain: std::time::Duration::from_millis(500),
        read_timeout: Some(std::time::Duration::from_secs(5)),
        policy: ugc::Policy::from_env().unwrap_or_else(|e| usage_error(&e)),
        ..ugc_serve::ServeConfig::default()
    };
    let handle = ugc_serve::Server::start(config).unwrap_or_else(|e| {
        eprintln!("repro: chaos-serve failed to start: {e}");
        std::process::exit(1);
    });
    let addr = format!("unix:{}", sock.display());
    let mut failures = 0usize;

    // 1. Healthy traffic under the fault schedule: injected batch aborts
    // must be retried/degraded into `ok` replies, never surfaced.
    for i in 0..6u32 {
        let q = format!("query bfs RN source={i} scale={}", scale.name());
        match client_send(&addr, &q) {
            Ok(r) if r.starts_with("ok") => {}
            Ok(r) => {
                println!("healthy query answered `{r}`");
                failures += 1;
            }
            Err(e) => {
                println!("healthy query failed: {e}");
                failures += 1;
            }
        }
    }

    let pool_before = match client_send(&addr, "stats") {
        Ok(s) => stat_field(&s, "pool_workers"),
        Err(e) => {
            eprintln!("repro: chaos-serve stats failed: {e}");
            std::process::exit(1);
        }
    };

    // 2. Trip a circuit: repeated permanent failures on one
    // (algo, dataset, scale) key must open its breaker and fail fast.
    let mut circuit_open_replies = 0usize;
    for _ in 0..8 {
        let q = format!("query bfs PK source=999999999 scale={}", scale.name());
        match client_send(&addr, &q) {
            Ok(r) if r.starts_with("err circuit_open") => circuit_open_replies += 1,
            Ok(r) if r.starts_with("err") => {}
            Ok(r) => {
                println!("poisoned query answered `{r}` instead of a typed error");
                failures += 1;
            }
            Err(e) => {
                println!("poisoned query failed: {e}");
                failures += 1;
            }
        }
    }
    println!("circuit breaker: {circuit_open_replies} fast-failed replies");

    // 3. Deadline sheds: jam the single worker with a cold-cache build,
    // then queue tight-deadline queries behind it.
    let jam = {
        let addr = addr.clone();
        std::thread::spawn(move || client_send(&addr, "query pr RN scale=small"))
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    let tight: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let q = format!("query bfs LJ source=0 deadline_ms=1 scale={}", scale.name());
            std::thread::spawn(move || client_send(&addr, &q))
        })
        .collect();
    let mut deadline_sheds = 0usize;
    for t in tight {
        match t.join().expect("deadline client thread") {
            Ok(r) if r.starts_with("err deadline") => deadline_sheds += 1,
            Ok(_) => {}
            Err(e) => {
                println!("deadline query failed: {e}");
                failures += 1;
            }
        }
    }
    let _ = jam.join().expect("jam client thread");
    println!("deadline propagation: {deadline_sheds} queries shed in queue");

    // 4. Fuzzed frames: every hostile connection must end in a typed
    // protocol error or a clean close — never a hang or a dead daemon.
    let fuzz_conn = |frames: &[&[u8]]| -> Result<Vec<String>, String> {
        use std::io::{BufRead, ErrorKind, Write};
        // The daemon may hang up on a hostile frame before we finish
        // sending; a write-side "peer closed" is a clean close, not a bug.
        let peer_closed = |e: &std::io::Error| {
            matches!(
                e.kind(),
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::NotConnected
            )
        };
        let mut s =
            std::os::unix::net::UnixStream::connect(&sock).map_err(|e| format!("connect: {e}"))?;
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        for f in frames {
            if let Err(e) = s.write_all(f) {
                if peer_closed(&e) {
                    break;
                }
                return Err(format!("write: {e}"));
            }
        }
        if let Err(e) = s.flush() {
            if !peer_closed(&e) {
                return Err(e.to_string());
            }
        }
        if let Err(e) = s.shutdown(std::net::Shutdown::Write) {
            if !peer_closed(&e) {
                return Err(e.to_string());
            }
        }
        let mut replies = Vec::new();
        let mut reader = std::io::BufReader::new(s);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => replies.push(line.trim_end().to_string()),
                Err(e) => return Err(format!("read: {e}")),
            }
        }
        Ok(replies)
    };
    let oversize = vec![b'a'; ugc_serve::MAX_LINE_BYTES + 1024];
    let mut garbage = Vec::new();
    let mut state = 0x5EEDu64;
    for _ in 0..256 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        garbage.push((state >> 33) as u8);
    }
    garbage.retain(|&b| b != b'\n');
    garbage.push(b'\n');
    let cases: Vec<(&str, Vec<Vec<u8>>)> = vec![
        ("oversize line", vec![oversize, b"\n".to_vec()]),
        ("interior NUL", vec![b"query bfs\0RN\n".to_vec()]),
        ("truncated frame", vec![b"query bf".to_vec()]),
        ("seeded garbage", vec![garbage]),
    ];
    for (name, frames) in &cases {
        let borrowed: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        match fuzz_conn(&borrowed) {
            Ok(replies) => {
                let clean = replies.iter().all(|r| r.starts_with("err"));
                println!(
                    "fuzz `{name}`: {} ({} repl{})",
                    if clean {
                        "typed error / clean close"
                    } else {
                        "UNEXPECTED REPLY"
                    },
                    replies.len(),
                    if replies.len() == 1 { "y" } else { "ies" }
                );
                if !clean {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("fuzz `{name}`: connection error: {e}");
                failures += 1;
            }
        }
    }
    match client_send(
        &addr,
        &format!("query bfs RN source=0 scale={}", scale.name()),
    ) {
        Ok(r) if r.starts_with("ok") => println!("daemon alive after fuzzing"),
        other => {
            println!("daemon unhealthy after fuzzing: {other:?}");
            failures += 1;
        }
    }

    // 5. Accounting and pool invariants from the wire-visible stats.
    let stats = match client_send(&addr, "stats") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro: chaos-serve stats failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{stats}");
    let admitted = stat_field(&stats, "admitted");
    let ok = stat_field(&stats, "ok");
    let errored = stat_field(&stats, "errored");
    let shed = stat_field(&stats, "shed_deadline")
        + stat_field(&stats, "shed_overload")
        + stat_field(&stats, "shed_drain");
    if ok + errored + shed != admitted {
        println!(
            "accounting IMBALANCE: ok {ok} + errored {errored} + shed {shed} != admitted {admitted}"
        );
        failures += 1;
    }
    let pool_after = stat_field(&stats, "pool_workers");
    if pool_after != pool_before {
        println!("pool worker count drifted under chaos ({pool_before} -> {pool_after})");
        failures += 1;
    }
    let open_now = stat_field(&stats, "circuit_open");
    if circuit_open_replies == 0 && open_now == 0 {
        println!("no circuit ever opened");
        failures += 1;
    }
    if deadline_sheds == 0 && stat_field(&stats, "shed_deadline") == 0 {
        println!("no request was deadline-shed");
        failures += 1;
    }

    // 6. Graceful drain: wire shutdown, idempotent handle shutdown, join.
    match client_send(&addr, "shutdown") {
        Ok(r) if r.starts_with("ok") => {}
        other => {
            println!("shutdown reply: {other:?}");
            failures += 1;
        }
    }
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(&sock);
    println!("drain complete");

    if ugc_telemetry::enabled() {
        let snap = ugc_telemetry::snapshot();
        let activity: u64 = [
            "resilience.faults_injected",
            "resilience.retries",
            "resilience.fallbacks",
            "resilience.budget_kills",
        ]
        .iter()
        .map(|k| snap.get(k).unwrap_or(0))
        .sum();
        println!(
            "resilience: injected {}, retries {}, breaker opened {}",
            snap.get("resilience.faults_injected").unwrap_or(0),
            snap.get("resilience.retries").unwrap_or(0),
            snap.get("resilience.breaker.opened").unwrap_or(0),
        );
        if activity == 0 {
            eprintln!(
                "repro: chaos-serve ran but no resilience counter moved — fault spec never fired"
            );
            std::process::exit(1);
        }
    }
    if failures > 0 {
        eprintln!("repro: chaos-serve found {failures} violation(s)");
        std::process::exit(1);
    }
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Fig. 8: heatmap of tuned-over-baseline speedups, per architecture.
fn fig8(scale: Scale) {
    banner("Figure 8: speedup of tuned schedules over each GraphVM's default schedule");
    for target in Target::ALL {
        let datasets: &[Dataset] = if target == Target::HammerBlade {
            &Dataset::HAMMERBLADE_SET
        } else {
            &Dataset::ALL
        };
        println!("\n--- {} GraphVM ---", target.name());
        print!("{:<6}", "");
        for a in Algorithm::ALL {
            print!("{:>8}", a.name());
        }
        println!();
        for &d in datasets {
            print!("{:<6}", d.abbrev());
            for a in Algorithm::ALL {
                let s = fig8_cell(target, a, d, scale);
                print!("{s:>8.2}");
            }
            println!();
        }
    }
}

/// Fig. 9: UGC's GPU GraphVM vs the best of Gunrock/GSwitch/SEP-Graph.
/// The framework baselines only model the paper's five algorithms, so the
/// comparison stays restricted to [`Algorithm::PAPER_FIVE`].
fn fig9(scale: Scale) {
    banner("Figure 9: GPU GraphVM speedup over the next-best framework (>1 = UGC wins)");
    print!("{:<6}", "");
    for a in Algorithm::PAPER_FIVE {
        print!("{:>10}", a.name());
    }
    println!("   (negative column entries mean the framework named wins)");
    let algo_key = |a: Algorithm| match a {
        Algorithm::PageRank => "pr",
        Algorithm::Bfs => "bfs",
        Algorithm::Sssp => "sssp",
        Algorithm::Cc => "cc",
        Algorithm::Bc => "bc",
        Algorithm::Tc | Algorithm::KCore | Algorithm::Lp => {
            unreachable!("no framework baseline models {}", a.name())
        }
    };
    for d in Dataset::ALL {
        let graph = d.generate(scale);
        print!("{:<6}", d.abbrev());
        for a in Algorithm::PAPER_FIVE {
            let ugc_ms = measure(
                Target::Gpu,
                a,
                &graph,
                ugc_bench::tuned_schedule_for(Target::Gpu, a, &graph),
                1,
            )
            .time_ms;
            let best_framework = Framework::ALL
                .iter()
                .map(|&f| {
                    let r = run_framework(f, algo_key(a), &graph, 0, GpuConfig::default());
                    (f, r.cycles as f64 / (GpuConfig::default().clock_ghz * 1e6))
                })
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .expect("three frameworks");
            print!("{:>10.2}", best_framework.1 / ugc_ms);
        }
        println!();
    }
}

/// Fig. 10a: BFS strong scaling on HammerBlade (rows 2/4/8/16 × 16 cols).
fn fig10a(scale: Scale) {
    banner("Figure 10a: BFS scaling on HammerBlade (speedup over 32 cores)");
    let datasets = [
        Dataset::RoadNetCa,
        Dataset::RoadCentral,
        Dataset::Pokec,
        Dataset::Hollywood,
        Dataset::LiveJournal,
    ];
    print!("{:<6}", "cores");
    for d in datasets {
        print!("{:>8}", d.abbrev());
    }
    println!();
    let mut base = BTreeMap::new();
    for rows in [2usize, 4, 8, 16] {
        print!("{:<6}", rows * 16);
        for d in datasets {
            let graph = d.generate(scale);
            let mut c = Compiler::new(Algorithm::Bfs);
            c.start_vertex(0).schedule(
                Algorithm::Bfs.schedule_path(),
                tuned_schedule(Target::HammerBlade, Algorithm::Bfs, d.profile()),
            );
            let prog = c.compile().expect("compiles");
            let vm = HbGraphVm::with_rows(rows);
            let run = vm
                .execute(prog, &graph, &externs(Algorithm::Bfs))
                .expect("runs");
            let key = d.abbrev();
            let b = *base.entry(key).or_insert(run.cycles as f64);
            print!("{:>8.2}", b / run.cycles as f64);
        }
        println!();
    }
}

/// Fig. 10b: BFS strong scaling on Swarm (1..64 cores).
fn fig10b(scale: Scale) {
    banner("Figure 10b: BFS scaling on Swarm (speedup over 1 core)");
    let datasets = [
        Dataset::RoadNetCa,
        Dataset::RoadCentral,
        Dataset::Pokec,
        Dataset::Hollywood,
        Dataset::LiveJournal,
    ];
    print!("{:<6}", "cores");
    for d in datasets {
        print!("{:>8}", d.abbrev());
    }
    println!();
    let mut base = BTreeMap::new();
    for cores in [1usize, 4, 16, 64] {
        print!("{:<6}", cores);
        for d in datasets {
            let graph = d.generate(scale);
            let mut c = Compiler::new(Algorithm::Bfs);
            c.start_vertex(0).schedule(
                Algorithm::Bfs.schedule_path(),
                tuned_schedule(Target::Swarm, Algorithm::Bfs, d.profile()),
            );
            let prog = c.compile().expect("compiles");
            let vm = SwarmGraphVm::with_cores(cores);
            let run = vm
                .execute(prog, &graph, &externs(Algorithm::Bfs))
                .expect("runs");
            let key = d.abbrev();
            let b = *base.entry(key).or_insert(run.cycles as f64);
            print!("{:>8.2}", b / run.cycles as f64);
        }
        println!();
    }
}

/// Fig. 11: how Swarm cores spend their time, per algorithm.
fn fig11(scale: Scale) {
    banner("Figure 11: Swarm core-time breakdown (optimized schedules, % of core cycles)");
    println!(
        "{:<6}{:>10}{:>10}{:>12}{:>12}{:>8}",
        "", "commit", "abort", "idle-task", "idle-cq", "spill"
    );
    let dataset = Dataset::RoadCentral;
    let graph = dataset.generate(scale);
    for a in Algorithm::ALL {
        let mut c = Compiler::new(a);
        c.schedule(
            a.schedule_path(),
            tuned_schedule(Target::Swarm, a, dataset.profile()),
        );
        if a.needs_start_vertex() {
            c.start_vertex(0);
        }
        let prog = c.compile().expect("compiles");
        let vm = SwarmGraphVm::default();
        let run = vm.execute(prog, &graph, &externs(a)).expect("runs");
        let total = run.stats.total_core_cycles().max(1) as f64;
        println!(
            "{:<6}{:>9.1}%{:>9.1}%{:>11.1}%{:>11.1}%{:>7.1}%",
            a.name(),
            100.0 * run.stats.commit_cycles as f64 / total,
            100.0 * run.stats.abort_cycles as f64 / total,
            100.0 * run.stats.idle_no_task_cycles as f64 / total,
            100.0 * run.stats.idle_cq_full_cycles as f64 / total,
            100.0 * run.stats.spill_cycles as f64 / total,
        );
    }
}

/// Fig. 12: Swarm GraphVM optimized and hand-tuned prior-work code, both
/// relative to the GraphVM's default schedule.
fn fig12(scale: Scale) {
    banner("Figure 12: Swarm GraphVM vs hand-tuned code (speedup over default schedule)");
    println!(
        "{:<8}{:<6}{:>12}{:>12}",
        "algo", "graph", "GraphVM-opt", "hand-tuned"
    );
    let datasets = [
        Dataset::RoadNetCa,
        Dataset::RoadCentral,
        Dataset::Twitter,
        Dataset::SinaWeibo,
    ];
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        for d in datasets {
            let graph = d.generate(scale);
            let base = measure(
                Target::Swarm,
                algo,
                &graph,
                baseline_schedule(Target::Swarm, algo),
                1,
            );
            let opt = measure(
                Target::Swarm,
                algo,
                &graph,
                tuned_schedule(Target::Swarm, algo, d.profile()),
                1,
            );
            let hand = match algo {
                Algorithm::Bfs => swarm_hand::hand_tuned_bfs(&graph, 0, SwarmConfig::default()),
                _ => swarm_hand::hand_tuned_sssp(&graph, 0, SwarmConfig::default()),
            };
            let hand_ms = hand.cycles as f64 / (SwarmConfig::default().clock_ghz * 1e6);
            println!(
                "{:<8}{:<6}{:>11.2}x{:>11.2}x",
                algo.name(),
                d.abbrev(),
                base.time_ms / opt.time_ms,
                base.time_ms / hand_ms,
            );
        }
    }
}

/// Table III: lines of code per module of this reproduction.
fn table3() {
    banner("Table 3 (analog): lines of Rust per module of this reproduction");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut total = 0usize;
    for (label, rel) in [
        ("Frontend (parser, AST, typecheck)", "crates/frontend/src"),
        ("GraphIR", "crates/graphir/src"),
        ("Scheduling language", "crates/schedule/src"),
        ("HW-independent compiler", "crates/midend/src"),
        ("Shared runtime", "crates/runtime/src"),
        ("Graph substrate", "crates/graph/src"),
        ("CPU GraphVM", "crates/backend-cpu/src"),
        ("GPU GraphVM", "crates/backend-gpu/src"),
        ("GPU simulator", "crates/sim-gpu/src"),
        ("Swarm GraphVM", "crates/backend-swarm/src"),
        ("Swarm simulator", "crates/sim-swarm/src"),
        ("HammerBlade GraphVM", "crates/backend-hb/src"),
        ("HammerBlade simulator", "crates/sim-hb/src"),
        ("Algorithms & references", "crates/algorithms/src"),
        ("Baselines (Fig. 9/12)", "crates/baselines/src"),
        ("Facade", "crates/core/src"),
        ("Bench harness", "crates/bench/src"),
    ] {
        let n = count_lines(&root.join(rel));
        total += n;
        println!("{label:<38}{n:>8}");
    }
    println!("{:<38}{total:>8}", "TOTAL (library code)");
}

fn count_lines(dir: &std::path::Path) -> usize {
    let mut n = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                n += count_lines(&p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(text) = std::fs::read_to_string(&p) {
                    n += text.lines().count();
                }
            }
        }
    }
    n
}

/// Table VIII: the input graphs (paper sizes and stand-in sizes).
fn table8(scale: Scale) {
    banner("Table 8: input graphs (paper original vs generated stand-in)");
    println!(
        "{:<6}{:>14}{:>14}{:>12}{:>12}  class",
        "", "paper |V|", "paper |E|", "standin |V|", "standin |E|"
    );
    for d in Dataset::ALL {
        let (pv, pe) = d.paper_size();
        let g = d.generate(scale);
        println!(
            "{:<6}{:>14}{:>14}{:>12}{:>12}  {:?}",
            d.abbrev(),
            pv,
            pe,
            g.num_vertices(),
            g.num_edges(),
            d.profile()
        );
    }
}

/// Table IX: impact of the HammerBlade blocked-access optimization on SSSP.
fn table9(scale: Scale) {
    banner("Table 9: HammerBlade blocked-access impact on SSSP");
    println!(
        "{:<6}{:>14}{:>14}{:>10}",
        "", "DRAM stalls", "bandwidth", "speedup"
    );
    for d in [Dataset::LiveJournal, Dataset::Hollywood, Dataset::Pokec] {
        let graph = d.generate(scale);
        let run = |blocked: bool| {
            let mut c = Compiler::new(Algorithm::Sssp);
            let sched = if blocked {
                tuned_schedule(Target::HammerBlade, Algorithm::Sssp, d.profile())
            } else {
                ugc_schedule::ScheduleRef::simple(
                    ugc_backend_hb::HbSchedule::new()
                        .with_direction(ugc_schedule::SchedDirection::Hybrid)
                        .with_delta(8),
                )
            };
            c.start_vertex(0)
                .schedule(Algorithm::Sssp.schedule_path(), sched);
            let prog = c.compile().expect("compiles");
            HbGraphVm::default()
                .execute(prog, &graph, &externs(Algorithm::Sssp))
                .expect("runs")
        };
        let base = run(false);
        let blocked = run(true);
        println!(
            "{:<6}{:>14.2}{:>14.2}{:>10.2}",
            d.abbrev(),
            blocked.stats.dram_stall_cycles as f64 / base.stats.dram_stall_cycles.max(1) as f64,
            blocked.bandwidth_utilization / base.bandwidth_utilization.max(1e-12),
            base.cycles as f64 / blocked.cycles as f64,
        );
    }
    println!("(DRAM stalls < 1 and bandwidth > 1 reproduce the paper's direction)");
}

/// Table X: Swarm GraphVM vs the CPU GraphVM's best code run on Swarm.
fn table10(scale: Scale) {
    banner("Table 10: Swarm GraphVM speedup over CPU-GraphVM-style code on Swarm hardware");
    println!("{:<6}{:>8}{:>8}", "", "SSSP", "BFS");
    for d in [Dataset::RoadNetCa, Dataset::RoadCentral, Dataset::RoadUsa] {
        let graph = d.generate(scale);
        print!("{:<6}", d.abbrev());
        for algo in [Algorithm::Sssp, Algorithm::Bfs] {
            // "CPU GraphVM's best code on Swarm" = barriered rounds without
            // task conversion (the best the CPU-style code can do there).
            let cpu_style = measure(
                Target::Swarm,
                algo,
                &graph,
                baseline_schedule(Target::Swarm, algo),
                1,
            );
            let swarm = measure(
                Target::Swarm,
                algo,
                &graph,
                tuned_schedule(Target::Swarm, algo, d.profile()),
                1,
            );
            print!("{:>8.2}", cpu_style.time_ms / swarm.time_ms);
        }
        println!();
    }
}

/// Tables I, VI, VII: the architecture configurations.
fn configs() {
    banner("Tables I/VI/VII: simulated architecture configurations");
    println!("GPU     : {:?}\n", GpuConfig::default());
    println!("Swarm   : {:?}\n", SwarmConfig::default());
    println!("HB      : {:?}", ugc_sim_hb::HbConfig::default());
}

/// `repro run <target> <algo> <dataset>`: one tuned-schedule run with a
/// per-algorithm result summary. `--k` (kcore) additionally reports the
/// k-core membership count at that level; `--max-iters` (lp) overrides the
/// round bound.
fn run_one(
    target: Target,
    algo: Algorithm,
    dataset: Dataset,
    scale: Scale,
    k: Option<i64>,
    max_iters: Option<i64>,
) {
    banner(&format!(
        "Run: {} on {} GraphVM, {} (scale {})",
        algo.name(),
        target.name(),
        dataset.abbrev(),
        scale.name()
    ));
    let graph = dataset.generate(scale);
    let mut c = Compiler::new(algo);
    c.schedule(
        algo.schedule_path(),
        ugc_bench::tuned_schedule_for(target, algo, &graph),
    );
    if algo.needs_start_vertex() {
        c.start_vertex(0);
    }
    if let Some(mi) = max_iters {
        c.bind("max_iters", ugc_runtime::value::Value::Int(mi));
    }
    let r = c.run(target, &graph).unwrap_or_else(|e| {
        eprintln!("repro: {e}");
        std::process::exit(1);
    });
    println!(
        "n={} time_ms={:.3} cycles={}",
        graph.num_vertices(),
        r.time_ms,
        r.cycles
    );
    match algo {
        Algorithm::Tc => {
            // Each triangle is seen from both directions of its 3 edges.
            let total: i64 = r.property_ints("tri").iter().sum();
            println!("triangles={}", total / 6);
        }
        Algorithm::KCore => {
            let core = r.property_ints("core");
            println!("max_coreness={}", core.iter().max().copied().unwrap_or(0));
            if let Some(k) = k {
                let size = core.iter().filter(|&&c| c >= k).count();
                println!("kcore_size[k={k}]={size}");
            }
        }
        Algorithm::Lp => {
            let labels = r.property_ints("labels");
            let classes: std::collections::HashSet<i64> = labels.iter().copied().collect();
            println!("label_classes={}", classes.len());
        }
        _ => {}
    }
}

fn externs(algo: Algorithm) -> std::collections::HashMap<String, ugc_runtime::value::Value> {
    let mut m = std::collections::HashMap::new();
    if algo.needs_start_vertex() {
        m.insert(
            "start_vertex".to_string(),
            ugc_runtime::value::Value::Int(0),
        );
    }
    m
}
