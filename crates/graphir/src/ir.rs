//! GraphIR program structure: programs, functions, statements, expressions.
//!
//! Statements and expressions each carry a [`Metadata`] map (see the crate
//! docs); *arguments* — the struct fields — capture what is needed for
//! correctness, while metadata captures optimization decisions.

use crate::meta::Metadata;
use crate::types::{BinOp, Intrinsic, ReduceOp, Type, UnOp};

/// A complete GraphIR program: property vectors, scalar globals, priority
/// queues, user-defined functions, and the `main` body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Per-vertex property vectors (`VertexData` in Table II).
    pub properties: Vec<PropertyDecl>,
    /// Scalar globals shared between host and device.
    pub globals: Vec<GlobalDecl>,
    /// Priority queues for ordered algorithms (∆-stepping SSSP).
    pub queues: Vec<QueueDecl>,
    /// User-defined functions applied by the iteration operators.
    pub functions: Vec<Function>,
    /// The host-level `main` body.
    pub main: Vec<Stmt>,
    /// Program-wide metadata.
    pub meta: Metadata,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a per-vertex property initialized to `init` for every
    /// vertex.
    pub fn add_property(&mut self, name: impl Into<String>, ty: Type, init: Expr) -> &mut Self {
        self.properties.push(PropertyDecl {
            name: name.into(),
            ty,
            init,
            meta: Metadata::new(),
        });
        self
    }

    /// Looks up a property declaration by name.
    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Declares a scalar global.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        init: Option<Expr>,
    ) -> &mut Self {
        self.globals.push(GlobalDecl {
            name: name.into(),
            ty,
            init,
            meta: Metadata::new(),
        });
        self
    }

    /// Looks up a global declaration by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Declares a priority queue tracking `tracked_property`, seeded with
    /// `source`.
    pub fn add_queue(
        &mut self,
        name: impl Into<String>,
        tracked_property: impl Into<String>,
        source: Expr,
    ) -> &mut Self {
        self.queues.push(QueueDecl {
            name: name.into(),
            tracked_property: tracked_property.into(),
            source,
            meta: Metadata::new(),
        });
        self
    }

    /// Looks up a queue declaration by name.
    pub fn queue(&self, name: &str) -> Option<&QueueDecl> {
        self.queues.iter().find(|q| q.name == name)
    }

    /// Adds a user-defined function.
    pub fn add_function(&mut self, f: Function) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

/// Declaration of a per-vertex property vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDecl {
    /// Property name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Initial value for every vertex (a constant expression).
    pub init: Expr,
    /// Metadata (e.g., array-of-struct vs struct-of-array decisions).
    pub meta: Metadata,
}

/// Declaration of a scalar global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Global name.
    pub name: String,
    /// Value type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Metadata.
    pub meta: Metadata,
}

/// Declaration of a priority queue (`PrioQueue` in Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDecl {
    /// Queue name.
    pub name: String,
    /// The integer property holding each vertex's priority.
    pub tracked_property: String,
    /// The initially enqueued vertex.
    pub source: Expr,
    /// Metadata — e.g., the ∆ bucket width chosen by the schedule.
    pub meta: Metadata,
}

/// A function parameter or named return value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name bound in the body.
    pub name: String,
    /// Type.
    pub ty: Type,
}

impl Param {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A user-defined function (UDF) applied by the iteration operators, or a
/// host helper.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters. Edge UDFs take `(src, dst)`; vertex UDFs take `(v)`.
    pub params: Vec<Param>,
    /// Optional named return (GraphIt's `-> output : bool` style).
    pub ret: Option<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Metadata (placement, analysis results).
    pub meta: Metadata,
}

impl Function {
    /// Creates a function with the given signature and empty body.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret: Option<Param>) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            body: Vec::new(),
            meta: Metadata::new(),
        }
    }
}

/// A statement plus its label and metadata.
///
/// Labels come from the `#s0#` markers in the algorithm source and are how
/// scheduling directives find their target statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Optional scheduling label (`s0`, `s1`, …).
    pub label: Option<String>,
    /// Metadata attached by passes.
    pub meta: Metadata,
}

impl Stmt {
    /// Wraps a kind with no label and empty metadata.
    pub fn new(kind: StmtKind) -> Self {
        Stmt {
            kind,
            label: None,
            meta: Metadata::new(),
        }
    }

    /// Wraps a kind with a scheduling label.
    pub fn labeled(label: impl Into<String>, kind: StmtKind) -> Self {
        Stmt {
            kind,
            label: Some(label.into()),
            meta: Metadata::new(),
        }
    }
}

impl From<StmtKind> for Stmt {
    fn from(kind: StmtKind) -> Self {
        Stmt::new(kind)
    }
}

/// Assignment target: a local/global variable or a property element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable (local, parameter, named return, or global).
    Var(String),
    /// `prop[index]` — one element of a property vector.
    Prop {
        /// Property name.
        prop: String,
        /// Vertex index expression.
        index: Box<Expr>,
    },
}

impl LValue {
    /// Convenience constructor for a property element target.
    pub fn prop(prop: impl Into<String>, index: Expr) -> Self {
        LValue::Prop {
            prop: prop.into(),
            index: Box::new(index),
        }
    }
}

/// The statement kinds of GraphIR (paper Table II plus scalar control flow).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Declare (and optionally initialize) a local variable.
    VarDecl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Plain assignment.
    Assign {
        /// Target location.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// Reduction assignment (`+=`, `min=`, `max=`, `|=`). The
    /// atomics-insertion pass may set [`keys::IS_ATOMIC`](crate::keys).
    Reduce {
        /// Target location.
        target: LValue,
        /// Reduction operator.
        op: ReduceOp,
        /// Value to fold in.
        value: Expr,
        /// If present, this variable is set to `true` when the reduction
        /// changed the target (GraphIt's "tracking variable").
        tracking: Option<String>,
    },
    /// Two-armed conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while` loop. The GPU GraphVM may set
    /// [`keys::NEEDS_FUSION`](crate::keys) on the carrying [`Stmt`].
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Counted loop over `start..end`.
    For {
        /// Induction variable.
        var: String,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Expression evaluated for effect.
    ExprStmt(Expr),
    /// Return from the enclosing function (UDFs with named returns assign
    /// the return variable instead).
    Return(Expr),
    /// Break out of the innermost loop.
    Break,
    /// The flagship operator: iterate (a subset of) the graph's edges and
    /// apply a UDF to each.
    EdgeSetIterator(EdgeSetIteratorData),
    /// Iterate the vertices of a set (or all vertices) and apply a UDF.
    VertexSetIterator {
        /// Input set name; `None` means all vertices.
        set: Option<String>,
        /// The vertex UDF.
        apply: String,
    },
    /// Build a new vertex set from the vertices of `input` (or all
    /// vertices) satisfying a boolean filter UDF — the active-set peeling
    /// primitive (k-core's per-round "vertices below the threshold").
    VertexSetFilter {
        /// Input set name; `None` means all vertices.
        input: Option<String>,
        /// Output set variable to create.
        out: String,
        /// The boolean vertex filter UDF.
        filter: String,
    },
    /// Append a vertex to a frontier being constructed. `set` of `None`
    /// targets the enclosing `EdgeSetIterator`'s output frontier.
    EnqueueVertex {
        /// Explicit target set, or `None` for the implicit output frontier.
        set: Option<String>,
        /// The vertex to enqueue.
        vertex: Expr,
    },
    /// Remove duplicate vertices from a frontier.
    VertexSetDedup {
        /// The set to deduplicate.
        set: String,
    },
    /// `UpdatePriorityMin` / `UpdatePrioritySum` from Table II: fold a new
    /// priority into `queue`'s tracked property for `vertex` and reschedule
    /// it. `op` is [`ReduceOp::Min`] or [`ReduceOp::Sum`].
    UpdatePriority {
        /// Queue being updated.
        queue: String,
        /// Vertex whose priority changes.
        vertex: Expr,
        /// Min or Sum.
        op: ReduceOp,
        /// The candidate priority (Min) or the increment (Sum).
        value: Expr,
    },
    /// Append a frontier to a [`Type::FrontierList`].
    ListAppend {
        /// The list.
        list: String,
        /// The set to append.
        set: String,
    },
    /// Retrieve the frontier at `index` (counted from the front) into
    /// `out`.
    ListRetrieve {
        /// The list.
        list: String,
        /// Index expression.
        index: Expr,
        /// Output set variable.
        out: String,
    },
    /// Pop the most recently appended frontier into `out` (BC's backward
    /// sweep).
    ListPopBack {
        /// The list.
        list: String,
        /// Output set variable.
        out: String,
    },
    /// Destroy a set/list variable (GraphIt's `delete`).
    Delete {
        /// Variable name.
        name: String,
    },
    /// Host-side print for debugging examples.
    Print(Expr),
}

/// Arguments of the `EdgeSetIterator` instruction (paper Table II). The
/// interesting optimization decisions (direction, representations, load
/// balancing) live in the statement's metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSetIteratorData {
    /// The graph (edge set) variable to traverse.
    pub graph: String,
    /// Input frontier variable; `None` means all vertices are active.
    pub input: Option<String>,
    /// Output frontier variable to create; `None` when no output is needed.
    pub output: Option<String>,
    /// The edge UDF `(src, dst)`.
    pub apply: String,
    /// Optional filter on source vertices (`from(func)`).
    pub src_filter: Option<String>,
    /// Optional filter on destination vertices (`to(func)`).
    pub dst_filter: Option<String>,
    /// For `applyModified`: the property whose modification marks a vertex
    /// as belonging to the output frontier.
    pub tracked_prop: Option<String>,
    /// Traverse the transposed graph (used by BC's backward pass).
    pub transposed: bool,
}

impl EdgeSetIteratorData {
    /// Minimal constructor: apply `apply` to every edge of `graph`.
    pub fn all_edges(graph: impl Into<String>, apply: impl Into<String>) -> Self {
        EdgeSetIteratorData {
            graph: graph.into(),
            input: None,
            output: None,
            apply: apply.into(),
            src_filter: None,
            dst_filter: None,
            tracked_prop: None,
            transposed: false,
        }
    }
}

/// An expression plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression kind.
    pub kind: ExprKind,
    /// Metadata attached by passes (e.g., `is_atomic` on a CAS).
    pub meta: Metadata,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference (local, parameter, named return, or global).
    Var(String),
    /// `prop[index]`.
    PropRead {
        /// Property name.
        prop: String,
        /// Vertex index expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Built-in runtime operation.
    Intrinsic {
        /// Which intrinsic.
        kind: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Call a user-defined (boolean filter or helper) function.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Atomic compare-and-swap on a property element; evaluates to `true`
    /// when the swap happened. Inserted by the atomics pass (Fig. 4 line 3).
    CompareAndSwap {
        /// Property name.
        prop: String,
        /// Vertex index expression.
        index: Box<Expr>,
        /// Expected value.
        expected: Box<Expr>,
        /// Replacement value.
        new: Box<Expr>,
    },
}

impl Expr {
    /// Wraps a kind with empty metadata.
    pub fn new(kind: ExprKind) -> Self {
        Expr {
            kind,
            meta: Metadata::new(),
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::Int(v))
    }

    /// Float literal.
    pub fn float(v: f64) -> Self {
        Expr::new(ExprKind::Float(v))
    }

    /// Boolean literal.
    pub fn bool(v: bool) -> Self {
        Expr::new(ExprKind::Bool(v))
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Var(name.into()))
    }

    /// Property read `prop[index]`.
    pub fn prop(prop: impl Into<String>, index: Expr) -> Self {
        Expr::new(ExprKind::PropRead {
            prop: prop.into(),
            index: Box::new(index),
        })
    }

    /// Binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::new(ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Unary operation.
    pub fn un(op: UnOp, operand: Expr) -> Self {
        Expr::new(ExprKind::Unary {
            op,
            operand: Box::new(operand),
        })
    }

    /// Intrinsic call.
    pub fn intrinsic(kind: Intrinsic, args: Vec<Expr>) -> Self {
        Expr::new(ExprKind::Intrinsic { kind, args })
    }

    /// UDF call.
    pub fn call(func: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::new(ExprKind::Call {
            func: func.into(),
            args,
        })
    }

    /// Compare-and-swap on `prop[index]`.
    pub fn cas(prop: impl Into<String>, index: Expr, expected: Expr, new: Expr) -> Self {
        Expr::new(ExprKind::CompareAndSwap {
            prop: prop.into(),
            index: Box::new(index),
            expected: Box::new(expected),
            new: Box::new(new),
        })
    }
}

impl From<ExprKind> for Expr {
    fn from(kind: ExprKind) -> Self {
        Expr::new(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;
    use crate::types::Direction;

    #[test]
    fn program_lookup() {
        let mut p = Program::new();
        p.add_property("rank", Type::Float, Expr::float(0.0));
        p.add_global("err", Type::Float, Some(Expr::float(0.0)));
        p.add_queue("pq", "dist", Expr::int(0));
        assert!(p.property("rank").is_some());
        assert!(p.property("nope").is_none());
        assert!(p.global("err").is_some());
        assert_eq!(p.queue("pq").unwrap().tracked_property, "dist");
    }

    #[test]
    fn function_round_trip() {
        let mut p = Program::new();
        let f = Function::new(
            "toFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        p.add_function(f);
        assert_eq!(p.function("toFilter").unwrap().params.len(), 1);
        p.function_mut("toFilter")
            .unwrap()
            .meta
            .set(keys::PLACEMENT, "DEVICE");
        assert_eq!(
            p.function("toFilter")
                .unwrap()
                .meta
                .get_str(keys::PLACEMENT),
            Some("DEVICE")
        );
    }

    #[test]
    fn stmt_labels_and_metadata() {
        let mut s = Stmt::labeled(
            "s1",
            StmtKind::EdgeSetIterator(EdgeSetIteratorData::all_edges("edges", "updateEdge")),
        );
        s.meta.set(keys::DIRECTION, Direction::Push);
        assert_eq!(s.label.as_deref(), Some("s1"));
        assert_eq!(s.meta.get_direction(keys::DIRECTION), Some(Direction::Push));
    }

    #[test]
    fn expr_builders() {
        let e = Expr::bin(
            BinOp::Eq,
            Expr::prop("parent", Expr::var("v")),
            Expr::int(-1),
        );
        match &e.kind {
            ExprKind::Binary { op, lhs, .. } => {
                assert_eq!(*op, BinOp::Eq);
                assert!(matches!(lhs.kind, ExprKind::PropRead { .. }));
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn cas_expr_shape() {
        let e = Expr::cas("parent", Expr::var("dst"), Expr::int(-1), Expr::var("src"));
        assert!(matches!(e.kind, ExprKind::CompareAndSwap { .. }));
    }

    #[test]
    fn edge_set_iterator_defaults() {
        let d = EdgeSetIteratorData::all_edges("edges", "f");
        assert!(d.input.is_none());
        assert!(!d.transposed);
    }

    #[test]
    fn stmt_from_kind() {
        let s: Stmt = StmtKind::Break.into();
        assert_eq!(s.kind, StmtKind::Break);
    }
}
