//! Compiled kernel dispatch: the CPU executor's monomorphized edge
//! kernels versus the interpreter they replace.
//!
//! Two guarantees:
//!
//! 1. **Total dispatch** — every reachable point of the CPU schedule
//!    space, applied to every algorithm, yields edge traversals that
//!    either resolve to a *named* compiled kernel or deliberately fall
//!    back to the interpreter. Recognition is a closed decision, never a
//!    crash, and every resolved name comes from the known kernel library.
//! 2. **Differential equality** — with a single thread the kernel path
//!    and the interpreter path visit edges in the same order, so every
//!    result property must be *bit-identical* between a `with_kernels`
//!    run and an interpreter-forced run, across the whole graph
//!    menagerie. Multi-threaded runs agree on the race-free derived
//!    results (BFS levels, SSSP distances).

use ugc_algorithms::Algorithm;
use ugc_backend_cpu::{kernels, CpuGraphVm, CpuSchedule, CpuScheduleSpace};
use ugc_graphir::ir::{Program, Stmt, StmtKind};
use ugc_integration::{compile, externs_for, test_graphs, validate};
use ugc_runtime::bytecode::{binding_of, compile_udfs, UdfSet};
use ugc_schedule::space::{PointIter, ScheduleSpace, SpaceParams};
use ugc_schedule::{Parallelization, SchedDirection, ScheduleRef};

/// Every kernel the library can assemble. A recognized name outside this
/// set means the executor dispatch table and this test have diverged.
const KNOWN_KERNELS: &[&str] = &[
    "cas_claim",
    "reduce_sum",
    "reduce_min",
    "reduce_max",
    "reduce_or",
    "relax_min",
    "relax_sum",
];

/// Collects every edge traversal in a statement tree.
fn edge_iterators(stmts: &[Stmt], out: &mut Vec<ugc_graphir::ir::EdgeSetIteratorData>) {
    for s in stmts {
        match &s.kind {
            StmtKind::EdgeSetIterator(d) => out.push(d.clone()),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                edge_iterators(then_body, out);
                edge_iterators(else_body, out);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                edge_iterators(body, out);
            }
            _ => {}
        }
    }
}

fn all_edge_iterators(prog: &Program) -> Vec<ugc_graphir::ir::EdgeSetIteratorData> {
    let mut iters = Vec::new();
    edge_iterators(&prog.main, &mut iters);
    for f in &prog.functions {
        edge_iterators(&f.body, &mut iters);
    }
    iters
}

/// `(kernel name | None)` for each edge traversal of a compiled program,
/// resolved exactly the way the executor's dispatch table does.
fn resolutions(prog: &Program, udfs: &UdfSet) -> Vec<Option<&'static str>> {
    all_edge_iterators(prog)
        .iter()
        .map(|d| {
            let apply = udfs
                .id_of(&d.apply)
                .unwrap_or_else(|| panic!("apply UDF `{}` missing", d.apply));
            let sf = d.src_filter.as_ref().map(|n| {
                udfs.id_of(n)
                    .unwrap_or_else(|| panic!("src filter `{n}` missing"))
            });
            let df = d.dst_filter.as_ref().map(|n| {
                udfs.id_of(n)
                    .unwrap_or_else(|| panic!("dst filter `{n}` missing"))
            });
            kernels::recognize_name(prog, udfs, apply, sf, df)
        })
        .collect()
}

/// Guarantee 1: the whole reachable schedule space dispatches cleanly.
#[test]
fn every_schedule_point_resolves_or_deliberately_falls_back() {
    let mut specialized = 0usize;
    let mut fallback = 0usize;
    for algo in Algorithm::ALL {
        let params = SpaceParams {
            ordered: matches!(algo, Algorithm::Sssp),
            data_driven: matches!(algo, Algorithm::Bfs | Algorithm::Bc),
            num_vertices: 64,
        };
        let dims = CpuScheduleSpace.dimensions(&params);
        for pt in PointIter::new(&dims) {
            let Some(sched) = CpuScheduleSpace.materialize(&params, &pt) else {
                continue;
            };
            let prog = compile(algo, Some(sched));
            let udfs = compile_udfs(&prog, &binding_of(&prog))
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            let res = resolutions(&prog, &udfs);
            assert!(
                !res.is_empty(),
                "{} at point {pt:?}: no edge traversal found",
                algo.name()
            );
            for r in res {
                match r {
                    Some(name) => {
                        assert!(
                            KNOWN_KERNELS.contains(&name),
                            "{} at point {pt:?}: unknown kernel `{name}`",
                            algo.name()
                        );
                        specialized += 1;
                    }
                    None => fallback += 1,
                }
            }
        }
    }
    // The library must actually engage somewhere — an all-fallback space
    // would silently reintroduce the interpreter tax this PR removes.
    assert!(
        specialized > 0,
        "no schedule point resolved to a compiled kernel ({fallback} fallbacks)"
    );
}

/// The core frontier algorithms must hit compiled kernels under their
/// default schedules — these are exactly the hot loops of the fig8 CPU
/// cells this PR speeds up.
#[test]
fn default_schedules_of_frontier_algorithms_specialize() {
    for algo in [Algorithm::Bfs, Algorithm::Cc, Algorithm::Sssp] {
        let prog = compile(algo, None);
        let udfs = compile_udfs(&prog, &binding_of(&prog)).expect("udfs compile");
        let res = resolutions(&prog, &udfs);
        assert!(
            res.iter().any(Option::is_some),
            "{}: default schedule never reaches a compiled kernel: {res:?}",
            algo.name()
        );
    }
}

/// The primary result property of each algorithm, with its comparison
/// domain (ints or float bits — both exact).
fn result_bits(run: &ugc_backend_cpu::Execution<'_>, algo: Algorithm) -> Vec<u64> {
    match algo {
        Algorithm::Bfs => run
            .property_ints("parent")
            .iter()
            .map(|&v| v as u64)
            .collect(),
        Algorithm::Sssp => run
            .property_ints("dist")
            .iter()
            .map(|&v| v as u64)
            .collect(),
        Algorithm::Cc => run.property_ints("IDs").iter().map(|&v| v as u64).collect(),
        Algorithm::PageRank => run
            .property_floats("old_rank")
            .iter()
            .map(|&v| v.to_bits())
            .collect(),
        Algorithm::Bc => run
            .property_floats("centrality")
            .iter()
            .map(|&v| v.to_bits())
            .collect(),
        Algorithm::Tc => run.property_ints("tri").iter().map(|&v| v as u64).collect(),
        Algorithm::KCore => run
            .property_ints("core")
            .iter()
            .map(|&v| v as u64)
            .collect(),
        Algorithm::Lp => run
            .property_ints("labels")
            .iter()
            .map(|&v| v as u64)
            .collect(),
    }
}

/// The schedules the differential sweep runs per algorithm. Pull and
/// cache blocking only where the correctness suite exercises them.
fn differential_scheds(algo: Algorithm) -> Vec<Option<ScheduleRef>> {
    let mut scheds: Vec<Option<ScheduleRef>> = vec![
        None,
        Some(ScheduleRef::simple(
            CpuSchedule::new()
                .with_serial_threshold(0)
                .with_parallelization(Parallelization::EdgeAwareVertexBased),
        )),
        Some(ScheduleRef::simple(
            CpuSchedule::new().with_deduplication(true),
        )),
    ];
    if matches!(algo, Algorithm::Bfs | Algorithm::PageRank) {
        scheds.push(Some(ScheduleRef::simple(
            CpuSchedule::new().with_direction(SchedDirection::Pull),
        )));
        scheds.push(Some(ScheduleRef::simple(
            CpuSchedule::new().with_cache_blocking(true),
        )));
    }
    scheds
}

/// The recognizer's decision on each new scenario algorithm is deliberate,
/// not accidental:
///
/// - **LP** (`next_label[dst] min= labels[src]`) is exactly the CC
///   reduction shape and must specialize to `reduce_min`. (Bit-identity
///   with the interpreter is covered by the `Algorithm::ALL` sweep above.)
/// - **TC** (`tri[dst] += intersect_count(src, dst)`) must fall back: the
///   kernel library only specializes reductions whose value is a plain
///   property load of `src`, and has no kernel for intrinsic-valued
///   (adjacency-intersection) work. The fallback is *counted* under
///   `cpu.kernel.fallback`, never silent.
/// - **k-core** (`deg[dst] += -1`) must fall back for the same reason: a
///   literal-valued reduction has no specialized kernel yet.
#[test]
fn new_algorithms_dispatch_deliberately() {
    let resolutions_of = |algo: Algorithm| {
        let prog = compile(algo, None);
        let udfs = compile_udfs(&prog, &binding_of(&prog)).expect("udfs compile");
        resolutions(&prog, &udfs)
    };
    assert_eq!(
        resolutions_of(Algorithm::Lp),
        vec![Some("reduce_min")],
        "LP's propagate is the CC shape and must specialize"
    );
    assert_eq!(
        resolutions_of(Algorithm::Tc),
        vec![None],
        "TC must (deliberately) fall back — no intersection kernel exists"
    );
    assert_eq!(
        resolutions_of(Algorithm::KCore),
        vec![None],
        "k-core must (deliberately) fall back — no literal-valued reduction kernel"
    );
    // Fallbacks are counted, not silent: a kernels-enabled TC run bumps
    // `cpu.kernel.fallback` (when telemetry is collected at all).
    if ugc_telemetry::enabled() {
        let col = ugc_telemetry::Collector::start();
        let graph = ugc_graph::generators::clique_batch(2, 4);
        CpuGraphVm::with_threads(1)
            .with_kernels(true)
            .execute(
                compile(Algorithm::Tc, None),
                &graph,
                &externs_for(Algorithm::Tc, 0),
            )
            .expect("tc runs");
        let snap = col.snapshot();
        assert!(
            snap.get("cpu.kernel.fallback").unwrap_or(0) > 0,
            "TC fallback was not counted: {snap:?}"
        );
    }
}

/// Guarantee 2 (serial): kernels on vs interpreter-forced, one thread,
/// bit-identical results everywhere — and both valid against the
/// sequential reference.
#[test]
fn kernels_are_bit_identical_to_interpreter_single_threaded() {
    for algo in Algorithm::ALL {
        for sched in differential_scheds(algo) {
            for (gname, graph) in test_graphs() {
                let run = |kernels_on: bool| {
                    let prog = compile(algo, sched.clone());
                    CpuGraphVm::with_threads(1)
                        .with_kernels(kernels_on)
                        .execute(prog, &graph, &externs_for(algo, 0))
                        .unwrap_or_else(|e| panic!("{} on {gname}: {e}", algo.name()))
                };
                let kernel_run = run(true);
                let interp_run = run(false);
                assert_eq!(
                    result_bits(&kernel_run, algo),
                    result_bits(&interp_run, algo),
                    "{} on {gname}: kernel result diverges from interpreter",
                    algo.name()
                );
                validate(algo, &graph, 0, &|p| kernel_run.property_ints(p), &|p| {
                    kernel_run.property_floats(p)
                });
            }
        }
    }
}

/// Guarantee 2 (parallel): under real threads the kernel path agrees with
/// the interpreter on the race-free derived answers.
#[test]
fn kernels_match_interpreter_under_threads() {
    let graph = ugc_graph::generators::rmat(9, 6, 13, true);
    let sched = ScheduleRef::simple(CpuSchedule::new().with_serial_threshold(0));
    for kernels_on in [true, false] {
        let bfs = CpuGraphVm::with_threads(8)
            .with_kernels(kernels_on)
            .execute(
                compile(Algorithm::Bfs, Some(sched.clone())),
                &graph,
                &externs_for(Algorithm::Bfs, 0),
            )
            .expect("bfs runs");
        ugc_algorithms::validate::check_bfs_parents(&graph, 0, &bfs.property_ints("parent"))
            .expect("valid BFS tree");
    }
    // SSSP distances converge to the unique shortest-path fixpoint under
    // any interleaving: exact equality across both dispatch modes.
    let dist_of = |kernels_on: bool| {
        CpuGraphVm::with_threads(8)
            .with_kernels(kernels_on)
            .execute(
                compile(Algorithm::Sssp, Some(sched.clone())),
                &graph,
                &externs_for(Algorithm::Sssp, 0),
            )
            .expect("sssp runs")
            .property_ints("dist")
    };
    assert_eq!(dist_of(true), dist_of(false));
}

// ---------------------------------------------------------------------------
// Widened recognizer coverage: UpdatePrio Sum and float-equality filters.
// ---------------------------------------------------------------------------

/// Compiles DSL source through the full hardware-independent pipeline,
/// with no schedules attached.
fn compile_source(src: &str) -> Program {
    let mut prog = ugc_midend::frontend_to_ir(src).expect("source compiles");
    ugc_midend::run_passes(&mut prog).expect("midend passes run");
    prog
}

/// Delta-accumulation over a priority queue: `updatePrioritySum` of a bare
/// property load — the re-read-after-reduce shape the recognizer now
/// specializes as `relax_sum`.
const DELTA_SUM_SRC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const heat : vector{Vertex}(int) = 0;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(heat, start_vertex);

func updateEdge(src : Vertex, dst : Vertex)
    pq.updatePrioritySum(dst, heat[src]);
end

func main()
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(updateEdge);
        delete frontier;
    end
end
"#;

/// The weighted variant: `updatePrioritySum` of `heat[src] + weight`.
const DELTA_SUM_WEIGHTED_SRC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex,int) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const heat : vector{Vertex}(int) = 0;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(heat, start_vertex);

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var bump : int = heat[src] + weight;
    pq.updatePrioritySum(dst, bump);
end

func main()
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(updateEdge);
        delete frontier;
    end
end
"#;

/// A float-equality vertex filter over exact cell values: specializes under
/// the recognizer's IEEE `==` comparison (DESIGN.md NaN policy).
const FLOAT_FILTER_SRC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const rank : vector{Vertex}(float) = 0.0;
const acc : vector{Vertex}(float) = 0.0;

func init(v : Vertex)
    rank[v] = to_float(v) - 1.0;
end

func updateEdge(src : Vertex, dst : Vertex)
    acc[dst] += rank[src];
end

func isCold(v : Vertex) -> output : bool
    output = (rank[v] == 0.0);
end

func main()
    vertices.apply(init);
    var n : int = vertices.size();
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(n);
    #s1# edges.from(frontier).to(isCold).apply(updateEdge);
    delete frontier;
end
"#;

/// Both `updatePrioritySum` shapes (bare load, load + weight) must resolve
/// to the `relax_sum` kernel rather than falling back.
#[test]
fn update_priority_sum_specializes_to_relax_sum() {
    for src in [DELTA_SUM_SRC, DELTA_SUM_WEIGHTED_SRC] {
        let prog = compile_source(src);
        let udfs = compile_udfs(&prog, &binding_of(&prog)).expect("udfs compile");
        let res = resolutions(&prog, &udfs);
        assert_eq!(
            res,
            vec![Some("relax_sum")],
            "updatePrioritySum must specialize"
        );
    }
}

/// The `relax_sum` kernel must reproduce the interpreter's notification
/// semantics exactly — Sum updates re-read the accumulated cell — so a
/// full delta-accumulation run is bit-identical across dispatch modes.
/// Forward-only edges keep the accumulation finite: the start's seed
/// priority is 0, each relaxation pushes `heat[src] + weight >= 1`
/// downstream, and nothing ever flows back.
#[test]
fn relax_sum_matches_interpreter_on_dag() {
    let mut b = ugc_graph::GraphBuilder::new(8);
    for (s, d, w) in [
        (0, 1, 1),
        (1, 2, 2),
        (2, 3, 1),
        (3, 4, 3),
        (4, 5, 1),
        (5, 6, 2),
        (6, 7, 1),
        (0, 2, 4),
        (1, 4, 1),
        (2, 5, 2),
        (3, 7, 5),
    ] {
        b.add_weighted_edge(s, d, w);
    }
    let graph = b.into_graph();
    let mut externs = std::collections::HashMap::new();
    externs.insert(
        "start_vertex".to_string(),
        ugc_runtime::value::Value::Int(0),
    );
    let heat_of = |kernels_on: bool| {
        CpuGraphVm::with_threads(1)
            .with_kernels(kernels_on)
            .execute(compile_source(DELTA_SUM_WEIGHTED_SRC), &graph, &externs)
            .expect("delta-sum runs")
            .property_ints("heat")
    };
    let kernel_heat = heat_of(true);
    let interp_heat = heat_of(false);
    assert_eq!(
        kernel_heat, interp_heat,
        "relax_sum diverges from the interpreter"
    );
    // Heat actually flowed down the DAG: the sink accumulated something.
    assert!(
        kernel_heat[7] > 0,
        "no heat reached the sink: {kernel_heat:?}"
    );
}

/// A float-equality filter engages the compiled kernel (no fallback) and
/// the filtered traversal stays bit-identical to the interpreter across
/// the graph menagerie.
#[test]
fn float_filter_specializes_and_matches_interpreter() {
    let prog = compile_source(FLOAT_FILTER_SRC);
    let udfs = compile_udfs(&prog, &binding_of(&prog)).expect("udfs compile");
    assert_eq!(
        resolutions(&prog, &udfs),
        vec![Some("reduce_sum")],
        "float-equality filter must not force a fallback"
    );
    let externs = std::collections::HashMap::new();
    for (gname, graph) in test_graphs() {
        let bits_of = |kernels_on: bool| {
            let run = CpuGraphVm::with_threads(1)
                .with_kernels(kernels_on)
                .execute(compile_source(FLOAT_FILTER_SRC), &graph, &externs)
                .unwrap_or_else(|e| panic!("float filter on {gname}: {e}"));
            let acc: Vec<u64> = run
                .property_floats("acc")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            acc
        };
        assert_eq!(
            bits_of(true),
            bits_of(false),
            "{gname}: filtered kernel diverges from interpreter"
        );
    }
}
