//! A discrete-event simulator of the Swarm architecture (paper §II-B3).
//!
//! Swarm executes tiny timestamped **tasks** speculatively and out of
//! order, committing them in timestamp order; the coherence protocol
//! detects order violations and aborts offending tasks. This simulator
//! models the mechanisms the Swarm GraphVM's optimizations manipulate:
//!
//! * a pool of cores greedily dispatching the lowest-timestamp ready task,
//! * a bounded **commit queue** (speculation window) — dispatch stalls when
//!   it fills,
//! * a bounded **task queue** — overflow spills to memory,
//! * **conflict detection** on cache-line read/write sets: when a task
//!   commits, later-ordered tasks that overlapped it in time and touched
//!   its written lines are aborted (with cascading aborts of their
//!   children) and re-executed,
//! * **spatial hints**: tasks carrying the same hint are serialized instead
//!   of speculated against each other, trading parallelism for aborts
//!   (paper §III-C3 "Fine-grained splitting and spatial hints"),
//! * an optional **barrier mode** modelling software work queues (one round
//!   may only start when the previous round fully committed) — the
//!   baseline that "vertex-set→tasks" eliminates.
//!
//! The simulation is two-phase: the GraphVM executes program logic
//! *functionally* in timestamp order (so memory state is always exact) and
//! records each task's duration, read/write lines, and spawned children;
//! [`SwarmSim::simulate`] then replays the task graph for timing. Aborted
//! tasks re-execute with identical footprints, which is exact for the
//! monotone graph updates UGC generates.
//!
//! Per-core time breakdowns (committed / aborted / idle variants / spill)
//! feed the paper's Fig. 11.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::OnceLock;

use ugc_resilience::{budget, fault};
use ugc_telemetry::{Counter, Histogram};

/// Where the simulated wall-clock cycles went, cumulatively per simulator.
///
/// Components always sum to [`SwarmSim::time_cycles`]. Each phase's
/// elapsed time is split proportionally to the phase's per-core cycle
/// categories (Fig. 11's breakdown), so the attribution reflects what the
/// cores were doing while the clock advanced without changing the timing
/// model itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwarmAttribution {
    /// Time dominated by committed work.
    pub commit: u64,
    /// Time dominated by aborted/re-executed work (plus penalties).
    pub abort: u64,
    /// Time cores idled with no ready task.
    pub idle_no_task: u64,
    /// Time cores stalled on a full commit queue.
    pub idle_cq_full: u64,
    /// Time spent spilling overflowing task queues.
    pub spill: u64,
    /// Sequential host cycles between phases.
    pub host: u64,
}

impl SwarmAttribution {
    /// Sum of all components — always equals the simulator's total time.
    pub fn total(&self) -> u64 {
        self.commit + self.abort + self.idle_no_task + self.idle_cq_full + self.spill + self.host
    }

    /// Named components in display order.
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("commit", self.commit),
            ("abort", self.abort),
            ("idle_no_task", self.idle_no_task),
            ("idle_cq_full", self.idle_cq_full),
            ("spill", self.spill),
            ("host", self.host),
        ]
    }
}

/// Registry handles for the `sim_swarm.` counter namespace.
struct Counters {
    commit: Counter,
    abort: Counter,
    idle_no_task: Counter,
    idle_cq_full: Counter,
    spill: Counter,
    host: Counter,
    total: Counter,
    tasks_spawned: Counter,
    commits: Counter,
    aborts: Counter,
    commit_order_merges: Counter,
    queue_occupancy: Histogram,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        commit: Counter::new("sim_swarm.cycles.commit"),
        abort: Counter::new("sim_swarm.cycles.abort"),
        idle_no_task: Counter::new("sim_swarm.cycles.idle_no_task"),
        idle_cq_full: Counter::new("sim_swarm.cycles.idle_cq_full"),
        spill: Counter::new("sim_swarm.cycles.spill"),
        host: Counter::new("sim_swarm.cycles.host"),
        total: Counter::new("sim_swarm.cycles.total"),
        tasks_spawned: Counter::new("sim_swarm.tasks_spawned"),
        commits: Counter::new("sim_swarm.commits"),
        aborts: Counter::new("sim_swarm.aborts"),
        commit_order_merges: Counter::new("sim_swarm.commit_order_merges"),
        queue_occupancy: Histogram::new("sim_swarm.queue_occupancy"),
    })
}

/// Identifier of a task within one simulation.
pub type TaskId = usize;

/// Configuration of the simulated Swarm machine (Table VI flavored).
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Worker cores.
    pub num_cores: usize,
    /// Chip tiles (spatial-hint homes).
    pub num_tiles: usize,
    /// Commit-queue entries (speculation window).
    pub commit_queue_capacity: usize,
    /// Task-queue entries before spilling.
    pub task_queue_capacity: usize,
    /// Dispatch overhead per task.
    pub dispatch_cycles: u64,
    /// Extra penalty per abort (rollback, re-dispatch).
    pub abort_penalty_cycles: u64,
    /// Penalty per task spilled to memory.
    pub spill_cycles: u64,
    /// Clock in GHz for reports.
    pub clock_ghz: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            num_cores: 64,
            num_tiles: 16,
            commit_queue_capacity: 2048,
            task_queue_capacity: 8192,
            dispatch_cycles: 6,
            abort_penalty_cycles: 30,
            spill_cycles: 40,
            clock_ghz: 3.5,
        }
    }
}

impl SwarmConfig {
    /// A configuration with `n` cores (tiles scale proportionally).
    pub fn with_cores(mut self, n: usize) -> Self {
        self.num_tiles = (n / 4).max(1);
        self.commit_queue_capacity = 32 * n;
        self.task_queue_capacity = 128 * n;
        self.num_cores = n;
        self
    }
}

/// One task recorded by the GraphVM's functional execution.
#[derive(Debug, Clone, Default)]
pub struct TaskSpec {
    /// Commit-order timestamp (round or priority).
    pub ts: u64,
    /// Execution cycles (excluding dispatch).
    pub duration: u64,
    /// Cache lines read.
    pub reads: Vec<u64>,
    /// Cache lines written.
    pub writes: Vec<u64>,
    /// Spatial hint: tasks with equal hints serialize instead of
    /// conflicting.
    pub hint: Option<u64>,
    /// Tasks spawned when this task finishes.
    pub children: Vec<TaskId>,
}

/// Task graphs below this size are sorted serially (pool dispatch and the
/// merge pass would cost more than the sort).
const PARALLEL_SORT_MIN: usize = 1 << 14;

/// The commit order `(ts, id)` of a task graph. Large graphs are sorted
/// as per-worker runs on the persistent pool followed by a serial k-way
/// merge; keys are unique, so the result is deterministic and identical
/// to a serial sort.
fn sorted_commit_order(tasks: &[TaskSpec]) -> Vec<TaskId> {
    sorted_commit_order_on(tasks, ugc_runtime::pool::default_threads())
}

fn sorted_commit_order_on(tasks: &[TaskSpec], threads: usize) -> Vec<TaskId> {
    let n = tasks.len();
    let mut order: Vec<TaskId> = (0..n).collect();
    if n < PARALLEL_SORT_MIN || threads < 2 {
        order.sort_unstable_by_key(|&t| (tasks[t].ts, t));
        return order;
    }
    counters().commit_order_merges.incr();
    let runs = threads.min(8);
    let run_len = n.div_ceil(runs);
    let mut slices: Vec<&mut [TaskId]> = order.chunks_mut(run_len).collect();
    ugc_runtime::pool::parallel_for_each_mut(threads, &mut slices, 1, |_tid, _start, window| {
        for run in window {
            run.sort_unstable_by_key(|&t| (tasks[t].ts, t));
        }
    });
    // Serial k-way merge of the sorted runs.
    let bounds: Vec<(usize, usize)> = (0..slices.len())
        .map(|r| (r * run_len, (r * run_len + slices[r].len())))
        .collect();
    drop(slices);
    let mut cursors: Vec<usize> = bounds.iter().map(|&(s, _)| s).collect();
    let mut heap: BinaryHeap<Reverse<((u64, TaskId), usize)>> = BinaryHeap::new();
    for (r, &(s, e)) in bounds.iter().enumerate() {
        if s < e {
            let t = order[s];
            heap.push(Reverse(((tasks[t].ts, t), r)));
        }
    }
    let mut merged = Vec::with_capacity(n);
    while let Some(Reverse(((_, t), r))) = heap.pop() {
        merged.push(t);
        cursors[r] += 1;
        if cursors[r] < bounds[r].1 {
            let nt = order[cursors[r]];
            heap.push(Reverse(((tasks[nt].ts, nt), r)));
        }
    }
    merged
}

/// Aggregate statistics of one simulation (Fig. 11's categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwarmStats {
    /// Cycles spent executing work that committed.
    pub commit_cycles: u64,
    /// Cycles wasted on work that was aborted (plus penalties).
    pub abort_cycles: u64,
    /// Core-cycles idle with no ready task.
    pub idle_no_task_cycles: u64,
    /// Core-cycles stalled on a full commit queue.
    pub idle_cq_full_cycles: u64,
    /// Cycles spent spilling overflowing task queues.
    pub spill_cycles: u64,
    /// Tasks committed.
    pub commits: u64,
    /// Tasks aborted (counting repeats).
    pub aborts: u64,
}

impl SwarmStats {
    /// Total core-cycles across all categories.
    pub fn total_core_cycles(&self) -> u64 {
        self.commit_cycles
            + self.abort_cycles
            + self.idle_no_task_cycles
            + self.idle_cq_full_cycles
            + self.spill_cycles
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Parent not finished yet.
    Waiting,
    /// Spawned; may start at `.0`.
    Ready(u64),
    /// On a core since `.0`, finishing at `.1`.
    Running(u64, u64),
    /// Executed (started `.0`, finished `.1`), awaiting commit.
    Finished(u64, u64),
    Committed,
}

/// The Swarm timing simulator.
#[derive(Debug)]
pub struct SwarmSim {
    /// Machine configuration.
    pub cfg: SwarmConfig,
    /// Statistics accumulated across [`SwarmSim::simulate`] calls.
    pub stats: SwarmStats,
    /// Wall-clock attribution; components sum to [`SwarmSim::time_cycles`].
    pub attr: SwarmAttribution,
    time: u64,
}

impl SwarmSim {
    /// Creates a simulator.
    pub fn new(cfg: SwarmConfig) -> Self {
        SwarmSim {
            cfg,
            stats: SwarmStats::default(),
            attr: SwarmAttribution::default(),
            time: 0,
        }
    }

    /// Records an attribution increment (the caller advances `time` by the
    /// same total) and mirrors it into the telemetry registry.
    fn attribute(&mut self, delta: SwarmAttribution) {
        self.attr.commit += delta.commit;
        self.attr.abort += delta.abort;
        self.attr.idle_no_task += delta.idle_no_task;
        self.attr.idle_cq_full += delta.idle_cq_full;
        self.attr.spill += delta.spill;
        self.attr.host += delta.host;
        let c = counters();
        c.commit.add(delta.commit);
        c.abort.add(delta.abort);
        c.idle_no_task.add(delta.idle_no_task);
        c.idle_cq_full.add(delta.idle_cq_full);
        c.spill.add(delta.spill);
        c.host.add(delta.host);
        c.total.add(delta.total());
    }

    /// Total simulated cycles so far.
    pub fn time_cycles(&self) -> u64 {
        self.time
    }

    /// Simulated milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time as f64 / (self.cfg.clock_ghz * 1e6)
    }

    /// Charges sequential host cycles (setup between task phases).
    pub fn host_cycles(&mut self, cycles: u64) {
        self.attribute(SwarmAttribution {
            host: cycles,
            ..SwarmAttribution::default()
        });
        self.time += cycles;
        budget::check_cycles(self.time);
    }

    /// Simulates a task graph. `roots` are initially ready; other tasks
    /// become ready when their parent finishes. With `barrier` set, a task
    /// may only start once every strictly-earlier-timestamp task has
    /// committed (software work-queue semantics).
    ///
    /// Returns the cycles this phase took; also advances total time.
    pub fn simulate(&mut self, tasks: &[TaskSpec], roots: &[TaskId], barrier: bool) -> u64 {
        if tasks.is_empty() {
            return 0;
        }
        // Injected abort storm: cascading aborts collapse the speculative
        // commit window for this phase — fatal to the attempt, retried by
        // the supervisor with a fresh draw stream.
        fault::roll_fatal(fault::Domain::Swarm, fault::FaultKind::TaskAbortStorm);
        counters().tasks_spawned.add(tasks.len() as u64);
        let n = tasks.len();
        let mut state = vec![TaskState::Waiting; n];
        // Commit order: (ts, id).
        let commit_order = sorted_commit_order(tasks);
        let order_pos: Vec<usize> = {
            let mut p = vec![0usize; n];
            for (i, &t) in commit_order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        let mut next_commit = 0usize; // index into commit_order

        // `runnable`: available now, ordered by (ts, id). `pending`:
        // spawned but not yet available, ordered by availability time.
        let mut runnable: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
        let mut pending: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
        for &r in roots {
            state[r] = TaskState::Ready(0);
            runnable.push(Reverse((tasks[r].ts, r)));
        }
        let mut finish_events: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
        let mut line_index: HashMap<u64, Vec<TaskId>> = HashMap::new();
        let mut hint_busy: HashMap<u64, u64> = HashMap::new();
        // Started (running or finished) uncommitted tasks by commit order —
        // the hardware commit queue.
        let mut window: BTreeSet<(usize, TaskId)> = BTreeSet::new();

        let mut now = 0u64;
        let mut idle_cores = self.cfg.num_cores;
        let mut uncommitted_started = 0usize; // running + finished
        #[allow(unused_assignments)]
        let mut window_was_full = false;

        let mut stats = SwarmStats::default();

        // Deferred-ready stash for tasks blocked by hints/barrier.
        let mut stash: Vec<(u64, TaskId)> = Vec::new();

        loop {
            // One histogram sample of task-queue pressure per event-loop
            // iteration (deterministic: the event loop is single-threaded).
            counters()
                .queue_occupancy
                .record((runnable.len() + pending.len()) as u64);
            // Promote pending tasks that became available.
            while let Some(&Reverse((avail, t))) = pending.peek() {
                if avail > now {
                    break;
                }
                pending.pop();
                if matches!(state[t], TaskState::Ready(a) if a <= now) {
                    runnable.push(Reverse((tasks[t].ts, t)));
                }
            }
            // Dispatch phase at `now`.
            let barrier_ts = if barrier {
                commit_order.get(next_commit).map(|&t| tasks[t].ts)
            } else {
                None
            };
            let window_full =
                |started: usize, cfg: &SwarmConfig| started >= cfg.commit_queue_capacity;
            stash.clear();
            while idle_cores > 0 {
                let Some(&Reverse((ts, t))) = runnable.peek() else {
                    break;
                };
                let TaskState::Ready(avail) = state[t] else {
                    runnable.pop();
                    continue; // stale heap entry
                };
                if avail > now {
                    runnable.pop();
                    pending.push(Reverse((avail, t)));
                    continue; // re-aborted with a delay; requeue
                }
                if window_full(uncommitted_started, &self.cfg) {
                    // The commit queue is full. Real Swarm admits a task
                    // with earlier commit order by squashing the latest
                    // speculative task; otherwise dispatch stalls.
                    // (Cascaded aborts can leave stale window entries;
                    // drop them before picking a victim.)
                    while let Some(&(opos, cand)) = window.iter().next_back() {
                        if matches!(
                            state[cand],
                            TaskState::Running(..) | TaskState::Finished(..)
                        ) {
                            break;
                        }
                        window.remove(&(opos, cand));
                    }
                    let evict = window.iter().next_back().copied();
                    match evict {
                        Some((opos, victim)) if order_pos[t] < opos => {
                            window.remove(&(opos, victim));
                            abort_recursive(
                                victim,
                                tasks,
                                &mut state,
                                &mut line_index,
                                &mut pending,
                                &mut idle_cores,
                                &mut uncommitted_started,
                                &mut stats,
                                now,
                                self.cfg.abort_penalty_cycles,
                            );
                            // Retry this candidate with a free slot.
                            continue;
                        }
                        _ => break,
                    }
                }
                if let Some(bts) = barrier_ts {
                    if ts > bts {
                        break; // barrier: later rounds must wait
                    }
                }
                // Hint serialization.
                if let Some(h) = tasks[t].hint {
                    if hint_busy.get(&h).copied().unwrap_or(0) > now {
                        runnable.pop();
                        stash.push((ts, t));
                        continue;
                    }
                }
                runnable.pop();
                let finish = now + self.cfg.dispatch_cycles + tasks[t].duration;
                state[t] = TaskState::Running(now, finish);
                if let Some(h) = tasks[t].hint {
                    hint_busy.insert(h, finish);
                }
                for &l in tasks[t].reads.iter().chain(tasks[t].writes.iter()) {
                    line_index.entry(l).or_default().push(t);
                }
                finish_events.push(Reverse((finish, t)));
                window.insert((order_pos[t], t));
                idle_cores -= 1;
                uncommitted_started += 1;
            }
            for &(ts, t) in &stash {
                let _ = ts;
                runnable.push(Reverse((tasks[t].ts, t)));
            }
            window_was_full = window_full(uncommitted_started, &self.cfg) && idle_cores > 0;

            // Advance to the next event.
            let next_finish = finish_events.peek().map(|Reverse((f, _))| *f);
            let next_ready = pending.peek().map(|Reverse((a, _))| *a);
            let next_time = match (next_finish, next_ready) {
                (Some(f), Some(r)) => f.min(r),
                (Some(f), None) => f,
                (None, Some(r)) => r,
                (None, None) => break,
            };
            if next_time > now {
                let delta = next_time - now;
                let idle = idle_cores as u64 * delta;
                if window_was_full {
                    stats.idle_cq_full_cycles += idle;
                } else {
                    stats.idle_no_task_cycles += idle;
                }
                now = next_time;
            }

            // Process finishes at `now`.
            while let Some(&Reverse((f, t))) = finish_events.peek() {
                if f > now {
                    break;
                }
                finish_events.pop();
                let TaskState::Running(start, finish) = state[t] else {
                    continue; // aborted while running; stale event
                };
                if finish != f {
                    continue; // stale event from a pre-abort schedule
                }
                state[t] = TaskState::Finished(start, finish);
                idle_cores += 1;
                // Spawn children.
                let spill = tasks[t].children.len() + runnable.len() + pending.len()
                    > self.cfg.task_queue_capacity;
                for &c in &tasks[t].children {
                    if state[c] == TaskState::Waiting {
                        let avail = if spill {
                            stats.spill_cycles += self.cfg.spill_cycles;
                            now + self.cfg.spill_cycles
                        } else {
                            now
                        };
                        state[c] = TaskState::Ready(avail);
                        if avail <= now {
                            runnable.push(Reverse((tasks[c].ts, c)));
                        } else {
                            pending.push(Reverse((avail, c)));
                        }
                    }
                }
            }

            // Commit in order; abort conflicting later tasks.
            while next_commit < commit_order.len() {
                let t = commit_order[next_commit];
                match state[t] {
                    TaskState::Finished(start, finish) => {
                        state[t] = TaskState::Committed;
                        next_commit += 1;
                        uncommitted_started -= 1;
                        window.remove(&(order_pos[t], t));
                        stats.commits += 1;
                        stats.commit_cycles += finish - start;
                        // Conflict detection on written lines.
                        let mut victims: Vec<TaskId> = Vec::new();
                        for &l in &tasks[t].writes {
                            if let Some(list) = line_index.get(&l) {
                                for &o in list {
                                    if o == t || order_pos[o] < order_pos[t] {
                                        continue;
                                    }
                                    let overlapped = match state[o] {
                                        TaskState::Running(s, _) => s < finish,
                                        TaskState::Finished(s, _) => s < finish,
                                        _ => false,
                                    };
                                    if overlapped {
                                        victims.push(o);
                                    }
                                }
                            }
                            // Committed task's lines leave the index.
                        }
                        for &l in tasks[t].reads.iter().chain(tasks[t].writes.iter()) {
                            if let Some(list) = line_index.get_mut(&l) {
                                list.retain(|&o| o != t);
                            }
                        }
                        for v in victims {
                            window.remove(&(order_pos[v], v));
                            abort_recursive(
                                v,
                                tasks,
                                &mut state,
                                &mut line_index,
                                &mut pending,
                                &mut idle_cores,
                                &mut uncommitted_started,
                                &mut stats,
                                now,
                                self.cfg.abort_penalty_cycles,
                            );
                        }
                    }
                    _ => break,
                }
            }
        }

        let elapsed = now;
        self.time += elapsed;
        // Attribute this phase's elapsed wall-clock proportionally to its
        // per-core cycle categories; the commit component takes the
        // integer-division remainder so the parts sum to `elapsed` exactly.
        let core_total = stats.total_core_cycles();
        let scale = |part: u64| {
            if core_total == 0 {
                0
            } else {
                ((elapsed as u128 * part as u128) / core_total as u128) as u64
            }
        };
        let mut delta = SwarmAttribution {
            commit: 0,
            abort: scale(stats.abort_cycles),
            idle_no_task: scale(stats.idle_no_task_cycles),
            idle_cq_full: scale(stats.idle_cq_full_cycles),
            spill: scale(stats.spill_cycles),
            host: 0,
        };
        delta.commit = elapsed - delta.total();
        self.attribute(delta);
        let c = counters();
        c.commits.add(stats.commits);
        c.aborts.add(stats.aborts);
        self.stats.commit_cycles += stats.commit_cycles;
        self.stats.abort_cycles += stats.abort_cycles;
        self.stats.idle_no_task_cycles += stats.idle_no_task_cycles;
        self.stats.idle_cq_full_cycles += stats.idle_cq_full_cycles;
        self.stats.spill_cycles += stats.spill_cycles;
        self.stats.commits += stats.commits;
        self.stats.aborts += stats.aborts;
        budget::check_cycles(self.time);
        elapsed
    }
}

#[allow(clippy::too_many_arguments)]
fn abort_recursive(
    t: TaskId,
    tasks: &[TaskSpec],
    state: &mut [TaskState],
    line_index: &mut HashMap<u64, Vec<TaskId>>,
    pending: &mut BinaryHeap<Reverse<(u64, TaskId)>>,
    idle_cores: &mut usize,
    uncommitted_started: &mut usize,
    stats: &mut SwarmStats,
    now: u64,
    penalty: u64,
) {
    let wasted = match state[t] {
        TaskState::Running(start, _) => {
            *idle_cores += 1; // core freed by the squash
            now.saturating_sub(start)
        }
        TaskState::Finished(start, finish) => {
            // Children may have started; squash them first.
            for &c in &tasks[t].children {
                match state[c] {
                    TaskState::Waiting | TaskState::Committed => {}
                    _ => abort_recursive(
                        c,
                        tasks,
                        state,
                        line_index,
                        pending,
                        idle_cores,
                        uncommitted_started,
                        stats,
                        now,
                        penalty,
                    ),
                }
            }
            finish - start
        }
        TaskState::Ready(_) | TaskState::Waiting | TaskState::Committed => return,
    };
    stats.aborts += 1;
    stats.abort_cycles += wasted + penalty;
    *uncommitted_started -= 1;
    for &l in tasks[t].reads.iter().chain(tasks[t].writes.iter()) {
        if let Some(list) = line_index.get_mut(&l) {
            list.retain(|&o| o != t);
        }
    }
    // Children of a squashed finished task go back to Waiting.
    for &c in &tasks[t].children {
        if matches!(state[c], TaskState::Ready(_)) {
            state[c] = TaskState::Waiting;
        }
    }
    state[t] = TaskState::Ready(now + penalty);
    pending.push(Reverse((now + penalty, t)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_commit_order_matches_serial_sort() {
        // Big enough to take the parallel run-sort + merge path.
        let n = PARALLEL_SORT_MIN + 123;
        let tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                // Scrambled, heavily duplicated timestamps.
                ts: ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56) % 97,
                ..Default::default()
            })
            .collect();
        let mut expect: Vec<TaskId> = (0..n).collect();
        expect.sort_unstable_by_key(|&t| (tasks[t].ts, t));
        // Force the parallel run-sort + merge path regardless of host CPUs.
        assert_eq!(sorted_commit_order_on(&tasks, 4), expect);
        assert_eq!(sorted_commit_order(&tasks), expect);
    }

    fn task(ts: u64, duration: u64) -> TaskSpec {
        TaskSpec {
            ts,
            duration,
            ..Default::default()
        }
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let tasks: Vec<TaskSpec> = (0..64).map(|_| task(0, 100)).collect();
        let roots: Vec<TaskId> = (0..64).collect();
        let mut sim = SwarmSim::new(SwarmConfig::default());
        let cycles = sim.simulate(&tasks, &roots, false);
        // 64 cores, 64 tasks: one wave.
        assert!(cycles < 150, "{cycles}");
        assert_eq!(sim.stats.commits, 64);
        assert_eq!(sim.stats.aborts, 0);
    }

    #[test]
    fn single_core_serializes() {
        let tasks: Vec<TaskSpec> = (0..8).map(|_| task(0, 100)).collect();
        let roots: Vec<TaskId> = (0..8).collect();
        let mut sim = SwarmSim::new(SwarmConfig::default().with_cores(1));
        let cycles = sim.simulate(&tasks, &roots, false);
        assert!(cycles >= 800, "{cycles}");
    }

    #[test]
    fn children_wait_for_parents() {
        let mut t0 = task(0, 50);
        t0.children = vec![1];
        let t1 = task(1, 50);
        let mut sim = SwarmSim::new(SwarmConfig::default());
        let cycles = sim.simulate(&[t0, t1], &[0], false);
        assert!(cycles >= 100, "{cycles}");
        assert_eq!(sim.stats.commits, 2);
    }

    #[test]
    fn write_read_conflict_aborts_later_task() {
        // Task 0 (ts 0, long) writes line 7; task 1 (ts 1, short) reads it
        // and starts speculatively before 0 finishes → abort + re-run.
        let mut t0 = task(0, 1000);
        t0.writes = vec![7];
        let mut t1 = task(1, 10);
        t1.reads = vec![7];
        let mut sim = SwarmSim::new(SwarmConfig::default());
        sim.simulate(&[t0, t1], &[0, 1], false);
        assert_eq!(sim.stats.aborts, 1);
        assert_eq!(sim.stats.commits, 2);
        assert!(sim.stats.abort_cycles > 0);
    }

    #[test]
    fn no_conflict_when_disjoint_lines() {
        let mut t0 = task(0, 1000);
        t0.writes = vec![7];
        let mut t1 = task(1, 10);
        t1.reads = vec![8];
        let mut sim = SwarmSim::new(SwarmConfig::default());
        sim.simulate(&[t0, t1], &[0, 1], false);
        assert_eq!(sim.stats.aborts, 0);
    }

    #[test]
    fn hints_serialize_instead_of_aborting() {
        // Two same-line writers with the same hint never overlap.
        let mk = || {
            let mut t = task(0, 500);
            t.writes = vec![7];
            t.hint = Some(7);
            t
        };
        let mut t0 = mk();
        t0.ts = 0;
        let mut t1 = mk();
        t1.ts = 1;
        let mut sim = SwarmSim::new(SwarmConfig::default());
        let cycles = sim.simulate(&[t0, t1], &[0, 1], false);
        assert_eq!(sim.stats.aborts, 0);
        assert!(cycles >= 1000, "serialized: {cycles}");
    }

    #[test]
    fn barrier_blocks_cross_round_speculation() {
        // Without barrier, round-1 task overlaps round-0 tasks.
        let mut t0 = task(0, 1000);
        t0.children = vec![];
        let t1 = task(1, 1000);
        let mut sim_free = SwarmSim::new(SwarmConfig::default());
        let free = sim_free.simulate(&[t0.clone(), t1.clone()], &[0, 1], false);
        let mut sim_bar = SwarmSim::new(SwarmConfig::default());
        let barred = sim_bar.simulate(&[t0, t1], &[0, 1], true);
        assert!(free < barred, "free {free} vs barrier {barred}");
    }

    #[test]
    fn commit_queue_limit_stalls() {
        let cfg = SwarmConfig {
            num_cores: 4,
            commit_queue_capacity: 2,
            ..Default::default()
        };
        // Task 0 is long; later tasks finish fast but can't commit (order)
        // and the window of 2 stalls dispatch.
        let mut tasks = vec![task(0, 10_000)];
        for _ in 0..6 {
            tasks.push(task(1, 10));
        }
        let roots: Vec<TaskId> = (0..tasks.len()).collect();
        let mut sim = SwarmSim::new(cfg);
        sim.simulate(&tasks, &roots, false);
        assert!(sim.stats.idle_cq_full_cycles > 0);
    }

    #[test]
    fn cascading_abort_squashes_children() {
        // t0 (ts 0, slow) writes line L. t1 (ts 1, fast) reads L and spawns
        // t2; all must be squashed and re-run.
        let mut t0 = task(0, 1000);
        t0.writes = vec![5];
        let mut t1 = task(1, 10);
        t1.reads = vec![5];
        t1.children = vec![2];
        let t2 = task(2, 10);
        let mut sim = SwarmSim::new(SwarmConfig::default());
        sim.simulate(&[t0, t1, t2], &[0, 1], false);
        assert!(sim.stats.aborts >= 1);
        assert_eq!(sim.stats.commits, 3);
    }

    #[test]
    fn task_queue_overflow_spills() {
        let cfg = SwarmConfig {
            num_cores: 2,
            task_queue_capacity: 4,
            ..Default::default()
        };
        // A root that fans out far beyond the task queue.
        let mut tasks = vec![TaskSpec {
            ts: 0,
            duration: 10,
            children: (1..64).collect(),
            ..Default::default()
        }];
        for _ in 1..64 {
            tasks.push(TaskSpec {
                ts: 1,
                duration: 10,
                ..Default::default()
            });
        }
        let mut sim = SwarmSim::new(cfg);
        sim.simulate(&tasks, &[0], false);
        assert!(sim.stats.spill_cycles > 0, "{:?}", sim.stats);
        assert_eq!(sim.stats.commits, 64);
    }

    #[test]
    fn window_eviction_admits_earlier_order() {
        // The commit queue fills with later-ordered speculation while
        // commit is blocked on a long-running earliest task; a
        // late-arriving earlier-ordered child must be admitted by
        // squashing the latest speculation rather than deadlocking.
        let cfg = SwarmConfig {
            num_cores: 4,
            commit_queue_capacity: 4,
            ..Default::default()
        };
        let mut long_blocker = task(0, 10_000);
        long_blocker.children = vec![];
        let mut spawner = task(1, 10);
        spawner.children = vec![2];
        let child = task(2, 10);
        let filler_a = task(3, 10_000);
        let filler_b = task(3, 10_000);
        let tasks = vec![long_blocker, spawner, child, filler_a, filler_b];
        let mut sim = SwarmSim::new(cfg);
        sim.simulate(&tasks, &[0, 1, 3, 4], false);
        assert_eq!(sim.stats.commits, 5);
        assert!(
            sim.stats.aborts > 0,
            "eviction should have squashed: {:?}",
            sim.stats
        );
    }

    #[test]
    fn attribution_components_sum_to_total_time() {
        let mut sim = SwarmSim::new(SwarmConfig::default().with_cores(4));
        sim.host_cycles(123);
        // A conflicting workload (aborts), a fan-out (spills with a tiny
        // queue would need config; idle shows up regardless), two phases.
        let mut t0 = task(0, 1000);
        t0.writes = vec![7];
        let mut t1 = task(1, 10);
        t1.reads = vec![7];
        sim.simulate(&[t0, t1], &[0, 1], false);
        sim.simulate(
            &(0..32).map(|_| task(0, 50)).collect::<Vec<_>>(),
            &(0..32).collect::<Vec<_>>(),
            false,
        );
        sim.host_cycles(7);
        assert_eq!(sim.attr.total(), sim.time_cycles());
        assert_eq!(sim.attr.host, 130);
        assert!(sim.attr.commit > 0);
    }

    #[test]
    fn stats_accumulate_across_phases() {
        let mut sim = SwarmSim::new(SwarmConfig::default());
        sim.simulate(&[task(0, 10)], &[0], false);
        sim.simulate(&[task(0, 10)], &[0], false);
        assert_eq!(sim.stats.commits, 2);
        assert!(sim.time_cycles() > 0);
        assert!(sim.time_ms() > 0.0);
    }

    #[test]
    fn empty_graph_is_zero_cycles() {
        let mut sim = SwarmSim::new(SwarmConfig::default());
        assert_eq!(sim.simulate(&[], &[], false), 0);
    }
}
