//! The hardware-independent pass library (paper Table III).
//!
//! Passes run in the order fixed by [`crate::run_passes`]:
//! ordered-processing lowering → direction lowering → `applyModified`
//! tracking → atomics insertion → frontier-reuse analysis. Each pass is
//! also usable on its own (the GraphVMs re-run or specialize some of them,
//! mirroring the per-backend columns of Table III).

pub mod atomics;
pub mod direction;
pub mod frontier_reuse;
pub mod ordered;
pub mod tracking;
