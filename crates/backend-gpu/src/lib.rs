//! The GPU GraphVM (paper §III-C2).
//!
//! Lowers midend-processed GraphIR onto the [`ugc_sim_gpu`] SIMT timing
//! simulator, implementing the full GPU optimization space of the paper:
//!
//! * seven **load-balancing strategies** as a runtime library
//!   ([`load_balance`]): VERTEX_BASED, TWC, CM, WM, STRICT, EDGE_ONLY,
//!   ETWC,
//! * **kernel fusion** ([`passes`] + the executor's fused mode): a whole
//!   `while` loop becomes one megakernel with grid synchronizations,
//!   amortizing launch overhead for high-diameter (road) graphs,
//! * **fused vs. unfused frontier creation**: atomically-compacted sparse
//!   output vs. boolmap marking plus a compaction kernel,
//! * **EdgeBlocking** for topology-driven kernels (L2-resident destination
//!   ranges),
//! * push/pull/hybrid traversal inherited from the hardware-independent
//!   compiler.
//!
//! The GraphVM also emits CUDA-flavored source ([`emitter`]) mirroring the
//! code-generation half of the paper's backend.

pub mod emitter;
pub mod executor;
pub mod load_balance;
pub mod passes;
pub mod schedule;
pub mod vm;

pub use executor::GpuExecutor;
pub use load_balance::LoadBalance;
pub use schedule::{FrontierCreation, GpuSchedule, GpuScheduleSpace};
pub use vm::{GpuExecution, GpuGraphVm};
