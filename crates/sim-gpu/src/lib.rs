//! A SIMT GPU timing simulator (the "hardware" under the GPU GraphVM).
//!
//! The paper evaluates its GPU GraphVM on an NVIDIA V100. No GPU is
//! available in this reproduction, so this crate models the performance
//! mechanisms that the paper's GPU optimizations exploit:
//!
//! * **warps** of 32 lanes executing in lockstep — a warp's issue time is
//!   its slowest lane, which is what load-balancing schedules (TWC/WM/CM/
//!   STRICT/ETWC) attack,
//! * **memory coalescing** — each warp's accesses are grouped into 32-byte
//!   transactions; adjacent lanes touching adjacent addresses cost one
//!   transaction, scattered lanes cost one each,
//! * **an L2 cache** (segment-granular, set-associative) — reuse captured
//!   here is what EdgeBlocking buys,
//! * **DRAM bandwidth** — a hard roof on kernel throughput,
//! * **atomics** — same-address atomics within a warp serialize,
//! * **kernel launch overhead and grid synchronization** — the costs that
//!   kernel fusion trades against each other (launch per operator vs one
//!   launch plus a grid sync per operator).
//!
//! The simulator is trace-driven: the GraphVM executes UDFs with a
//! recording memory model, packages per-lane traces into [`WarpTrace`]s,
//! and [`GpuSim::run_kernel`] charges time. Absolute numbers are not
//! calibrated to any silicon; *relative* behavior (who wins, where the
//! crossovers are) is what the model preserves.
//!
//! # Example
//!
//! ```
//! use ugc_sim_gpu::{GpuConfig, GpuSim, LaneTrace, MemAccess, AccessKind, WarpTrace};
//!
//! let mut sim = GpuSim::new(GpuConfig::default());
//! let lane = LaneTrace { computes: 10, mem: vec![MemAccess {
//!     kind: AccessKind::Load, prop: 0, idx: 0 }] };
//! let warp = WarpTrace { lanes: vec![lane; 32] };
//! let cycles = sim.run_kernel("demo", vec![warp].into_iter(), false);
//! assert!(cycles > 0);
//! ```

use std::collections::HashMap;
use std::sync::OnceLock;

use ugc_resilience::{budget, fault};
use ugc_telemetry::Counter;

/// Where the simulated cycles went, cumulatively per simulator instance.
///
/// The five components partition [`GpuSim::time_cycles`] exactly:
/// `compute + divergence + mem_stall + launch + host == time_cycles()`
/// at every instant (asserted by `tests/telemetry_invariants.rs`). The
/// split classifies the existing timing math without changing it — each
/// kernel's cycle charge is decomposed proportionally to the per-warp
/// mean lane compute (compute), lockstep serialization above the mean
/// plus atomic serialization (divergence), and coalescing/transaction
/// cycles (mem_stall, which also absorbs any bandwidth-bound excess).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuAttribution {
    /// Useful lane work: per-warp mean lane compute cycles.
    pub compute: u64,
    /// SIMT divergence serialization (slowest-lane excess over the mean)
    /// plus same-address atomic serialization.
    pub divergence: u64,
    /// Memory-coalescing stalls: transaction issue + DRAM miss cycles,
    /// plus bandwidth-roofline excess.
    pub mem_stall: u64,
    /// Kernel launch overhead and cooperative grid synchronizations.
    pub launch: u64,
    /// Host-side cycles between kernels.
    pub host: u64,
}

impl GpuAttribution {
    /// Sum of all components — always equals the simulator's total time.
    pub fn total(&self) -> u64 {
        self.compute + self.divergence + self.mem_stall + self.launch + self.host
    }

    /// Named components in display order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("compute", self.compute),
            ("divergence", self.divergence),
            ("mem_stall", self.mem_stall),
            ("launch", self.launch),
            ("host", self.host),
        ]
    }
}

/// Registry handles for the `sim_gpu.` counter namespace.
struct Counters {
    compute: Counter,
    divergence: Counter,
    mem_stall: Counter,
    launch: Counter,
    host: Counter,
    total: Counter,
    kernels: Counter,
    warps: Counter,
    transactions: Counter,
    l2_hits: Counter,
    l2_misses: Counter,
    dram_bytes: Counter,
    atomics: Counter,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        compute: Counter::new("sim_gpu.cycles.compute"),
        divergence: Counter::new("sim_gpu.cycles.divergence"),
        mem_stall: Counter::new("sim_gpu.cycles.mem_stall"),
        launch: Counter::new("sim_gpu.cycles.launch"),
        host: Counter::new("sim_gpu.cycles.host"),
        total: Counter::new("sim_gpu.cycles.total"),
        kernels: Counter::new("sim_gpu.kernels"),
        warps: Counter::new("sim_gpu.warps"),
        transactions: Counter::new("sim_gpu.transactions"),
        l2_hits: Counter::new("sim_gpu.l2_hits"),
        l2_misses: Counter::new("sim_gpu.l2_misses"),
        dram_bytes: Counter::new("sim_gpu.dram_bytes"),
        atomics: Counter::new("sim_gpu.atomics"),
    })
}

/// Configuration of the simulated GPU (defaults are V100-flavored).
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: u64,
    /// Lanes per warp.
    pub warp_size: usize,
    /// Cycles to launch a kernel from the host.
    pub kernel_launch_cycles: u64,
    /// Cycles for a cooperative grid synchronization (fused kernels).
    pub grid_sync_cycles: u64,
    /// Issue cost of one memory transaction.
    pub txn_issue_cycles: u64,
    /// Extra cycles for an L2 miss (DRAM access), amortized.
    pub dram_extra_cycles: u64,
    /// Bytes per memory transaction (V100 sector).
    pub txn_bytes: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity (ways per set).
    pub l2_ways: usize,
    /// Base cost of an atomic operation.
    pub atomic_cycles: u64,
    /// Additional serialization per same-address conflicting atomic.
    pub atomic_conflict_cycles: u64,
    /// Clock in GHz (for converting cycles to seconds in reports).
    pub clock_ghz: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 80,
            warp_size: 32,
            kernel_launch_cycles: 6000,
            grid_sync_cycles: 1200,
            txn_issue_cycles: 4,
            dram_extra_cycles: 8,
            txn_bytes: 32,
            dram_bytes_per_cycle: 640,
            l2_bytes: 6 << 20,
            l2_ways: 16,
            atomic_cycles: 12,
            atomic_conflict_cycles: 4,
            clock_ghz: 1.4,
        }
    }
}

/// Kind of a recorded memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain load.
    Load,
    /// Plain store.
    Store,
    /// Atomic read-modify-write.
    Atomic,
}

/// One recorded access: 4 bytes at `prop`-array element `idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Which access.
    pub kind: AccessKind,
    /// Array identifier (property id or a synthetic id for graph
    /// structure / frontier buffers).
    pub prop: u32,
    /// Element index within the array.
    pub idx: u32,
}

impl MemAccess {
    /// The 32-byte segment this access falls in. Arrays are placed 256 MB
    /// apart so segments never alias across arrays.
    pub fn segment(&self, txn_bytes: u64) -> u64 {
        let addr = ((self.prop as u64) << 28) + (self.idx as u64) * 4;
        addr / txn_bytes
    }
}

/// Execution trace of one lane (thread) within a kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneTrace {
    /// Scalar instructions executed.
    pub computes: u32,
    /// Memory accesses in program order.
    pub mem: Vec<MemAccess>,
}

/// Execution trace of one warp (≤ 32 lanes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpTrace {
    /// The lanes of this warp (missing lanes are inactive).
    pub lanes: Vec<LaneTrace>,
}

/// Aggregate statistics of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuStats {
    /// Kernels launched from the host.
    pub kernels: u64,
    /// Grid synchronizations inside fused kernels.
    pub grid_syncs: u64,
    /// Warps executed.
    pub warps: u64,
    /// Total warp-issue cycles (before SM parallelism).
    pub warp_cycles: u64,
    /// Memory transactions issued.
    pub transactions: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved from DRAM.
    pub dram_bytes: u64,
    /// Atomic operations.
    pub atomics: u64,
}

/// Segment-granular set-associative cache with LRU replacement.
#[derive(Debug)]
struct L2Cache {
    sets: Vec<Vec<u64>>, // each set: MRU-first list of segment ids
    ways: usize,
    num_sets: u64,
}

impl L2Cache {
    fn new(capacity_bytes: u64, txn_bytes: u64, ways: usize) -> Self {
        let lines = (capacity_bytes / txn_bytes).max(1);
        let num_sets = (lines / ways as u64).max(1);
        L2Cache {
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            ways,
            num_sets,
        }
    }

    /// Touches a segment; returns whether it hit.
    fn access(&mut self, segment: u64) -> bool {
        let set = &mut self.sets[(segment % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&s| s == segment) {
            let seg = set.remove(pos);
            set.insert(0, seg);
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, segment);
            false
        }
    }
}

/// The GPU simulator: accumulates time and statistics across kernels.
#[derive(Debug)]
pub struct GpuSim {
    /// The machine configuration.
    pub cfg: GpuConfig,
    /// Aggregate statistics.
    pub stats: GpuStats,
    /// Cycle attribution; components always sum to [`GpuSim::time_cycles`].
    pub attr: GpuAttribution,
    l2: L2Cache,
    time: u64,
}

impl GpuSim {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let l2 = L2Cache::new(cfg.l2_bytes, cfg.txn_bytes, cfg.l2_ways);
        GpuSim {
            cfg,
            stats: GpuStats::default(),
            attr: GpuAttribution::default(),
            l2,
            time: 0,
        }
    }

    /// Records an attribution increment in lockstep with `self.time` (the
    /// caller adds the same total to `time`); mirrors into the registry.
    fn attribute(&mut self, delta: GpuAttribution) {
        self.attr.compute += delta.compute;
        self.attr.divergence += delta.divergence;
        self.attr.mem_stall += delta.mem_stall;
        self.attr.launch += delta.launch;
        self.attr.host += delta.host;
        let c = counters();
        c.compute.add(delta.compute);
        c.divergence.add(delta.divergence);
        c.mem_stall.add(delta.mem_stall);
        c.launch.add(delta.launch);
        c.host.add(delta.host);
        c.total.add(delta.total());
    }

    /// Total simulated cycles so far.
    pub fn time_cycles(&self) -> u64 {
        self.time
    }

    /// Simulated time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time as f64 / (self.cfg.clock_ghz * 1e6)
    }

    /// Resets time and statistics (the L2 stays warm unless
    /// [`GpuSim::flush_l2`] is called).
    pub fn reset(&mut self) {
        self.stats = GpuStats::default();
        self.attr = GpuAttribution::default();
        self.time = 0;
    }

    /// Empties the L2 cache.
    pub fn flush_l2(&mut self) {
        let ways = self.l2.ways;
        let sets = self.l2.sets.len() as u64;
        self.l2 = L2Cache::new(
            sets * ways as u64 * self.cfg.txn_bytes,
            self.cfg.txn_bytes,
            ways,
        );
    }

    /// Runs a kernel over the given warp traces, advancing simulated time.
    /// When `fused` is true the kernel is part of an already-launched fused
    /// megakernel: no launch overhead is charged (callers charge grid syncs
    /// between fused steps via [`GpuSim::grid_sync`]).
    ///
    /// Returns the cycles this kernel contributed.
    pub fn run_kernel(
        &mut self,
        _name: &str,
        warps: impl Iterator<Item = WarpTrace>,
        fused: bool,
    ) -> u64 {
        let stats_before = self.stats;
        let mut total_warp_cycles: u64 = 0;
        let mut max_warp_cycles: u64 = 0;
        let mut kernel_dram_bytes: u64 = 0;
        let mut num_warps: u64 = 0;
        // Raw attribution sums in warp-issue cycles; their total equals
        // `total_warp_cycles`, so scaling them to the kernel's actual
        // charge preserves the proportions the model computed.
        let mut compute_raw: u64 = 0;
        let mut divergence_raw: u64 = 0;
        let mut mem_raw: u64 = 0;

        for warp in warps {
            num_warps += 1;
            let mut compute_max: u64 = 0;
            let mut lane_compute_sum: u64 = 0;
            // Coalesce: group this warp's accesses into transactions.
            let mut segments: HashMap<u64, ()> = HashMap::new();
            let mut atomic_groups: HashMap<u64, u64> = HashMap::new();
            let mut accesses: u64 = 0;
            for lane in &warp.lanes {
                compute_max = compute_max.max(lane.computes as u64);
                lane_compute_sum += lane.computes as u64;
                for a in &lane.mem {
                    accesses += 1;
                    let seg = a.segment(self.cfg.txn_bytes);
                    segments.insert(seg, ());
                    if a.kind == AccessKind::Atomic {
                        let addr = ((a.prop as u64) << 28) + (a.idx as u64) * 4;
                        *atomic_groups.entry(addr).or_insert(0) += 1;
                        self.stats.atomics += 1;
                    }
                }
            }
            let _ = accesses;
            // Charge transactions through the L2.
            let mut txn_cycles: u64 = 0;
            for &seg in segments.keys() {
                self.stats.transactions += 1;
                if self.l2.access(seg) {
                    self.stats.l2_hits += 1;
                    txn_cycles += self.cfg.txn_issue_cycles;
                } else {
                    self.stats.l2_misses += 1;
                    txn_cycles += self.cfg.txn_issue_cycles + self.cfg.dram_extra_cycles;
                    kernel_dram_bytes += self.cfg.txn_bytes;
                }
            }
            // Atomics: base cost per distinct address plus serialization
            // for same-address conflicts.
            let mut atomic_cycles: u64 = 0;
            for (_, count) in atomic_groups {
                atomic_cycles +=
                    self.cfg.atomic_cycles + (count - 1) * self.cfg.atomic_conflict_cycles;
            }
            let warp_cycles = compute_max + txn_cycles + atomic_cycles;
            total_warp_cycles += warp_cycles;
            max_warp_cycles = max_warp_cycles.max(warp_cycles);
            // Classify this warp's issue cycles: the mean lane compute is
            // useful work, the slowest-lane excess over it is lockstep
            // (divergence) serialization, atomics serialize too, and the
            // transaction cycles are coalescing/memory stalls.
            let mean_compute = lane_compute_sum / warp.lanes.len().max(1) as u64;
            compute_raw += mean_compute;
            divergence_raw += (compute_max - mean_compute) + atomic_cycles;
            mem_raw += txn_cycles;
        }

        self.stats.warps += num_warps;
        self.stats.warp_cycles += total_warp_cycles;
        self.stats.dram_bytes += kernel_dram_bytes;

        // Kernel time: throughput bound (SMs issue warps in parallel),
        // critical path bound, and DRAM bandwidth bound.
        let issue = total_warp_cycles / self.cfg.num_sms;
        let bw = kernel_dram_bytes / self.cfg.dram_bytes_per_cycle;
        let work = issue.max(max_warp_cycles).max(bw);
        let mut cycles = work;
        let launch = if fused {
            self.stats.grid_syncs += 0; // syncs charged separately
            0
        } else {
            // Injected launch failure: fatal to this attempt, transported
            // as a typed payload and retried by the supervisor.
            fault::roll_fatal(fault::Domain::Gpu, fault::FaultKind::KernelLaunchFail);
            self.stats.kernels += 1;
            cycles += self.cfg.kernel_launch_cycles;
            self.cfg.kernel_launch_cycles
        };
        // Scale the raw per-warp classification to the kernel's actual
        // charge. mem_stall takes the remainder, which also absorbs any
        // bandwidth-roofline excess over the issue/critical-path bounds.
        let raw_total = compute_raw + divergence_raw + mem_raw;
        let scale = |part: u64| {
            if raw_total == 0 {
                0
            } else {
                ((work as u128 * part as u128) / raw_total as u128) as u64
            }
        };
        let (compute, divergence) = (scale(compute_raw), scale(divergence_raw));
        // Injected memory-stall spike: the kernel completes, but pays a
        // launch-sized extra stall (degraded, absorbed as mem_stall).
        let spike = if fault::roll(fault::Domain::Gpu, fault::FaultKind::MemStallSpike) {
            self.cfg.kernel_launch_cycles
        } else {
            0
        };
        let cycles = cycles + spike;
        self.attribute(GpuAttribution {
            compute,
            divergence,
            mem_stall: work - compute - divergence + spike,
            launch,
            host: 0,
        });
        let c = counters();
        c.kernels.add(u64::from(!fused));
        c.warps.add(num_warps);
        c.transactions
            .add(self.stats.transactions - stats_before.transactions);
        c.l2_hits.add(self.stats.l2_hits - stats_before.l2_hits);
        c.l2_misses
            .add(self.stats.l2_misses - stats_before.l2_misses);
        c.dram_bytes.add(kernel_dram_bytes);
        c.atomics.add(self.stats.atomics - stats_before.atomics);
        self.time += cycles;
        budget::check_cycles(self.time);
        cycles
    }

    /// Charges a kernel launch with no work (the megakernel entry of a
    /// fused loop; its per-step work is charged via fused
    /// [`GpuSim::run_kernel`] calls plus [`GpuSim::grid_sync`]).
    pub fn charge_launch(&mut self) {
        fault::roll_fatal(fault::Domain::Gpu, fault::FaultKind::KernelLaunchFail);
        self.stats.kernels += 1;
        counters().kernels.incr();
        self.attribute(GpuAttribution {
            launch: self.cfg.kernel_launch_cycles,
            ..GpuAttribution::default()
        });
        self.time += self.cfg.kernel_launch_cycles;
        budget::check_cycles(self.time);
    }

    /// Charges one cooperative grid synchronization (fused kernels).
    /// Attributed to launch overhead: grid syncs are what fusion pays
    /// instead of per-operator launches.
    pub fn grid_sync(&mut self) {
        self.stats.grid_syncs += 1;
        self.attribute(GpuAttribution {
            launch: self.cfg.grid_sync_cycles,
            ..GpuAttribution::default()
        });
        self.time += self.cfg.grid_sync_cycles;
        budget::check_cycles(self.time);
    }

    /// Charges host-side work between kernels (e.g. swap/size checks).
    pub fn host_cycles(&mut self, cycles: u64) {
        self.attribute(GpuAttribution {
            host: cycles,
            ..GpuAttribution::default()
        });
        self.time += cycles;
        budget::check_cycles(self.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_with_accesses(idxs: &[u32]) -> LaneTrace {
        LaneTrace {
            computes: 5,
            mem: idxs
                .iter()
                .map(|&i| MemAccess {
                    kind: AccessKind::Load,
                    prop: 0,
                    idx: i,
                })
                .collect(),
        }
    }

    #[test]
    fn coalesced_cheaper_than_scattered() {
        let cfg = GpuConfig::default();
        // 32 lanes reading consecutive elements: 4 segments (8 elems/seg).
        let coalesced = WarpTrace {
            lanes: (0..32).map(|i| lane_with_accesses(&[i])).collect(),
        };
        // 32 lanes reading strided elements: 32 segments.
        let scattered = WarpTrace {
            lanes: (0..32).map(|i| lane_with_accesses(&[i * 1000])).collect(),
        };
        let mut sim = GpuSim::new(cfg.clone());
        let c1 = sim.run_kernel("c", vec![coalesced].into_iter(), true);
        let mut sim2 = GpuSim::new(cfg);
        let c2 = sim2.run_kernel("s", vec![scattered].into_iter(), true);
        assert!(c2 > c1 * 4, "scattered {c2} vs coalesced {c1}");
    }

    #[test]
    fn warp_time_is_slowest_lane() {
        let mut heavy = WarpTrace::default();
        heavy.lanes.push(LaneTrace {
            computes: 10_000,
            mem: vec![],
        });
        for _ in 0..31 {
            heavy.lanes.push(LaneTrace {
                computes: 1,
                mem: vec![],
            });
        }
        let mut sim = GpuSim::new(GpuConfig::default());
        let c = sim.run_kernel("h", vec![heavy].into_iter(), true);
        assert!(c >= 10_000);
    }

    #[test]
    fn launch_overhead_only_unfused() {
        let cfg = GpuConfig::default();
        let w = WarpTrace {
            lanes: vec![lane_with_accesses(&[0])],
        };
        let mut sim = GpuSim::new(cfg.clone());
        let unfused = sim.run_kernel("u", vec![w.clone()].into_iter(), false);
        let mut sim2 = GpuSim::new(cfg.clone());
        let fused = sim2.run_kernel("f", vec![w].into_iter(), true);
        assert_eq!(unfused - fused, cfg.kernel_launch_cycles);
        assert_eq!(sim.stats.kernels, 1);
        assert_eq!(sim2.stats.kernels, 0);
    }

    #[test]
    fn l2_reuse_reduces_dram_traffic() {
        let cfg = GpuConfig::default();
        let w = || WarpTrace {
            lanes: (0..32).map(|i| lane_with_accesses(&[i])).collect(),
        };
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel("first", vec![w()].into_iter(), true);
        let cold_bytes = sim.stats.dram_bytes;
        sim.run_kernel("second", vec![w()].into_iter(), true);
        assert_eq!(sim.stats.dram_bytes, cold_bytes, "second pass must hit L2");
        assert!(sim.stats.l2_hits > 0);
    }

    #[test]
    fn same_address_atomics_serialize() {
        let contended = WarpTrace {
            lanes: (0..32)
                .map(|_| LaneTrace {
                    computes: 0,
                    mem: vec![MemAccess {
                        kind: AccessKind::Atomic,
                        prop: 1,
                        idx: 0,
                    }],
                })
                .collect(),
        };
        let spread = WarpTrace {
            lanes: (0..32)
                .map(|i| LaneTrace {
                    computes: 0,
                    mem: vec![MemAccess {
                        kind: AccessKind::Atomic,
                        prop: 1,
                        idx: i * 1000,
                    }],
                })
                .collect(),
        };
        let mut s1 = GpuSim::new(GpuConfig::default());
        let c1 = s1.run_kernel("contended", vec![contended].into_iter(), true);
        let mut s2 = GpuSim::new(GpuConfig::default());
        let c2 = s2.run_kernel("spread", vec![spread].into_iter(), true);
        // Same-address serialization must cost more than the spread case's
        // extra transactions are worth comparing within atomics only:
        assert!(c1 > GpuConfig::default().atomic_conflict_cycles * 31);
        assert_eq!(s1.stats.atomics, 32);
        assert_eq!(s2.stats.atomics, 32);
        let _ = c2;
    }

    #[test]
    fn bandwidth_roofline_applies() {
        // A kernel with enormous DRAM traffic must be bandwidth-bound.
        let cfg = GpuConfig::default();
        let warps = (0..10_000u32).map(|w| WarpTrace {
            lanes: (0..32)
                .map(|l| lane_with_accesses(&[w * 320_000 + l * 10_000]))
                .collect(),
        });
        let mut sim = GpuSim::new(cfg.clone());
        let cycles = sim.run_kernel("big", warps, true);
        let bw_bound = sim.stats.dram_bytes / cfg.dram_bytes_per_cycle;
        assert!(cycles >= bw_bound);
        assert!(sim.stats.dram_bytes >= 10_000 * 32 * 32);
    }

    #[test]
    fn attribution_components_sum_to_total_time() {
        let mut sim = GpuSim::new(GpuConfig::default());
        sim.charge_launch();
        for k in 0..8u32 {
            let warps = (0..40u32).map(|w| WarpTrace {
                lanes: (0..32)
                    .map(|l| LaneTrace {
                        computes: (l * w) % 17,
                        mem: vec![
                            MemAccess {
                                kind: AccessKind::Load,
                                prop: 0,
                                idx: w * 320 + l * 10,
                            },
                            MemAccess {
                                kind: AccessKind::Atomic,
                                prop: 1,
                                idx: (l % 3) * 1000,
                            },
                        ],
                    })
                    .collect(),
            });
            sim.run_kernel("mixed", warps, k % 2 == 0);
            sim.grid_sync();
            sim.host_cycles(37);
        }
        assert_eq!(sim.attr.total(), sim.time_cycles());
        assert!(sim.attr.compute > 0);
        assert!(sim.attr.divergence > 0);
        assert!(sim.attr.mem_stall > 0);
        assert!(sim.attr.launch > 0);
        assert_eq!(sim.attr.host, 8 * 37);
        sim.reset();
        assert_eq!(sim.attr.total(), 0);
    }

    #[test]
    fn attribution_does_not_change_timing() {
        // The decomposition must classify the existing math, not alter it:
        // launch delta between fused and unfused is still exact.
        let cfg = GpuConfig::default();
        let w = WarpTrace {
            lanes: vec![lane_with_accesses(&[0])],
        };
        let mut a = GpuSim::new(cfg.clone());
        let unfused = a.run_kernel("u", vec![w.clone()].into_iter(), false);
        let mut b = GpuSim::new(cfg.clone());
        let fused = b.run_kernel("f", vec![w].into_iter(), true);
        assert_eq!(unfused - fused, cfg.kernel_launch_cycles);
        assert_eq!(a.attr.launch, cfg.kernel_launch_cycles);
        assert_eq!(b.attr.launch, 0);
        assert_eq!(a.attr.total(), a.time_cycles());
        assert_eq!(b.attr.total(), b.time_cycles());
    }

    #[test]
    fn time_accumulates_and_resets() {
        let mut sim = GpuSim::new(GpuConfig::default());
        sim.host_cycles(100);
        sim.grid_sync();
        assert_eq!(
            sim.time_cycles(),
            100 + GpuConfig::default().grid_sync_cycles
        );
        assert!(sim.time_ms() > 0.0);
        sim.reset();
        assert_eq!(sim.time_cycles(), 0);
    }
}
