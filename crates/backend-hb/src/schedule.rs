//! `SimpleHBSchedule` — the HammerBlade GraphVM's scheduling object (paper
//! Fig. 6b).

use std::any::Any;

use ugc_schedule::{Parallelization, PullFrontierRepr, SchedDirection, SimpleSchedule};

/// Work-distribution strategies on the manycore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HbLoadBalance {
    /// Contiguous chunks of the active-vertex list per core.
    #[default]
    VertexBased,
    /// Degree-balanced chunks.
    EdgeBased,
    /// `ALIGNED`: cache-line-aligned blocks of vertex ids (the paper's
    /// alignment-based partitioning).
    Aligned,
}

/// HammerBlade scheduling options.
///
/// # Example
///
/// ```
/// use ugc_backend_hb::{HbSchedule, HbLoadBalance};
/// use ugc_schedule::SchedDirection;
///
/// let sched1 = HbSchedule::new()
///     .with_load_balance(HbLoadBalance::Aligned)
///     .with_direction(SchedDirection::Hybrid);
/// assert_eq!(sched1.load_balance(), HbLoadBalance::Aligned);
/// ```
#[derive(Debug, Clone)]
pub struct HbSchedule {
    direction: SchedDirection,
    load_balance: HbLoadBalance,
    blocked_access: bool,
    block_size: u32,
    pull_frontier: PullFrontierRepr,
    delta: i64,
    hybrid_threshold: f64,
}

impl Default for HbSchedule {
    fn default() -> Self {
        HbSchedule {
            direction: SchedDirection::Push,
            load_balance: HbLoadBalance::VertexBased,
            blocked_access: false,
            block_size: 64,
            pull_frontier: PullFrontierRepr::Boolmap,
            delta: 1,
            hybrid_threshold: 0.15,
        }
    }
}

impl HbSchedule {
    /// The default HammerBlade schedule (the paper's baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the traversal direction (`configDirection`).
    pub fn with_direction(mut self, d: SchedDirection) -> Self {
        self.direction = d;
        self
    }

    /// Sets the load-balancing strategy (`configLoadBalance`).
    pub fn with_load_balance(mut self, lb: HbLoadBalance) -> Self {
        self.load_balance = lb;
        self
    }

    /// Enables the blocked access method (scratchpad prefetch).
    pub fn with_blocked_access(mut self, yes: bool) -> Self {
        self.blocked_access = yes;
        self
    }

    /// Sets the work-block size `b` (vertices per block, a multiple of the
    /// LLC line).
    pub fn with_block_size(mut self, b: u32) -> Self {
        self.block_size = b.max(1);
        self
    }

    /// Sets the pull-side frontier representation.
    pub fn with_pull_frontier(mut self, r: PullFrontierRepr) -> Self {
        self.pull_frontier = r;
        self
    }

    /// Sets the ∆ bucket width.
    pub fn with_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// The load-balancing strategy.
    pub fn load_balance(&self) -> HbLoadBalance {
        self.load_balance
    }

    /// Whether blocked access is enabled.
    pub fn blocked_access(&self) -> bool {
        self.blocked_access
    }

    /// The work-block size.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }
}

impl SimpleSchedule for HbSchedule {
    fn parallelization(&self) -> Parallelization {
        match self.load_balance {
            HbLoadBalance::VertexBased => Parallelization::VertexBased,
            HbLoadBalance::EdgeBased => Parallelization::EdgeBased,
            HbLoadBalance::Aligned => Parallelization::EdgeAwareVertexBased,
        }
    }

    fn direction(&self) -> SchedDirection {
        self.direction
    }

    fn pull_frontier(&self) -> PullFrontierRepr {
        self.pull_frontier
    }

    fn delta(&self) -> i64 {
        self.delta
    }

    fn hybrid_threshold(&self) -> f64 {
        self.hybrid_threshold
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        let s = HbSchedule::new();
        assert_eq!(s.load_balance(), HbLoadBalance::VertexBased);
        assert!(!s.blocked_access());
        assert_eq!(s.block_size(), 64);
    }

    #[test]
    fn builder_round_trip() {
        let s = HbSchedule::new()
            .with_blocked_access(true)
            .with_block_size(128)
            .with_delta(8);
        assert!(s.blocked_access());
        assert_eq!(s.block_size(), 128);
        assert_eq!(s.delta(), 8);
    }

    #[test]
    fn zero_block_size_clamped() {
        assert_eq!(HbSchedule::new().with_block_size(0).block_size(), 1);
    }
}
