//! Background schedule tuning for resident graphs.
//!
//! The batch pipeline tunes on demand (`repro tune`); the daemon instead
//! tunes *behind* the query stream: the first query against a `(dataset,
//! scale, algorithm)` triple enqueues a [`TuneJob`], a single background
//! thread (spawned by `Server::start`) runs the autotuner over the CPU
//! schedule space whenever the admission gate is idle, and every later
//! supervised query executes under the tuned winner. The store is
//! three-state per key — untried, pending, resolved — so a triple is
//! enqueued at most once and a failed tuning run is never retried in a
//! hot loop.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use ugc::Algorithm;
use ugc_graph::{Dataset, Graph, Scale};
use ugc_schedule::ScheduleRef;

/// One tuning request, carrying the already-resident graph so the tuner
/// never triggers a dataset build of its own.
pub struct TuneJob {
    /// Dataset of the resident graph.
    pub dataset: Dataset,
    /// Scale of the resident graph.
    pub scale: Scale,
    /// Algorithm to tune for.
    pub algo: Algorithm,
    /// The shared graph instance.
    pub graph: Arc<Graph>,
}

enum State {
    /// Enqueued, not yet tuned.
    Pending,
    /// Tuning finished; `None` records a failed run so it is not retried.
    Done(Option<ScheduleRef>),
}

/// Concurrent map from query triple to its tuned schedule (if any).
#[derive(Default)]
pub struct TunedSchedules {
    map: Mutex<HashMap<(Dataset, Scale, Algorithm), State>>,
}

impl TunedSchedules {
    /// An empty store.
    pub fn new() -> TunedSchedules {
        TunedSchedules::default()
    }

    /// Marks `key` pending if it was never seen before. Returns `true`
    /// exactly once per key — the caller then owns enqueueing the job.
    pub fn mark_pending(&self, key: (Dataset, Scale, Algorithm)) -> bool {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(&key) {
            return false;
        }
        map.insert(key, State::Pending);
        true
    }

    /// Resolves `key` with the tuned winner (or `None` for a failed run).
    pub fn store(&self, key: (Dataset, Scale, Algorithm), sched: Option<ScheduleRef>) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, State::Done(sched));
    }

    /// The tuned schedule for `key`, if tuning has finished and won.
    pub fn lookup(&self, key: (Dataset, Scale, Algorithm)) -> Option<ScheduleRef> {
        match self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            Some(State::Done(Some(s))) => Some(s.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_schedule::{DefaultSchedule, ScheduleRef};

    fn key() -> (Dataset, Scale, Algorithm) {
        (Dataset::RoadNetCa, Scale::Tiny, Algorithm::PageRank)
    }

    #[test]
    fn pending_fires_once_per_key() {
        let t = TunedSchedules::new();
        assert!(t.mark_pending(key()));
        assert!(!t.mark_pending(key()));
        assert!(t.lookup(key()).is_none(), "pending is not a hit");
    }

    #[test]
    fn stored_winner_is_returned_and_failures_stay_resolved() {
        let t = TunedSchedules::new();
        assert!(t.mark_pending(key()));
        t.store(key(), Some(ScheduleRef::simple(DefaultSchedule::new())));
        assert!(t.lookup(key()).is_some());

        let other = (Dataset::Pokec, Scale::Tiny, Algorithm::Cc);
        assert!(t.mark_pending(other));
        t.store(other, None);
        assert!(t.lookup(other).is_none());
        assert!(!t.mark_pending(other), "failed runs are not re-enqueued");
    }
}
