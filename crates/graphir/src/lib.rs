#![warn(missing_docs)]

//! GraphIR — the domain-specific intermediate representation at the core of
//! the Unified GraphIt Compiler framework (UGC).
//!
//! GraphIR sits between the hardware-independent compiler and the
//! hardware-specific backends ("GraphVMs"). Like LLVM IR it is an in-memory
//! program representation transformed IR-to-IR by passes; unlike LLVM IR it
//! is *domain-specific*: instead of loop nests it has operators such as
//! [`EdgeSetIterator`](ir::EdgeSetIteratorData) (iterate the edges incident
//! to a set of active vertices and apply a user-defined function) and
//! `VertexSetIterator`, and instead of raw pointers it has graphs, vertex
//! sets, per-vertex property vectors, and priority queues.
//!
//! Every node carries **arguments** (correctness-relevant, derived from the
//! algorithm) and **metadata** (optimization-relevant, attached by compiler
//! passes and freely extensible by backends) — see [`meta::Metadata`], which
//! reproduces the paper's `setMetadata<T>` / `getMetadata<T>` API with
//! string labels.
//!
//! The module map follows the paper's Table II:
//!
//! * [`types`] — GraphIR data types (`Vertex`, `VertexSet` representations,
//!   traversal [`types::Direction`], reduction operators, intrinsics),
//! * [`ir`] — program structure: [`ir::Program`], [`ir::Function`],
//!   [`ir::Stmt`]/[`ir::StmtKind`], [`ir::Expr`],
//! * [`meta`] — the extensible metadata map,
//! * [`keys`] — well-known metadata keys used by the stock passes,
//! * [`printer`] — the pretty printer producing the paper's Fig. 4 style
//!   textual form,
//! * [`visit`] — statement/expression walkers used by analysis passes,
//! * [`verify`] — a structural verifier run between passes.
//!
//! # Example
//!
//! ```
//! use ugc_graphir::ir::{Program, Expr};
//! use ugc_graphir::types::Type;
//!
//! let mut prog = Program::new();
//! prog.add_property("parent", Type::Vertex, Expr::int(-1));
//! assert!(prog.property("parent").is_some());
//! ```

pub mod ir;
pub mod keys;
pub mod meta;
pub mod printer;
pub mod types;
pub mod verify;
pub mod visit;

pub use ir::{Expr, Function, Program, Stmt, StmtKind};
pub use meta::{MetaValue, Metadata};
pub use types::{Direction, ReduceOp, Type, VertexSetRepr};
