#![warn(missing_docs)]

//! GraphIt algorithm-language frontend for UGC.
//!
//! UGC "uses exactly the same algorithm language as GraphIt, enabling us to
//! reuse the source code written for various applications" (§II-A). This
//! crate implements that language: a lexer, a recursive-descent parser
//! producing a typed AST, and a type checker. Lowering from the AST to
//! GraphIR lives in `ugc-midend` (it is the first stage of the
//! hardware-independent compiler).
//!
//! The supported language is the subset exercised by the paper's five
//! algorithms (PageRank, BFS, SSSP with ∆-stepping, CC, BC):
//!
//! ```text
//! element Vertex end
//! element Edge end
//! const edges : edgeset{Edge}(Vertex,Vertex) = load(argv[1]);
//! const vertices : vertexset{Vertex} = edges.getVertices();
//! const parent : vector{Vertex}(int) = -1;
//! const start_vertex : Vertex;             % bound by the host at run time
//!
//! func toFilter(v : Vertex) -> output : bool
//!     output = (parent[v] == -1);
//! end
//! func updateEdge(src : Vertex, dst : Vertex)
//!     parent[dst] = src;
//! end
//! func main()
//!     var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
//!     frontier.addVertex(start_vertex);
//!     parent[start_vertex] = start_vertex;
//!     #s0# while (frontier.getVertexSetSize() != 0)
//!         #s1# var output : vertexset{Vertex} =
//!             edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
//!         delete frontier;
//!         frontier = output;
//!     end
//! end
//! ```
//!
//! # Example
//!
//! ```
//! use ugc_frontend::parse;
//!
//! let src = "element Vertex end\nfunc main()\nend";
//! let ast = parse(src).unwrap();
//! assert_eq!(ast.decls.len(), 2);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod typecheck;

pub use ast::SourceProgram;
pub use lexer::{LexError, Span, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use typecheck::{typecheck, TypeError};

/// Parses and type-checks in one step.
///
/// # Errors
///
/// Returns the textual rendering of the first parse or type error.
pub fn parse_and_check(src: &str) -> Result<SourceProgram, String> {
    let prog = parse(src).map_err(|e| e.to_string())?;
    typecheck(&prog).map_err(|errs| {
        errs.iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    Ok(prog)
}
