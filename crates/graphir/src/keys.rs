//! Well-known metadata labels attached by the hardware-independent compiler
//! and consumed (or extended) by GraphVMs.
//!
//! The label space is deliberately open — backends add their own labels —
//! but the stock passes agree on the names below, matching the paper's
//! Fig. 4 and Table II.

/// On `EdgeSetIterator`: traversal [`Direction`](crate::types::Direction).
pub const DIRECTION: &str = "direction";

/// On `EdgeSetIterator`: whether the operator produces an output frontier.
pub const REQUIRES_OUTPUT: &str = "requires_output";

/// On `EdgeSetIterator`: result of the frontier-reuse (liveness) analysis —
/// the input frontier's storage may be reused for the output.
pub const CAN_REUSE_FRONTIER: &str = "can_reuse_frontier";

/// On `EdgeSetIterator`: parallelize over edges rather than vertices.
pub const IS_EDGE_PARALLEL: &str = "is_edge_parallel";

/// On `EdgeSetIterator`: iterate all edges (topology-driven operator).
pub const IS_ALL_EDGES: &str = "is_all_edges";

/// On `EdgeSetIterator`: run the source-vertex deduplication pass on the
/// output frontier.
pub const APPLY_DEDUPLICATION: &str = "apply_deduplication";

/// On `EdgeSetIterator`: representation of the output frontier
/// ([`VertexSetRepr`](crate::types::VertexSetRepr)).
pub const OUTPUT_REPRESENTATION: &str = "output_representation";

/// On `EdgeSetIterator`: representation of the input frontier when pulling.
pub const PULL_INPUT_FRONTIER: &str = "pull_input_frontier";

/// On `EdgeSetIterator`: name of the priority queue this operator updates
/// (ordered algorithms such as ∆-stepping SSSP).
pub const QUEUE_UPDATED: &str = "queue_updated";

/// On `WhileLoopStmt`: the GPU GraphVM will fuse the whole loop into a
/// single device kernel.
pub const NEEDS_FUSION: &str = "needs_fusion";

/// On `WhileLoopStmt`: variables the kernel-fusion pass hoisted into
/// device-resident state.
pub const HOISTED_VARS: &str = "hoisted_vars";

/// On `CompareAndSwap` / `Reduce` / `UpdatePriority*`: the operation needs
/// hardware synchronization (set by the atomics-insertion pass).
pub const IS_ATOMIC: &str = "is_atomic";

/// On `EnqueueVertex`: representation of the frontier being appended to.
pub const OUTPUT_FORMAT: &str = "output_format";

/// On `VertexSetIterator`: iterate all vertices rather than a frontier.
pub const IS_ALL_VERTS: &str = "is_all_verts";

/// On `VertexSetIterator`: run the apply function in parallel.
pub const IS_PARALLEL: &str = "is_parallel";

/// On any statement: the scheduling object attached by
/// `apply*Schedule(label, sched)` (an `Any` payload).
pub const SCHEDULE: &str = "schedule";

/// On `Function`: where the function runs (`"HOST"`, `"DEVICE"` or
/// `"BOTH"`).
pub const PLACEMENT: &str = "placement";

/// On `EdgeSetIterator`: this operator was produced by ordered-processing
/// lowering and drains one priority bucket per invocation.
pub const IS_ORDERED: &str = "is_ordered";

/// On `ListAppend`: destroy the appended set when the list is destroyed.
pub const TO_DESTROY: &str = "to_destroy";

/// On `ListRetrieve`: allocate the output set before copying into it.
pub const NEEDS_ALLOCATION: &str = "needs_allocation";
