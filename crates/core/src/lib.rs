//! # UGC — the Unified GraphIt Compiler framework, in Rust
//!
//! A reproduction of *"Taming the Zoo: The Unified GraphIt Compiler
//! Framework for Novel Architectures"* (ISCA 2021). UGC compiles graph
//! algorithms written once in the GraphIt DSL to four very different
//! parallel architectures, decoupling three concerns:
//!
//! * the **algorithm** ([`ugc_frontend`], [`ugc_algorithms`]),
//! * the **schedule** — per-architecture optimization directives
//!   ([`ugc_schedule`] plus each backend's schedule type),
//! * the **backend** — a GraphVM per architecture
//!   ([`ugc_backend_cpu`], [`ugc_backend_gpu`], [`ugc_backend_swarm`],
//!   [`ugc_backend_hb`]),
//!
//! linked by the GraphIR intermediate representation ([`ugc_graphir`]) and
//! the hardware-independent compiler ([`ugc_midend`]).
//!
//! This crate is the façade: one [`Compiler`] type that runs the pipeline
//! and dispatches to a [`Target`].
//!
//! # Example
//!
//! ```
//! use ugc::{Compiler, Target};
//! use ugc_algorithms::Algorithm;
//!
//! let graph = ugc_graph::generators::road_grid(8, 8, 0.1, 1, true);
//! let result = Compiler::new(Algorithm::Bfs)
//!     .start_vertex(0)
//!     .run(Target::Cpu, &graph)
//!     .unwrap();
//! assert!(result.property_ints("parent").iter().all(|&p| p != -1));
//! ```

use std::collections::HashMap;

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::ExecError;
use ugc_runtime::value::Value;
use ugc_schedule::ScheduleRef;

pub use ugc_algorithms::Algorithm;

/// The four architectures of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Real multithreaded execution on the host.
    Cpu,
    /// The SIMT GPU timing simulator.
    Gpu,
    /// The Swarm speculative-task simulator.
    Swarm,
    /// The HammerBlade manycore simulator.
    HammerBlade,
}

impl Target {
    /// All four targets.
    pub const ALL: [Target; 4] = [Target::Cpu, Target::Gpu, Target::Swarm, Target::HammerBlade];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Target::Cpu => "CPU",
            Target::Gpu => "GPU",
            Target::Swarm => "Swarm",
            Target::HammerBlade => "HammerBlade",
        }
    }
}

/// A compiled-and-executed run: results plus a target-appropriate time.
pub struct RunResult {
    /// Integer property snapshots by name.
    ints: HashMap<String, Vec<i64>>,
    /// Float property snapshots by name.
    floats: HashMap<String, Vec<f64>>,
    /// `Print` output.
    pub prints: Vec<String>,
    /// Time in milliseconds: wall-clock for the CPU target, simulated for
    /// the others.
    pub time_ms: f64,
    /// Simulated cycles (0 for the CPU target).
    pub cycles: u64,
}

impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("time_ms", &self.time_ms)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl RunResult {
    /// Snapshot of an integer property.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no such property.
    pub fn property_ints(&self, name: &str) -> &[i64] {
        self.ints.get(name).expect("property exists")
    }

    /// Snapshot of a float property.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no such property.
    pub fn property_floats(&self, name: &str) -> &[f64] {
        self.floats.get(name).expect("property exists")
    }
}

/// Compilation/execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UgcError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for UgcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ugc error: {}", self.message)
    }
}

impl std::error::Error for UgcError {}

impl From<ExecError> for UgcError {
    fn from(e: ExecError) -> Self {
        UgcError { message: e.message }
    }
}

/// The end-to-end compiler pipeline for one algorithm.
///
/// A non-consuming builder: configure schedules and inputs, then call
/// [`Compiler::run`] per target.
#[derive(Debug, Default)]
pub struct Compiler {
    source: String,
    schedules: Vec<(String, ScheduleRef)>,
    externs: HashMap<String, Value>,
}

impl Compiler {
    /// A pipeline for one of the five paper algorithms.
    pub fn new(algo: Algorithm) -> Self {
        Compiler {
            source: algo.source().to_string(),
            schedules: Vec::new(),
            externs: HashMap::new(),
        }
    }

    /// A pipeline for arbitrary GraphIt source text.
    pub fn from_source(source: impl Into<String>) -> Self {
        Compiler {
            source: source.into(),
            schedules: Vec::new(),
            externs: HashMap::new(),
        }
    }

    /// Attaches a schedule at a `:`-separated label path (the paper's
    /// `applyGPUSchedule("s0:s1", sched)`).
    pub fn schedule(&mut self, path: impl Into<String>, sched: ScheduleRef) -> &mut Self {
        self.schedules.push((path.into(), sched));
        self
    }

    /// Binds the `start_vertex` extern const.
    pub fn start_vertex(&mut self, v: u32) -> &mut Self {
        self.externs
            .insert("start_vertex".to_string(), Value::Int(v as i64));
        self
    }

    /// Binds an arbitrary extern const.
    pub fn bind(&mut self, name: impl Into<String>, v: Value) -> &mut Self {
        self.externs.insert(name.into(), v);
        self
    }

    /// Runs the hardware-independent pipeline: parse, type-check, lower,
    /// attach schedules, run passes. Returns the GraphIR handed to
    /// GraphVMs.
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on any frontend/midend failure.
    pub fn compile(&self) -> Result<Program, UgcError> {
        let mut prog = ugc_midend::frontend_to_ir(&self.source)
            .map_err(|e| UgcError { message: e.message })?;
        for (path, sched) in &self.schedules {
            ugc_schedule::apply_schedule(&mut prog, path, sched.clone()).map_err(|e| UgcError {
                message: e.to_string(),
            })?;
        }
        ugc_midend::run_passes(&mut prog).map_err(|e| UgcError { message: e.message })?;
        Ok(prog)
    }

    /// Compiles and executes on a target.
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on compilation or execution failure.
    pub fn run(&self, target: Target, graph: &Graph) -> Result<RunResult, UgcError> {
        let prog = self.compile()?;
        self.run_compiled(target, prog, graph)
    }

    /// Executes an already-compiled program on a target.
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on execution failure.
    pub fn run_compiled(
        &self,
        target: Target,
        prog: Program,
        graph: &Graph,
    ) -> Result<RunResult, UgcError> {
        let snapshot = |state: &ugc_runtime::interp::ProgramState<'_>| {
            let mut ints = HashMap::new();
            let mut floats = HashMap::new();
            for (i, p) in state.prog.properties.iter().enumerate() {
                let id = ugc_runtime::properties::PropId(i);
                let vals = state.props.snapshot(id);
                match p.ty {
                    ugc_graphir::types::Type::Float => {
                        floats.insert(p.name.clone(), vals.iter().map(|v| v.as_float()).collect());
                    }
                    _ => {
                        ints.insert(p.name.clone(), vals.iter().map(|v| v.as_int()).collect());
                    }
                }
            }
            (ints, floats)
        };
        match target {
            Target::Cpu => {
                let vm = ugc_backend_cpu::CpuGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.elapsed.as_secs_f64() * 1e3,
                    cycles: 0,
                })
            }
            Target::Gpu => {
                let vm = ugc_backend_gpu::GpuGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                })
            }
            Target::Swarm => {
                let vm = ugc_backend_swarm::SwarmGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                })
            }
            Target::HammerBlade => {
                let vm = ugc_backend_hb::HbGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                })
            }
        }
    }

    /// Emits the target-flavored source text the paper's GraphVMs would
    /// generate (OpenMP C++ / CUDA / T4 C++ / HammerBlade C++).
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on compilation failure.
    pub fn emit(&self, target: Target) -> Result<String, UgcError> {
        let mut prog = self.compile()?;
        Ok(match target {
            Target::Cpu => ugc_backend_cpu::emitter::emit_cpp(&prog),
            Target::Gpu => {
                ugc_backend_gpu::passes::run(&mut prog);
                ugc_backend_gpu::emitter::emit_cuda(&prog)
            }
            Target::Swarm => ugc_backend_swarm::emitter::emit_t4(&prog),
            Target::HammerBlade => ugc_backend_hb::emitter::emit_hb(&prog),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_runs_on_all_targets() {
        let graph = ugc_graph::generators::two_communities();
        for target in Target::ALL {
            let r = Compiler::new(Algorithm::Bfs)
                .start_vertex(0)
                .run(target, &graph)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
            assert!(
                r.property_ints("parent").iter().all(|&p| p != -1),
                "{} left vertices unreached",
                target.name()
            );
        }
    }

    #[test]
    fn emit_produces_source_for_all_targets() {
        for target in Target::ALL {
            let text = Compiler::new(Algorithm::Bfs).emit(target).unwrap();
            assert!(text.len() > 200, "{}", target.name());
        }
    }

    #[test]
    fn custom_source_compiles() {
        let r = Compiler::from_source(
            "element Vertex end\nconst x : int = 41;\nfunc main()\nprint x + 1;\nend",
        )
        .run(Target::Cpu, &ugc_graph::generators::path(2))
        .unwrap();
        assert_eq!(r.prints, vec!["42"]);
    }

    #[test]
    fn compile_error_reported() {
        let err = Compiler::from_source("func main()\nnope;\nend")
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
