//! Plain timing harness for the `harness = false` benches.
//!
//! The in-tree replacement for Criterion, keeping the paper figures
//! regenerable offline with zero external crates. Each measurement runs a
//! few warmup iterations, then `samples` timed iterations, and reports the
//! **median** (robust to scheduler noise; identical to the point estimate
//! for the deterministic simulated targets where every iteration returns
//! the same simulated duration).
//!
//! Output is one JSON line per benchmark on stdout — machine-consumable by
//! `scripts/fill_experiments.py`-style tooling — plus a human-readable
//! summary on stderr.
//!
//! Iterations return their own [`Duration`]: wall-clock for the CPU
//! backend, simulated time (1 cycle = 1 ns) for the simulator backends,
//! matching the `iter_custom` pattern the Criterion benches used.
//!
//! Knobs: first non-flag CLI argument is a case-insensitive substring
//! filter on `group/label` (`cargo bench --bench fig8_speedups -- cpu/bfs`);
//! `UGC_BENCH_SAMPLES` / `UGC_BENCH_WARMUP` override the iteration counts.

use std::time::Duration;

/// Benchmark runner: holds the filter and iteration counts, runs and
/// reports individual benchmarks.
#[derive(Debug, Clone)]
pub struct Harness {
    filter: Option<String>,
    warmup: usize,
    samples: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            filter: None,
            warmup: 2,
            samples: 10,
        }
    }
}

impl Harness {
    /// Builds a harness from CLI args and environment.
    ///
    /// `cargo bench` passes harness flags like `--bench`; anything starting
    /// with `-` is ignored, the first other argument becomes the substring
    /// filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let env_n = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        let d = Self::default();
        Self {
            filter,
            warmup: env_n("UGC_BENCH_WARMUP", d.warmup),
            samples: env_n("UGC_BENCH_SAMPLES", d.samples).max(1),
        }
    }

    /// Overrides the per-benchmark sample count.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times one benchmark: `f` is called once per iteration and returns
    /// the duration that iteration took (measured or simulated). Prints a
    /// JSON line on stdout and a summary on stderr; returns the stats, or
    /// `None` if the name was filtered out.
    pub fn bench(
        &self,
        group: &str,
        label: &str,
        mut f: impl FnMut() -> Duration,
    ) -> Option<Stats> {
        let full = format!("{group}/{label}");
        if let Some(filter) = &self.filter {
            // Case-insensitive so `-- cpu/bfs` matches `fig8/CPU/BFS/RN`.
            if !full.to_lowercase().contains(&filter.to_lowercase()) {
                return None;
            }
        }
        for _ in 0..self.warmup {
            f();
        }
        let mut ns: Vec<u128> = (0..self.samples).map(|_| f().as_nanos()).collect();
        ns.sort_unstable();
        let stats = Stats::from_sorted(group, label, &ns);
        println!("{}", stats.to_json());
        eprintln!(
            "bench {full:<56} median {:>12.3} ms  ({} samples, min {:.3} ms, max {:.3} ms)",
            stats.median_ns / 1e6,
            stats.samples,
            stats.min_ns / 1e6,
            stats.max_ns / 1e6,
        );
        Some(stats)
    }
}

/// Summary statistics of one benchmark's timed iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Benchmark group, e.g. `fig8/cpu/bfs/RDCA`.
    pub group: String,
    /// Variant label within the group, e.g. `baseline` or `tuned`.
    pub label: String,
    /// Number of timed iterations.
    pub samples: usize,
    /// Median iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration in nanoseconds.
    pub min_ns: f64,
    /// Slowest iteration in nanoseconds.
    pub max_ns: f64,
}

impl Stats {
    fn from_sorted(group: &str, label: &str, sorted_ns: &[u128]) -> Self {
        let n = sorted_ns.len();
        assert!(n > 0, "no samples");
        let median = if n % 2 == 1 {
            sorted_ns[n / 2] as f64
        } else {
            (sorted_ns[n / 2 - 1] + sorted_ns[n / 2]) as f64 / 2.0
        };
        let mean = sorted_ns.iter().sum::<u128>() as f64 / n as f64;
        Self {
            group: group.to_string(),
            label: label.to_string(),
            samples: n,
            median_ns: median,
            mean_ns: mean,
            min_ns: sorted_ns[0] as f64,
            max_ns: sorted_ns[n - 1] as f64,
        }
    }

    /// One JSON object on a single line.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"group":{},"label":{},"samples":{},"median_ns":{},"mean_ns":{},"min_ns":{},"max_ns":{}}}"#,
            json_str(&self.group),
            json_str(&self.label),
            self.samples,
            self.median_ns,
            self.mean_ns,
            self.min_ns,
            self.max_ns,
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let s = Stats::from_sorted("g", "l", &[1, 2, 100]);
        assert_eq!(s.median_ns, 2.0);
        let s = Stats::from_sorted("g", "l", &[1, 2, 3, 100]);
        assert_eq!(s.median_ns, 2.5);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
    }

    #[test]
    fn json_line_shape() {
        let s = Stats::from_sorted("fig8/cpu", "tuned", &[5, 5, 5]);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""group":"fig8/cpu""#));
        assert!(j.contains(r#""label":"tuned""#));
        assert!(j.contains(r#""median_ns":5"#));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn filtered_out_bench_does_not_run() {
        let h = Harness {
            filter: Some("nomatch".into()),
            warmup: 0,
            samples: 1,
        };
        let ran = std::cell::Cell::new(false);
        let r = h.bench("group", "label", || {
            ran.set(true);
            Duration::from_nanos(1)
        });
        assert!(r.is_none());
        assert!(!ran.get());
    }

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let h = Harness {
            filter: None,
            warmup: 3,
            samples: 5,
        };
        let calls = std::cell::Cell::new(0u32);
        let stats = h
            .bench("group", "label", || {
                calls.set(calls.get() + 1);
                Duration::from_nanos(7)
            })
            .expect("not filtered");
        assert_eq!(calls.get(), 8);
        assert_eq!(stats.samples, 5);
        assert_eq!(stats.median_ns, 7.0);
    }
}
