//! The asynchronous-execution extension: the optimization the paper notes
//! UGC lacks (§IV-C, SEP-Graph's win) — implemented here for monotone
//! ordered loops on the GPU backend.

use ugc_algorithms::Algorithm;
use ugc_backend_gpu::{GpuGraphVm, GpuSchedule};
use ugc_integration::{compile, externs_for, validate};
use ugc_schedule::ScheduleRef;

#[test]
fn async_sssp_is_correct() {
    for (name, graph) in ugc_integration::test_graphs() {
        let prog = compile(
            Algorithm::Sssp,
            Some(ScheduleRef::simple(
                GpuSchedule::new().with_async_execution(true).with_delta(8),
            )),
        );
        let run = GpuGraphVm::default()
            .execute(prog, &graph, &externs_for(Algorithm::Sssp, 0))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        validate(
            Algorithm::Sssp,
            &graph,
            0,
            &|p| run.property_ints(p),
            &|p| run.property_floats(p),
        );
    }
}

#[test]
fn async_drops_grid_syncs_and_wins_on_road_graphs() {
    let graph = ugc_graph::generators::road_grid(24, 24, 0.05, 5, true);
    let externs = externs_for(Algorithm::Sssp, 0);
    let fused = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Sssp,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_kernel_fusion(true).with_delta(8),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    let asynced = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Sssp,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_async_execution(true).with_delta(8),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    assert_eq!(
        fused.property_ints("dist"),
        asynced.property_ints("dist"),
        "async must not change results"
    );
    assert_eq!(
        asynced.stats.grid_syncs, 0,
        "async must drop all grid syncs"
    );
    assert!(fused.stats.grid_syncs > 0);
    assert!(
        asynced.cycles < fused.cycles,
        "async {} must beat fused {} on a high-round road graph",
        asynced.cycles,
        fused.cycles
    );
}

#[test]
fn async_closes_the_sep_graph_gap_on_road_sssp() {
    // With async execution, UGC matches/beats the SEP-Graph baseline that
    // beat it in Fig. 9.
    let graph = ugc_graph::Dataset::RoadNetCa.generate(ugc_graph::Scale::Tiny);
    let sep = ugc_baselines::gpu_frameworks::run_framework(
        ugc_baselines::gpu_frameworks::Framework::SepGraph,
        "sssp",
        &graph,
        0,
        ugc_sim_gpu::GpuConfig::default(),
    );
    let ugc_async = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Sssp,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_async_execution(true).with_delta(64),
                )),
            ),
            &graph,
            &externs_for(Algorithm::Sssp, 0),
        )
        .unwrap();
    assert!(
        ugc_async.cycles < sep.cycles * 2,
        "async UGC ({}) should be in SEP-Graph's league ({})",
        ugc_async.cycles,
        sep.cycles
    );
}
