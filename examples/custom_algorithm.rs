//! Writing your own algorithm in the GraphIt DSL: k-hop reach counting.
//!
//! The algorithm marks every vertex within `k` hops of a seed and counts
//! them — the kind of ad-hoc analytic UGC lets you write once and run on
//! any architecture.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use ugc::{Compiler, Target};
use ugc_runtime::value::Value;

const K_HOP: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(input);
const vertices : vertexset{Vertex} = edges.getVertices();
const hops : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
const max_hops : int;

func unvisited(v : Vertex) -> output : bool
    output = (hops[v] == -1);
end

func visit(src : Vertex, dst : Vertex)
    hops[dst] = hops[src] + 1;
end

func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    hops[start_vertex] = 0;
    var round : int = 0;
    #s0# while ((frontier.getVertexSetSize() != 0) and (round < max_hops))
        #s1# var next : vertexset{Vertex} =
            edges.from(frontier).to(unvisited).applyModified(visit, hops, true);
        delete frontier;
        frontier = next;
        round = round + 1;
    end
    delete frontier;
end
"#;

fn main() {
    let graph = ugc_graph::generators::rmat(11, 8, 21, false);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    for k in [1i64, 2, 3] {
        let r = Compiler::from_source(K_HOP)
            .start_vertex(0)
            .bind("max_hops", Value::Int(k))
            .run(Target::Cpu, &graph)
            .expect("k-hop runs");
        let within: usize = r.property_ints("hops").iter().filter(|&&h| h != -1).count();
        println!("within {k} hop(s) of v0: {within} vertices");
    }

    // The same source runs unchanged on the simulated architectures:
    let gpu = Compiler::from_source(K_HOP)
        .start_vertex(0)
        .bind("max_hops", Value::Int(2))
        .run(Target::Gpu, &graph)
        .expect("k-hop runs on the GPU simulator");
    println!(
        "\nGPU simulator agrees: {} vertices within 2 hops ({} cycles)",
        gpu.property_ints("hops")
            .iter()
            .filter(|&&h| h != -1)
            .count(),
        gpu.cycles
    );
}
