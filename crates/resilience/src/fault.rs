//! The deterministic seeded fault injector.
//!
//! Configured from `UGC_FAULTS` (comma-separated
//! `<domain>:<kind>:p=<prob>:seed=<n>` specs) or programmatically via
//! [`install`]. The three timing simulators [`roll`] at their natural
//! fault sites; a hit either degrades the simulation (extra cycles the
//! caller charges) or is [`raise`]d as a typed panic payload that the
//! GraphVM boundary converts into a `Transient` error.
//!
//! Determinism: draws come from a splitmix64 stream seeded by the spec's
//! seed mixed with the supervisor's attempt number ([`begin_attempt`]) and
//! a per-attempt draw index. The same spec, attempt, and draw sequence
//! always produces the same faults; a *retry* re-rolls a different stream,
//! which is what makes retrying injected transients meaningful.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{counters, splitmix64};

/// Which simulator a fault spec targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The SIMT GPU timing simulator (`sim-gpu`).
    Gpu,
    /// The Swarm speculative-task simulator (`sim-swarm`).
    Swarm,
    /// The HammerBlade manycore simulator (`sim-hb`).
    Hb,
    /// The `ugc-serve` daemon's batch execution path.
    Serve,
}

impl Domain {
    /// The spec-string name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Gpu => "gpu",
            Domain::Swarm => "swarm",
            Domain::Hb => "hb",
            Domain::Serve => "serve",
        }
    }

    fn parse(s: &str) -> Option<Domain> {
        match s {
            "gpu" => Some(Domain::Gpu),
            "swarm" => Some(Domain::Swarm),
            "hb" | "hammerblade" => Some(Domain::Hb),
            "serve" => Some(Domain::Serve),
            _ => None,
        }
    }
}

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A kernel launch fails outright (GPU; fatal to the attempt).
    KernelLaunchFail,
    /// A memory-stall spike: the kernel completes but pays extra stall
    /// cycles (GPU; degraded).
    MemStallSpike,
    /// An abort storm collapses the speculative commit window (Swarm;
    /// fatal to the attempt).
    TaskAbortStorm,
    /// A DRAM bit error forces a redundant retry read (HammerBlade;
    /// degraded — extra DRAM cycles).
    DramBitError,
    /// A serving batch aborts mid-traversal (Serve; fatal to the
    /// attempt — the daemon's supervised retry loop absorbs it).
    BatchAbort,
}

impl FaultKind {
    /// The spec-string name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KernelLaunchFail => "kernel_launch_fail",
            FaultKind::MemStallSpike => "mem_stall_spike",
            FaultKind::TaskAbortStorm => "task_abort_storm",
            FaultKind::DramBitError => "dram_bit_error",
            FaultKind::BatchAbort => "batch_abort",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "kernel_launch_fail" => Some(FaultKind::KernelLaunchFail),
            "mem_stall_spike" => Some(FaultKind::MemStallSpike),
            "task_abort_storm" => Some(FaultKind::TaskAbortStorm),
            "dram_bit_error" => Some(FaultKind::DramBitError),
            "batch_abort" => Some(FaultKind::BatchAbort),
            _ => None,
        }
    }

    /// The kinds a domain can host (specs are validated against this).
    fn valid_for(self, domain: Domain) -> bool {
        matches!(
            (domain, self),
            (Domain::Gpu, FaultKind::KernelLaunchFail)
                | (Domain::Gpu, FaultKind::MemStallSpike)
                | (Domain::Swarm, FaultKind::TaskAbortStorm)
                | (Domain::Hb, FaultKind::DramBitError)
                | (Domain::Serve, FaultKind::BatchAbort)
        )
    }
}

/// One parsed fault spec: inject `kind` faults in `domain` with
/// per-opportunity probability `p`, drawing from `seed`'s stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Target simulator.
    pub domain: Domain,
    /// What to inject.
    pub kind: FaultKind,
    /// Per-roll probability in `[0, 1]`.
    pub p: f64,
    /// Base seed of the deterministic draw stream.
    pub seed: u64,
}

/// A typed fault event, also used as the panic payload for fatal faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPayload {
    /// Where the fault fired.
    pub domain: Domain,
    /// Which fault fired.
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault {}:{}",
            self.domain.name(),
            self.kind.name()
        )
    }
}

/// Parses a full `UGC_FAULTS` value: comma-separated specs of the form
/// `<domain>:<kind>:p=<prob>:seed=<n>`.
///
/// # Errors
///
/// A message naming the offending field; used verbatim by `repro`'s
/// usage errors.
pub fn parse_faults(s: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        specs.push(parse_one(part)?);
    }
    if specs.is_empty() {
        return Err(format!("UGC_FAULTS `{s}` contains no fault specs"));
    }
    Ok(specs)
}

fn parse_one(part: &str) -> Result<FaultSpec, String> {
    let fields: Vec<&str> = part.split(':').collect();
    if fields.len() != 4 {
        return Err(format!(
            "fault spec `{part}` must be <domain>:<kind>:p=<prob>:seed=<n>"
        ));
    }
    let domain = Domain::parse(fields[0])
        .ok_or_else(|| format!("fault spec `{part}`: unknown domain `{}`", fields[0]))?;
    let kind = FaultKind::parse(fields[1])
        .ok_or_else(|| format!("fault spec `{part}`: unknown fault kind `{}`", fields[1]))?;
    if !kind.valid_for(domain) {
        return Err(format!(
            "fault spec `{part}`: `{}` is not a `{}` fault",
            kind.name(),
            domain.name()
        ));
    }
    let p = fields[2]
        .strip_prefix("p=")
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or_else(|| format!("fault spec `{part}`: bad probability `{}`", fields[2]))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!(
            "fault spec `{part}`: probability {p} outside [0, 1]"
        ));
    }
    let seed = fields[3]
        .strip_prefix("seed=")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| format!("fault spec `{part}`: bad seed `{}`", fields[3]))?;
    Ok(FaultSpec {
        domain,
        kind,
        p,
        seed,
    })
}

/// Fast-path flag: `false` means [`roll`] returns without touching any
/// lock, counter, or RNG — the zero-faults case costs one relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn specs() -> &'static Mutex<Vec<FaultSpec>> {
    static SPECS: OnceLock<Mutex<Vec<FaultSpec>>> = OnceLock::new();
    SPECS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Supervisor attempt salt; mixed into every draw so retries re-roll.
    static ATTEMPT: Cell<u64> = const { Cell::new(0) };
    /// Draw index within the current attempt.
    static DRAWS: Cell<u64> = const { Cell::new(0) };
}

/// Installs fault specs process-wide (replacing any previous set). The
/// programmatic equivalent of setting `UGC_FAULTS`, used by chaos tests.
pub fn install(new_specs: Vec<FaultSpec>) {
    let mut guard = specs().lock().unwrap_or_else(|e| e.into_inner());
    *guard = new_specs;
    ACTIVE.store(!guard.is_empty(), Ordering::SeqCst);
}

/// Removes every installed fault spec.
pub fn clear() {
    install(Vec::new());
}

/// True when at least one fault spec is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs specs from `UGC_FAULTS` if the variable is set. Idempotent:
/// the environment is read once per process; later calls (and calls after
/// a programmatic [`install`]) are no-ops.
///
/// # Errors
///
/// The parse error message when `UGC_FAULTS` is set but invalid.
pub fn init_from_env() -> Result<(), String> {
    static INIT: OnceLock<Result<(), String>> = OnceLock::new();
    INIT.get_or_init(|| match std::env::var("UGC_FAULTS") {
        Err(_) => Ok(()),
        Ok(v) if v.trim().is_empty() => Ok(()),
        Ok(v) => {
            let parsed = parse_faults(&v)?;
            // Respect an earlier programmatic install (tests own the
            // injector once they touch it).
            let mut guard = specs().lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_empty() {
                *guard = parsed;
                ACTIVE.store(true, Ordering::SeqCst);
            }
            Ok(())
        }
    })
    .clone()
}

/// Starts a new supervised attempt on this thread: resets the draw index
/// and salts subsequent draws with `attempt`, so a retry sees a fresh
/// (but still deterministic) fault schedule.
pub fn begin_attempt(attempt: u64) {
    ATTEMPT.with(|a| a.set(attempt));
    DRAWS.with(|d| d.set(0));
}

/// Rolls the injector at a fault opportunity. Returns `true` (and counts
/// `resilience.faults_injected`) when a matching installed spec fires.
///
/// Fault-free processes pay one relaxed atomic load and nothing else.
pub fn roll(domain: Domain, kind: FaultKind) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let spec = {
        let guard = specs().lock().unwrap_or_else(|e| e.into_inner());
        guard
            .iter()
            .find(|s| s.domain == domain && s.kind == kind)
            .copied()
    };
    let Some(spec) = spec else {
        return false;
    };
    let attempt = ATTEMPT.with(|a| a.get());
    let draw = DRAWS.with(|d| {
        let n = d.get();
        d.set(n + 1);
        n
    });
    let bits = splitmix64(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt.wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add(draw),
    );
    // 53 uniform bits → [0, 1).
    let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
    let hit = u < spec.p;
    if hit {
        counters().faults_injected.incr();
    }
    hit
}

/// Raises a fatal injected fault as a typed panic payload. The GraphVM
/// boundary (`ugc_runtime::contain`) converts it into a `Transient`
/// [`crate::ErrorClass`] error; it never escapes the supervisor.
pub fn raise(domain: Domain, kind: FaultKind) -> ! {
    std::panic::panic_any(FaultPayload { domain, kind })
}

/// [`roll`] + [`raise`]: panics with a typed payload when the roll hits.
/// The one-liner simulators use at fatal fault sites.
pub fn roll_fatal(domain: Domain, kind: FaultKind) {
    if roll(domain, kind) {
        raise(domain, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The injector is process-global; tests that install specs must not
    /// overlap.
    fn injector_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_the_documented_example() {
        let specs = parse_faults("gpu:mem_stall_spike:p=0.01:seed=7").unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].domain, Domain::Gpu);
        assert_eq!(specs[0].kind, FaultKind::MemStallSpike);
        assert!((specs[0].p - 0.01).abs() < 1e-12);
        assert_eq!(specs[0].seed, 7);
    }

    #[test]
    fn parses_the_serve_domain() {
        let specs = parse_faults("serve:batch_abort:p=0.25:seed=11").unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].domain, Domain::Serve);
        assert_eq!(specs[0].kind, FaultKind::BatchAbort);
    }

    #[test]
    fn parses_multi_spec_lists() {
        let specs = parse_faults(
            "gpu:kernel_launch_fail:p=0.5:seed=1, swarm:task_abort_storm:p=0.1:seed=2",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].domain, Domain::Swarm);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "gpu",
            "gpu:mem_stall_spike",
            "tpu:mem_stall_spike:p=0.1:seed=1",
            "gpu:nosuchkind:p=0.1:seed=1",
            "gpu:mem_stall_spike:p=nan:seed=1",
            "gpu:mem_stall_spike:p=1.5:seed=1",
            "gpu:mem_stall_spike:p=-0.1:seed=1",
            "gpu:mem_stall_spike:p=0.1:seed=x",
            "gpu:mem_stall_spike:p=0.1:seed=-3",
            "swarm:mem_stall_spike:p=0.1:seed=1",
            "hb:kernel_launch_fail:p=0.1:seed=1",
            "serve:dram_bit_error:p=0.1:seed=1",
            "gpu:batch_abort:p=0.1:seed=1",
        ] {
            assert!(parse_faults(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn draws_are_deterministic_per_attempt() {
        let _guard = injector_lock();
        install(vec![FaultSpec {
            domain: Domain::Gpu,
            kind: FaultKind::MemStallSpike,
            p: 0.5,
            seed: 42,
        }]);
        begin_attempt(1);
        let a: Vec<bool> = (0..64)
            .map(|_| roll(Domain::Gpu, FaultKind::MemStallSpike))
            .collect();
        begin_attempt(1);
        let b: Vec<bool> = (0..64)
            .map(|_| roll(Domain::Gpu, FaultKind::MemStallSpike))
            .collect();
        assert_eq!(a, b, "same attempt must replay the same schedule");
        begin_attempt(2);
        let c: Vec<bool> = (0..64)
            .map(|_| roll(Domain::Gpu, FaultKind::MemStallSpike))
            .collect();
        assert_ne!(a, c, "a retry must see a different schedule");
        assert!(a.iter().any(|&h| h), "p=0.5 over 64 draws must hit");
        assert!(a.iter().any(|&h| !h), "p=0.5 over 64 draws must miss");
        clear();
        assert!(!roll(Domain::Gpu, FaultKind::MemStallSpike));
    }

    #[test]
    fn unmatched_domains_never_fire() {
        let _guard = injector_lock();
        install(vec![FaultSpec {
            domain: Domain::Hb,
            kind: FaultKind::DramBitError,
            p: 1.0,
            seed: 1,
        }]);
        begin_attempt(1);
        assert!(!roll(Domain::Gpu, FaultKind::KernelLaunchFail));
        assert!(roll(Domain::Hb, FaultKind::DramBitError));
        clear();
    }
}
