//! Deterministic search over a declared schedule space.
//!
//! Two strategies, both driven by the in-tree PRNG so the same seed always
//! explores (and returns) the same candidates:
//!
//! * **Exhaustive** — visits every point of the cross-product in a stable
//!   (odometer) order. Exact on the deterministic simulator targets; the
//!   default whenever the space fits the evaluation budget.
//! * **Greedy descent** — seeded random restarts followed by greedy
//!   coordinate descent: sweep each dimension in turn, move to the best
//!   level, repeat until a full sweep makes no progress. The classic
//!   OpenTuner-style climb for spaces too large to enumerate.
//!
//! Cost comes from a caller-supplied evaluator (the bench harness passes
//! its `measure`: wall time on CPU, simulated cycles elsewhere). Evaluated
//! points are memoized, so the budget counts *distinct* measurements.
//!
//! On top of the blind strategies sits the **cost model** (on by default,
//! [`Tuner::cost_model`]): after each measured candidate, the incumbent's
//! dominant attribution component (parsed from [`Sample::profile`]) is
//! matched against the backend's declared
//! [`PruneRule`](ugc_schedule::space::PruneRule) table, and coordinate
//! sweeps along axes that cannot move that component are skipped. Every
//! skip is recorded as an [`AxisPrune`] — the measured budget saved and
//! the component that justified it — so `repro tune --explain` can print
//! a balanced budget report. [`tune_warm`] additionally accepts a
//! warm-start point (the cached winner of the nearest-fingerprint graph)
//! that replaces the first random restart.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use ugc_graph::prng::Prng;
use ugc_schedule::space::{
    cardinality, point_label, Dimension, PointIter, ScheduleSpace, SpaceParams,
};
use ugc_schedule::ScheduleRef;
use ugc_telemetry::Counter;

/// A component must hold at least this share of the attribution total
/// before the cost model treats it as dominant and prunes on it.
pub const DOMINANCE_THRESHOLD: u32 = 50;

/// Counts coordinate-axis sweeps skipped by the cost model.
fn prune_axes_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Counter::new("autotune.prune.axes"))
}

/// Counts candidate measurements the cost model avoided.
fn prune_saved_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Counter::new("autotune.prune.saved"))
}

/// Parses the dominant attribution component out of a profile summary
/// line (`"mem_stall 70% + compute 25% of 4096 cycles"`), returning the
/// component name and its percentage share. `None` when the profile is
/// empty (telemetry off) or not in summary form.
pub fn dominant_component(profile: &str) -> Option<(&str, u32)> {
    let mut words = profile.split_whitespace();
    let comp = words.next()?;
    let share = words.next()?.strip_suffix('%')?.parse().ok()?;
    Some((comp, share))
}

/// Cost of one measured candidate: the target-appropriate time plus the
/// simulator counters recorded for explainability.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sample {
    /// Milliseconds — wall-clock (CPU) or simulated (the other targets).
    pub time_ms: f64,
    /// Simulated cycles (0 on CPU).
    pub cycles: u64,
    /// Short attribution summary (where the time went) captured from the
    /// telemetry registry during the measurement; empty when telemetry is
    /// disabled or the evaluator does not collect one.
    pub profile: String,
}

/// One measured candidate in a [`TuneOutcome`]'s ranking.
#[derive(Debug, Clone)]
pub struct Ranked {
    /// Human-readable name: a `dim=level` label for space points, the
    /// caller-given name for pinned candidates.
    pub name: String,
    /// The point's level indices; `None` for pinned candidates.
    pub point: Option<Vec<usize>>,
    /// The materialized schedule.
    pub schedule: ScheduleRef,
    /// Its measured cost.
    pub sample: Sample,
}

/// One cost-model pruning decision, aggregated per (axis, component):
/// which axis was skipped, which dominant component justified it, and how
/// many candidate measurements the skip saved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisPrune {
    /// The pruned dimension's name.
    pub axis: &'static str,
    /// The dominant attribution component that triggered the rule.
    pub component: String,
    /// The component's share (%) when the rule first fired.
    pub share: u32,
    /// The backend's declared justification.
    pub reason: &'static str,
    /// Unmeasured candidate points the skipped sweeps would have visited.
    pub saved: usize,
}

/// The result of a tuning run: every measured candidate, best first.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Candidates sorted by ascending time (ties broken by name, so the
    /// ranking is deterministic).
    pub ranked: Vec<Ranked>,
    /// Distinct space points measured (excludes pinned candidates).
    pub explored: usize,
    /// Raw cross-product size of the space.
    pub cardinality: u64,
    /// Which strategy ran: `"exhaustive"` or `"greedy"`.
    pub strategy: &'static str,
    /// Cost-model pruning decisions (empty for blind/exhaustive runs).
    pub pruned: Vec<AxisPrune>,
    /// The warm-start point's label when one seeded the first restart.
    pub warm_start: Option<String>,
}

impl TuneOutcome {
    /// The winning candidate.
    ///
    /// # Panics
    ///
    /// Never panics: [`tune`] returns an error instead of an empty ranking.
    pub fn winner(&self) -> &Ranked {
        &self.ranked[0]
    }

    /// The ranked entry with the given name, if it was measured.
    pub fn find(&self, name: &str) -> Option<&Ranked> {
        self.ranked.iter().find(|r| r.name == name)
    }

    /// Total candidate measurements the cost model avoided.
    pub fn saved(&self) -> usize {
        self.pruned.iter().map(|p| p.saved).sum()
    }
}

/// Search strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Exhaustive when the space fits the budget, greedy otherwise.
    #[default]
    Auto,
    /// Always enumerate (still capped at the budget).
    Exhaustive,
    /// Always random-restart + coordinate descent.
    GreedyDescent,
}

/// Tuning knobs. Everything is deterministic per [`Tuner::seed`].
#[derive(Debug, Clone, Copy)]
pub struct Tuner {
    /// PRNG seed for restarts (and any future stochastic strategy).
    pub seed: u64,
    /// Maximum number of distinct space points to measure.
    pub budget: usize,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Random restarts for greedy descent.
    pub restarts: usize,
    /// Attribution-guided pruning: skip coordinate sweeps the backend's
    /// [`PruneRule`] table says cannot move the incumbent's dominant
    /// component. Only affects greedy descent; inert when profiles are
    /// empty (telemetry off) or the backend declares no rules.
    pub cost_model: bool,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            seed: 0x7E57_5EED,
            budget: 64,
            strategy: Strategy::Auto,
            restarts: 3,
            cost_model: true,
        }
    }
}

/// Why a tuning run produced no winner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The space declared no candidates and nothing was pinned.
    EmptySpace {
        /// The backend whose space was empty.
        target: String,
    },
    /// Every candidate's evaluation failed.
    AllCandidatesFailed {
        /// The backend being tuned.
        target: String,
        /// The last evaluator error, for diagnosis.
        last_error: String,
    },
    /// The persistent cache could not be read or written.
    Cache(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptySpace { target } => {
                write!(f, "schedule search space for `{target}` is empty")
            }
            TuneError::AllCandidatesFailed { target, last_error } => {
                write!(
                    f,
                    "every candidate schedule for `{target}` failed to evaluate (last: {last_error})"
                )
            }
            TuneError::Cache(msg) => write!(f, "tuning cache error: {msg}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Shared mutable state of one search: memoized point evaluation so the
/// budget counts *distinct* measurements.
struct SearchState<'a, E> {
    space: &'a dyn ScheduleSpace,
    params: &'a SpaceParams,
    dims: &'a [Dimension],
    eval: E,
    /// point -> index into `ranked` (`None` for alias/failed points).
    memo: HashMap<Vec<usize>, Option<usize>>,
    ranked: Vec<Ranked>,
    explored: usize,
    attempted: usize,
    last_error: String,
    budget: usize,
}

impl<E> SearchState<'_, &mut E>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    fn exhausted(&self) -> bool {
        self.explored >= self.budget
    }

    /// Measures `pt` (memoized), returning its time if it evaluated.
    fn eval_point(&mut self, pt: &[usize]) -> Option<f64> {
        if let Some(&slot) = self.memo.get(pt) {
            return slot.map(|i| self.ranked[i].sample.time_ms);
        }
        if self.exhausted() {
            return None;
        }
        let Some(sched) = self.space.materialize(self.params, pt) else {
            self.memo.insert(pt.to_vec(), None);
            return None;
        };
        self.explored += 1;
        self.attempted += 1;
        match (self.eval)(&sched) {
            Ok(sample) => {
                let time_ms = sample.time_ms;
                self.ranked.push(Ranked {
                    name: point_label(self.dims, pt),
                    point: Some(pt.to_vec()),
                    schedule: sched,
                    sample,
                });
                self.memo.insert(pt.to_vec(), Some(self.ranked.len() - 1));
                Some(time_ms)
            }
            Err(e) => {
                self.last_error = e;
                self.memo.insert(pt.to_vec(), None);
                None
            }
        }
    }

    /// The incumbent point's dominant attribution component, if its
    /// measured profile shows one above [`DOMINANCE_THRESHOLD`].
    fn dominant_of(&self, pt: &[usize]) -> Option<(String, u32)> {
        let idx = (*self.memo.get(pt)?)?;
        let (comp, share) = dominant_component(&self.ranked[idx].sample.profile)?;
        (share >= DOMINANCE_THRESHOLD).then(|| (comp.to_string(), share))
    }

    /// How many unmeasured candidates a sweep of dimension `d` from `pt`
    /// would visit — the honest budget saved by skipping it.
    fn sweep_cost(&self, pt: &[usize], d: usize) -> usize {
        (0..self.dims[d].levels.len())
            .filter(|&level| level != pt[d])
            .filter(|&level| {
                let mut cand = pt.to_vec();
                cand[d] = level;
                !self.memo.contains_key(&cand)
            })
            .count()
    }
}

/// Aggregates one skip into the per-(axis, component) prune records.
fn record_prune(
    prunes: &mut Vec<AxisPrune>,
    axis: &'static str,
    component: &str,
    share: u32,
    reason: &'static str,
    saved: usize,
) {
    if let Some(p) = prunes
        .iter_mut()
        .find(|p| p.axis == axis && p.component == component)
    {
        p.saved += saved;
    } else {
        prunes.push(AxisPrune {
            axis,
            component: component.to_string(),
            share,
            reason,
            saved,
        });
    }
}

/// Searches `space` for the fastest schedule under `eval`, additionally
/// measuring the `pinned` candidates (name, schedule) so reference
/// schedules — e.g. the hand-tuned one — are always part of the ranking
/// and the winner can never lose to them.
///
/// # Errors
///
/// [`TuneError::EmptySpace`] when there is nothing to measure at all, and
/// [`TuneError::AllCandidatesFailed`] when every evaluation failed.
pub fn tune<E>(
    space: &dyn ScheduleSpace,
    params: &SpaceParams,
    pinned: &[(String, ScheduleRef)],
    tuner: &Tuner,
    eval: E,
) -> Result<TuneOutcome, TuneError>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    tune_warm(space, params, pinned, tuner, None, eval)
}

/// [`tune`] with an optional warm-start point: when `warm` names a valid
/// point of the space, it replaces the first random restart of greedy
/// descent, so a search seeded from a near-optimal cached winner (the
/// nearest-fingerprint graph's schedule) converges in far fewer
/// measurements than a cold one. An invalid or stale point (wrong shape
/// for the current space, alias, failed evaluation) falls back to the
/// normal random start — never an error.
///
/// # Errors
///
/// Same as [`tune`].
pub fn tune_warm<E>(
    space: &dyn ScheduleSpace,
    params: &SpaceParams,
    pinned: &[(String, ScheduleRef)],
    tuner: &Tuner,
    warm: Option<&[usize]>,
    mut eval: E,
) -> Result<TuneOutcome, TuneError>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    let dims = space.dimensions(params);
    let card = cardinality(&dims);
    let mut st = SearchState {
        space,
        params,
        dims: &dims,
        eval: &mut eval,
        memo: HashMap::new(),
        ranked: Vec::new(),
        explored: 0,
        attempted: 0,
        last_error: String::new(),
        budget: tuner.budget.max(1),
    };

    for (name, sched) in pinned {
        st.attempted += 1;
        match (st.eval)(sched) {
            Ok(sample) => st.ranked.push(Ranked {
                name: name.clone(),
                point: None,
                schedule: sched.clone(),
                sample,
            }),
            Err(e) => st.last_error = e,
        }
    }

    let exhaustive = match tuner.strategy {
        Strategy::Exhaustive => true,
        Strategy::GreedyDescent => false,
        Strategy::Auto => card as usize <= st.budget,
    };

    let rules = space.prune_rules();
    let use_cost_model = tuner.cost_model && !rules.is_empty();
    let mut prunes: Vec<AxisPrune> = Vec::new();
    let mut warm_used: Option<String> = None;

    if exhaustive {
        for pt in PointIter::new(&dims) {
            if st.exhausted() {
                break;
            }
            st.eval_point(&pt);
        }
    } else if !dims.is_empty() {
        let mut rng = Prng::new(tuner.seed);
        'restarts: for restart in 0..tuner.restarts.max(1) {
            // A starting point: the warm-start candidate replaces the
            // first restart's random draw when it is a valid point of
            // this space and evaluates.
            let mut current: Option<(Vec<usize>, f64)> = None;
            if restart == 0 {
                if let Some(w) = warm {
                    let shape_ok = w.len() == dims.len()
                        && w.iter().zip(&dims).all(|(&l, d)| l < d.levels.len());
                    if shape_ok {
                        if let Some(t) = st.eval_point(w) {
                            warm_used = Some(point_label(&dims, w));
                            current = Some((w.to_vec(), t));
                        }
                    }
                }
            }
            if current.is_none() {
                for _ in 0..64 {
                    let pt: Vec<usize> = dims
                        .iter()
                        .map(|d| rng.gen_range(0..d.levels.len()))
                        .collect();
                    if let Some(t) = st.eval_point(&pt) {
                        current = Some((pt, t));
                        break;
                    }
                    if st.exhausted() {
                        break 'restarts;
                    }
                }
            }
            let Some((mut pt, mut best)) = current else {
                continue;
            };
            // Greedy coordinate descent until a sweep stalls.
            loop {
                let mut improved = false;
                for d in 0..dims.len() {
                    // Cost model: when the incumbent's dominant
                    // attribution component cannot be moved by this
                    // axis (per the backend's table), skip the sweep
                    // and record the measurements it would have cost.
                    if use_cost_model {
                        if let Some((comp, share)) = st.dominant_of(&pt) {
                            if let Some(rule) = rules
                                .iter()
                                .find(|r| r.component == comp && r.axis == dims[d].name)
                            {
                                let saved = st.sweep_cost(&pt, d);
                                record_prune(
                                    &mut prunes,
                                    rule.axis,
                                    &comp,
                                    share,
                                    rule.reason,
                                    saved,
                                );
                                continue;
                            }
                        }
                    }
                    let original = pt[d];
                    for level in 0..dims[d].levels.len() {
                        if level == original {
                            continue;
                        }
                        let mut cand = pt.clone();
                        cand[d] = level;
                        if let Some(t) = st.eval_point(&cand) {
                            if t < best {
                                best = t;
                                pt = cand;
                                improved = true;
                            }
                        }
                    }
                }
                if !improved || st.exhausted() {
                    break;
                }
            }
            if st.exhausted() {
                break;
            }
        }
    }

    let SearchState {
        mut ranked,
        explored,
        attempted,
        last_error,
        ..
    } = st;

    if ranked.is_empty() {
        if attempted == 0 {
            return Err(TuneError::EmptySpace {
                target: space.target_name().to_string(),
            });
        }
        return Err(TuneError::AllCandidatesFailed {
            target: space.target_name().to_string(),
            last_error,
        });
    }

    // Re-measure the pinned incumbents now that the session is warm. They
    // were measured first — cold caches, first-touch faults — so a single
    // noisy-high sample could hand the win to a space point that is
    // actually slower than the schedule we already ship. Keep each
    // incumbent's better sample; the winner can then never lose to a
    // pinned reference on measurement noise alone.
    for r in ranked.iter_mut().filter(|r| r.point.is_none()) {
        if let Ok(again) = eval(&r.schedule) {
            if again.time_ms < r.sample.time_ms {
                r.sample = again;
            }
        }
    }

    ranked.sort_by(|a, b| {
        a.sample
            .time_ms
            .total_cmp(&b.sample.time_ms)
            .then_with(|| a.name.cmp(&b.name))
    });

    if !prunes.is_empty() {
        prune_axes_counter().add(prunes.len() as u64);
        let saved: usize = prunes.iter().map(|p| p.saved).sum();
        prune_saved_counter().add(saved as u64);
    }

    Ok(TuneOutcome {
        ranked,
        explored,
        cardinality: card,
        strategy: if exhaustive { "exhaustive" } else { "greedy" },
        pruned: prunes,
        warm_start: warm_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_schedule::space::{Dimension, PruneRule};
    use ugc_schedule::DefaultSchedule;

    /// A synthetic 3×4×5 space whose cost is a separable function of the
    /// point, with the optimum at (2, 0, 4).
    #[derive(Debug)]
    struct Synthetic;

    impl ScheduleSpace for Synthetic {
        fn target_name(&self) -> &'static str {
            "synthetic"
        }
        fn dimensions(&self, _p: &SpaceParams) -> Vec<Dimension> {
            vec![
                Dimension::new("a", vec!["a0", "a1", "a2"]),
                Dimension::new("b", vec!["b0", "b1", "b2", "b3"]),
                Dimension::new("c", vec!["c0", "c1", "c2", "c3", "c4"]),
            ]
        }
        fn materialize(&self, _p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
            // Encode the point in the hybrid threshold so the evaluator
            // can recover it from the schedule alone.
            let code = (point[0] * 100 + point[1] * 10 + point[2]) as f64;
            #[derive(Debug)]
            struct Coded(f64);
            impl ugc_schedule::SimpleSchedule for Coded {
                fn hybrid_threshold(&self) -> f64 {
                    self.0
                }
                fn as_any(&self) -> &dyn std::any::Any {
                    self
                }
            }
            Some(ScheduleRef::simple(Coded(code)))
        }
    }

    fn cost_of(sched: &ScheduleRef) -> f64 {
        let code = sched.representative().hybrid_threshold() as usize;
        let (a, b, c) = (code / 100, (code / 10) % 10, code % 10);
        // Separable, so coordinate descent finds the global optimum.
        ((a as f64) - 2.0).abs() + (b as f64) + (4.0 - c as f64) + 1.0
    }

    fn params() -> SpaceParams {
        SpaceParams {
            ordered: false,
            data_driven: false,
            num_vertices: 10,
        }
    }

    fn run(tuner: &Tuner) -> TuneOutcome {
        tune(&Synthetic, &params(), &[], tuner, |s| {
            Ok(Sample {
                time_ms: cost_of(s),
                cycles: 0,
                ..Sample::default()
            })
        })
        .unwrap()
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let out = run(&Tuner {
            budget: 60,
            ..Tuner::default()
        });
        assert_eq!(out.strategy, "exhaustive");
        assert_eq!(out.explored, 60);
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
        assert_eq!(out.winner().name, "a=a2,b=b0,c=c4");
    }

    #[test]
    fn greedy_finds_the_separable_optimum_within_budget() {
        let out = run(&Tuner {
            budget: 30,
            seed: 11,
            ..Tuner::default()
        });
        assert_eq!(out.strategy, "greedy");
        assert!(out.explored <= 30);
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
    }

    #[test]
    fn same_seed_same_outcome() {
        let t = Tuner {
            budget: 20,
            seed: 99,
            strategy: Strategy::GreedyDescent,
            restarts: 2,
            cost_model: true,
        };
        let (a, b) = (run(&t), run(&t));
        assert_eq!(a.explored, b.explored);
        assert_eq!(
            a.ranked.iter().map(|r| &r.name).collect::<Vec<_>>(),
            b.ranked.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn budget_is_respected_and_memoized() {
        let out = run(&Tuner {
            budget: 7,
            strategy: Strategy::GreedyDescent,
            restarts: 5,
            seed: 5,
            cost_model: true,
        });
        assert!(out.explored <= 7, "explored {}", out.explored);
        // Every ranked space point is distinct (memoization worked).
        let mut pts: Vec<_> = out.ranked.iter().filter_map(|r| r.point.clone()).collect();
        pts.sort();
        let n = pts.len();
        pts.dedup();
        assert_eq!(pts.len(), n);
    }

    #[test]
    fn pinned_candidates_always_rank() {
        let pinned = vec![(
            "hand_tuned".to_string(),
            ScheduleRef::simple(DefaultSchedule::new()),
        )];
        let out = tune(
            &Synthetic,
            &params(),
            &pinned,
            &Tuner {
                budget: 4,
                ..Tuner::default()
            },
            |s| {
                // The pinned candidate (a DefaultSchedule) costs 0.5 —
                // better than anything in the space.
                let t = if s.representative().hybrid_threshold() == 0.15 {
                    0.5
                } else {
                    cost_of(s)
                };
                Ok(Sample {
                    time_ms: t,
                    cycles: 0,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        assert_eq!(out.winner().name, "hand_tuned");
        assert_eq!(out.winner().point, None);
        assert!(out.find("hand_tuned").is_some());
    }

    #[test]
    fn noisy_cold_incumbent_is_remeasured_and_kept() {
        let pinned = vec![(
            "incumbent".to_string(),
            ScheduleRef::simple(DefaultSchedule::new()),
        )];
        let mut calls = 0usize;
        let out = tune(
            &Synthetic,
            &params(),
            &pinned,
            &Tuner {
                budget: 60,
                ..Tuner::default()
            },
            |s| {
                let n = calls;
                calls += 1;
                let t = if s.representative().hybrid_threshold() == 0.15 {
                    // The incumbent truly costs 0.6 — better than the
                    // space optimum's 1.0 — but its first, cold
                    // measurement reads 5.0.
                    if n == 0 {
                        5.0
                    } else {
                        0.6
                    }
                } else {
                    cost_of(s)
                };
                Ok(Sample {
                    time_ms: t,
                    cycles: 0,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        // Without the warm re-measurement the ranking would report the
        // space optimum (1.0) beating the incumbent's noisy 5.0 sample.
        assert_eq!(out.winner().name, "incumbent");
        assert_eq!(out.winner().sample.time_ms, 0.6);
        assert_eq!(out.explored, 60, "re-measurement must not spend budget");
    }

    #[test]
    fn empty_space_is_a_typed_error() {
        #[derive(Debug)]
        struct Empty;
        impl ScheduleSpace for Empty {
            fn target_name(&self) -> &'static str {
                "empty"
            }
            fn dimensions(&self, _p: &SpaceParams) -> Vec<Dimension> {
                vec![]
            }
            fn materialize(&self, _p: &SpaceParams, _pt: &[usize]) -> Option<ScheduleRef> {
                None
            }
        }
        let err = tune(&Empty, &params(), &[], &Tuner::default(), |_| {
            Ok(Sample {
                time_ms: 1.0,
                cycles: 0,
                ..Sample::default()
            })
        })
        .unwrap_err();
        assert_eq!(
            err,
            TuneError::EmptySpace {
                target: "empty".into()
            }
        );
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn dominant_component_parses_summary_lines() {
        assert_eq!(
            dominant_component("mem_stall 70% + compute 25% of 4096 cycles"),
            Some(("mem_stall", 70))
        );
        assert_eq!(
            dominant_component("commit 100% of 10 cycles"),
            Some(("commit", 100))
        );
        assert_eq!(dominant_component(""), None);
        assert_eq!(dominant_component("no samples"), None);
    }

    /// The synthetic space with a declared prune table: the `b` axis is
    /// declared unable to move the `stalled` component.
    #[derive(Debug)]
    struct SyntheticPruned;

    impl ScheduleSpace for SyntheticPruned {
        fn target_name(&self) -> &'static str {
            "synthetic_pruned"
        }
        fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
            Synthetic.dimensions(p)
        }
        fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
            Synthetic.materialize(p, point)
        }
        fn prune_rules(&self) -> &'static [PruneRule] {
            &[PruneRule {
                component: "stalled",
                axis: "b",
                reason: "b cannot move stalls",
            }]
        }
    }

    fn run_pruned(tuner: &Tuner) -> TuneOutcome {
        tune(&SyntheticPruned, &params(), &[], tuner, |s| {
            Ok(Sample {
                time_ms: cost_of(s),
                cycles: 100,
                profile: "stalled 90% + other 10% of 100 cycles".to_string(),
            })
        })
        .unwrap()
    }

    #[test]
    fn cost_model_prunes_declared_axes_and_accounts_budget() {
        let t = Tuner {
            budget: 40,
            seed: 7,
            strategy: Strategy::GreedyDescent,
            restarts: 2,
            cost_model: true,
        };
        let guided = run_pruned(&t);
        assert!(
            !guided.pruned.is_empty(),
            "a fully-stalled profile must trigger the declared b-axis rule"
        );
        for p in &guided.pruned {
            assert_eq!(p.axis, "b");
            assert_eq!(p.component, "stalled");
            assert_eq!(p.share, 90);
            assert!(p.saved > 0, "aggregated prune must have saved measurements");
        }
        let blind = run_pruned(&Tuner {
            cost_model: false,
            ..t
        });
        assert!(blind.pruned.is_empty(), "blind search records no prunes");
        assert!(
            guided.explored < blind.explored,
            "pruning must spend less budget ({} vs {})",
            guided.explored,
            blind.explored
        );
    }

    #[test]
    fn cost_model_is_inert_without_profiles() {
        // Same space and rules, but the evaluator reports no profile
        // (telemetry off): nothing may be pruned.
        let out = tune(
            &SyntheticPruned,
            &params(),
            &[],
            &Tuner {
                budget: 40,
                seed: 7,
                strategy: Strategy::GreedyDescent,
                restarts: 2,
                cost_model: true,
            },
            |s| {
                Ok(Sample {
                    time_ms: cost_of(s),
                    cycles: 0,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        assert!(out.pruned.is_empty());
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
    }

    #[test]
    fn warm_start_seeds_first_restart() {
        let t = Tuner {
            budget: 30,
            seed: 3,
            strategy: Strategy::GreedyDescent,
            restarts: 1,
            cost_model: true,
        };
        let eval = |s: &ScheduleRef| {
            Ok(Sample {
                time_ms: cost_of(s),
                cycles: 0,
                ..Sample::default()
            })
        };
        // Warm-start one step from the optimum: descent converges in a
        // single sweep instead of climbing from a random point.
        let warm = tune_warm(&Synthetic, &params(), &[], &t, Some(&[2, 1, 4]), eval).unwrap();
        assert_eq!(warm.warm_start.as_deref(), Some("a=a2,b=b1,c=c4"));
        assert_eq!(warm.winner().point, Some(vec![2, 0, 4]));
        let cold = tune_warm(&Synthetic, &params(), &[], &t, None, eval).unwrap();
        assert!(cold.warm_start.is_none());
        assert!(
            warm.explored < cold.explored,
            "warm start must converge in fewer measurements ({} vs {})",
            warm.explored,
            cold.explored
        );
    }

    #[test]
    fn invalid_warm_point_falls_back_to_random_start() {
        let t = Tuner {
            budget: 30,
            seed: 3,
            strategy: Strategy::GreedyDescent,
            restarts: 1,
            cost_model: true,
        };
        let eval = |s: &ScheduleRef| {
            Ok(Sample {
                time_ms: cost_of(s),
                cycles: 0,
                ..Sample::default()
            })
        };
        // Wrong shape (stale cache from an older space layout).
        let out = tune_warm(&Synthetic, &params(), &[], &t, Some(&[9, 9]), eval).unwrap();
        assert!(out.warm_start.is_none());
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
    }

    #[test]
    fn all_failures_reported() {
        let err = tune(
            &Synthetic,
            &params(),
            &[],
            &Tuner {
                budget: 5,
                ..Tuner::default()
            },
            |_| Err("simulated failure".to_string()),
        )
        .unwrap_err();
        match err {
            TuneError::AllCandidatesFailed { last_error, .. } => {
                assert_eq!(last_error, "simulated failure")
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
