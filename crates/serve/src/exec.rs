//! Batch execution: turns a [`Pending`] batch into response lines.
//!
//! Batchable queries (BFS/SSSP) run on the multi-source engine
//! ([`ugc_algorithms::multi_source`]) — one traversal, one answer lane per
//! query — inside a containment boundary with the per-request watchdog
//! budget. Transient failures retry with the supervisor's jittered
//! deterministic backoff; a failing multi-query batch **degrades to
//! singles** (so one poisoned query cannot take its batch-mates down),
//! and a failing single falls through to [`Compiler::run_with_policy`],
//! whose fallback chain (CPU backend, then sequential reference) is the
//! same supervisor every other entry point of the workspace uses.
//! Non-batchable queries (PR/CC/BC) take that supervised path directly,
//! exercising the shared thread pool.
//!
//! # The shed-before-execute ladder
//!
//! Every batch walks the same ladder before any cycles are spent:
//!
//! 1. **Drain** — past the drain deadline, queued batches are answered
//!    `err draining` rather than executed.
//! 2. **Deadline** — lanes whose `deadline_ms=` expired in the queue are
//!    shed with `err deadline` (checked again after a graph build, which
//!    can be the slowest step on the path).
//! 3. **Cache admission** — a build that cannot fit under the byte cap
//!    sheds the batch with `err overloaded`.
//! 4. **Circuit breaker** — an open `(algo, dataset, scale)` circuit
//!    fails the batch fast with `err circuit_open`.
//!
//! Execution outcomes feed the breaker back through [`Executor::respond`]:
//! `ok` (and non-circuit-worthy errors) record success, classified
//! `permanent`/`invariant` replies record failure. Shed replies record
//! nothing — the combo never ran.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ugc::{Algorithm, Compiler, Policy, Target};
use ugc_algorithms::multi_source::{self as ms, TraversalStats};
use ugc_algorithms::reference::INF;
use ugc_graph::{Dataset, Graph, Scale};
use ugc_resilience::breaker::{Admission, Breaker};
use ugc_resilience::{backoff_ms, budget, count_fallback, count_retry, fault, ErrorClass};
use ugc_runtime::{contain, ExecError};

use crate::cache::GraphCache;
use crate::gate::Pending;
use crate::protocol::{checksum_floats, checksum_ints, err_line, QuerySpec};
use crate::tuned::{TuneJob, TunedSchedules};
use crate::ServeCounters;

/// The serve-side breaker keying: one circuit per work combination.
pub type ServeBreaker = Breaker<(Algorithm, Dataset, Scale)>;

/// Shared execution context handed to every worker thread.
pub struct Executor {
    /// The build-once, byte-bounded graph store.
    pub cache: Arc<GraphCache>,
    /// Per-request supervisor policy (budgets, retries, fallback chain).
    pub policy: Policy,
    /// The server's counters.
    pub counters: Arc<ServeCounters>,
    /// Background-tuned schedules per (dataset, scale, algorithm).
    pub tuned: Arc<TunedSchedules>,
    /// Where first-touch tuning jobs go (the background tuner thread).
    pub tuner_tx: std::sync::mpsc::Sender<TuneJob>,
    /// Per-(algo, dataset, scale) circuit breakers.
    pub breaker: Arc<ServeBreaker>,
    /// Set by shutdown: once this instant passes, still-queued batches
    /// are shed `err draining` instead of executed.
    pub drain_deadline: Arc<Mutex<Option<Instant>>>,
}

impl Executor {
    /// Runs one batch to completion, answering every member with exactly
    /// one reply (served, classified error, or shed).
    pub fn run_batch(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        // 1. Drain deadline: the grace window for executing queued work
        // after shutdown has closed.
        if self.drain_expired() {
            for p in batch {
                self.respond(
                    p,
                    err_line("draining", "drain deadline passed before execution"),
                );
            }
            return;
        }
        // 2. Shed lanes that expired while queued.
        let batch = self.shed_expired(batch);
        if batch.is_empty() {
            return;
        }
        let spec0 = batch[0].spec;
        // 3. Cache admission (the build, when it is a first touch, is the
        // slowest step on this path — hence the re-shed right after).
        let pinned = match self.cache.get(spec0.dataset, spec0.scale) {
            Ok(p) => p,
            Err(of) => {
                for p in batch {
                    self.respond(p, err_line("overloaded", &of.to_string()));
                }
                return;
            }
        };
        let graph = pinned.graph().clone();
        let batch = self.shed_expired(batch);
        if batch.is_empty() {
            return;
        }
        // 4. Circuit breaker: every batch shares one (algo, dataset,
        // scale) key — coalescing requires it.
        let key = (spec0.algo, spec0.dataset, spec0.scale);
        match self.breaker.admit(key) {
            Admission::Reject => {
                for p in batch {
                    self.respond(
                        p,
                        err_line(
                            "circuit_open",
                            "recent failures opened this (algo, dataset, scale) circuit; retry later",
                        ),
                    );
                }
                return;
            }
            // A probe's outcome is recorded by respond() like any other
            // execution — every executed lane reports, so the probe
            // always resolves.
            Admission::Allow | Admission::Probe => {}
        }
        // First query of a (dataset, scale, algorithm) triple: enqueue a
        // background tuning job on the now-resident graph. A dead tuner
        // (send error) is fine — the triple just stays untuned. The job
        // holds a plain Arc, not the pin: an evicted graph tunes on.
        let tune_key = (spec0.dataset, spec0.scale, spec0.algo);
        if self.tuned.mark_pending(tune_key) {
            self.counters.tuned_pending.incr();
            let job = TuneJob {
                dataset: spec0.dataset,
                scale: spec0.scale,
                algo: spec0.algo,
                graph: graph.clone(),
            };
            if self.tuner_tx.send(job).is_err() {
                self.tuned.store(tune_key, None);
                self.counters.tuned_pending.dec();
            }
        }
        let n = graph.num_vertices();
        let mut valid = Vec::with_capacity(batch.len());
        for p in batch {
            if p.spec.algo.needs_start_vertex() && p.spec.source as usize >= n {
                let msg = format!(
                    "source {} out of range (graph has {n} vertices)",
                    p.spec.source
                );
                self.respond(p, err_line(ErrorClass::Permanent.label(), &msg));
            } else {
                valid.push(p);
            }
        }
        if valid.is_empty() {
            return;
        }
        if spec0.batchable() {
            self.counters.batch_size.record(valid.len() as u64);
            self.run_traversal(&graph, valid);
        } else {
            for p in valid {
                self.counters.batch_size.record(1);
                self.run_supervised(&graph, p);
            }
        }
        // `pinned` drops here: the entry stays resident through the whole
        // batch and only then becomes evictable.
    }

    fn drain_expired(&self) -> bool {
        self.drain_deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some_and(|d| Instant::now() >= d)
    }

    /// Answers expired lanes `err deadline`, returning the survivors.
    fn shed_expired(&self, batch: Vec<Pending>) -> Vec<Pending> {
        let now = Instant::now();
        let mut alive = Vec::with_capacity(batch.len());
        for p in batch {
            if p.expired(now) {
                let waited = now.duration_since(p.enqueued).as_millis();
                self.respond(
                    p,
                    err_line(
                        "deadline",
                        &format!("deadline expired after {waited}ms in queue"),
                    ),
                );
            } else {
                alive.push(p);
            }
        }
        alive
    }

    /// The wall budget for work with an absolute deadline: the policy's
    /// budget tightened by the remaining allowance.
    fn tightened_wall(&self, deadline: Option<Instant>) -> Option<Duration> {
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        match (self.policy.wall_budget, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Multi-source (or single fast-path) traversal for a BFS/SSSP batch.
    fn run_traversal(&self, graph: &Arc<Graph>, batch: Vec<Pending>) {
        if batch.len() > 1 {
            self.counters.batches.incr();
            self.counters.coalesced.add(batch.len() as u64 - 1);
        }
        let spec0 = batch[0].spec;
        let sources: Vec<u32> = batch.iter().map(|p| p.spec.source).collect();
        // The batch runs as one unit under the tightest lane deadline.
        let tightest = batch.iter().filter_map(|p| p.deadline).min();
        // Jitter salt: distinct per (head source, width), so two batches
        // retrying the same injected fault don't sleep in lockstep.
        let salt = u64::from(spec0.source) ^ ((sources.len() as u64) << 32);
        let started = Instant::now();
        let mut attempt = 0u32;
        let outcome = loop {
            let result = {
                let _watchdog =
                    budget::scope(self.tightened_wall(tightest), self.policy.cycle_budget);
                fault::begin_attempt(u64::from(attempt));
                let g = graph.clone();
                let srcs = sources.clone();
                contain(std::panic::AssertUnwindSafe(move || {
                    // The serving path's own fault site: `UGC_FAULTS=serve:batch_abort:...`
                    // aborts the attempt here, exactly like a simulator fault.
                    fault::roll_fatal(fault::Domain::Serve, fault::FaultKind::BatchAbort);
                    let out = traverse(&g, spec0.algo, &srcs);
                    if let Some(msg) = budget::wall_exceeded() {
                        return Err(ExecError::classified(ErrorClass::Budget, msg));
                    }
                    Ok(out)
                }))
            };
            match result {
                Ok(out) => break Ok(out),
                Err(e) if e.class == ErrorClass::Transient && attempt < self.policy.max_retries => {
                    attempt += 1;
                    count_retry();
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt, salt)));
                }
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok((lanes, stats)) => {
                let ms_elapsed = started.elapsed().as_secs_f64() * 1e3;
                self.counters.work.add(stats.edge_scans);
                let batch_len = batch.len();
                for (lane, p) in batch.into_iter().enumerate() {
                    let line =
                        traversal_ok_line(&p.spec, &lanes[lane], batch_len, &stats, ms_elapsed);
                    self.respond(p, line);
                }
            }
            Err(_) if batch.len() > 1 => {
                // Degrade: split the batch and give every member its own
                // (still supervised) run.
                count_fallback();
                self.counters.degraded.incr();
                for p in batch {
                    self.run_traversal(graph, vec![p]);
                }
            }
            Err(_) => {
                // Single query: hand it to the full supervisor chain (CPU
                // backend, then the sequential reference).
                count_fallback();
                let p = batch.into_iter().next().expect("single");
                self.run_supervised(graph, p);
            }
        }
    }

    /// One query through the workspace supervisor ([`Compiler::run_with_policy`]),
    /// under the background-tuned schedule when one has resolved.
    fn run_supervised(&self, graph: &Arc<Graph>, p: Pending) {
        let spec = p.spec;
        let mut c = Compiler::new(spec.algo);
        if let Some(sched) = self.tuned.lookup((spec.dataset, spec.scale, spec.algo)) {
            c.schedule(spec.algo.schedule_path(), sched);
            self.counters.tuned_hits.incr();
        }
        if spec.algo.needs_start_vertex() {
            c.start_vertex(spec.source);
        }
        if let Some(mi) = spec.max_iters {
            c.bind("max_iters", ugc_runtime::value::Value::Int(mi));
        }
        // The request deadline tightens the supervisor's wall budget.
        let mut policy = self.policy.clone();
        policy.wall_budget = self.tightened_wall(p.deadline);
        let line = match c.run_with_policy(Target::Cpu, graph, &policy) {
            Ok(r) => {
                let checksum = match spec.algo {
                    Algorithm::Bfs => checksum_ints(r.property_ints("parent")),
                    Algorithm::Sssp => checksum_ints(r.property_ints("dist")),
                    Algorithm::Cc => checksum_ints(r.property_ints("IDs")),
                    Algorithm::PageRank => checksum_floats(r.property_floats("old_rank")),
                    Algorithm::Bc => checksum_floats(r.property_floats("centrality")),
                    Algorithm::Tc => checksum_ints(r.property_ints("tri")),
                    Algorithm::KCore => checksum_ints(r.property_ints("core")),
                    Algorithm::Lp => checksum_ints(r.property_ints("labels")),
                };
                let mut line = format!(
                    "ok algo={} dataset={} scale={} source={} n={} checksum={checksum:#018x} \
                     batch=1 attempts={} ms={:.3}",
                    spec.algo.name(),
                    spec.dataset.abbrev(),
                    spec.scale.name(),
                    spec.source,
                    graph.num_vertices(),
                    r.attempts,
                    r.time_ms,
                );
                if let Some(d) = &r.degraded_to {
                    line.push_str(&format!(" degraded={d}"));
                }
                // The k= argument reports the membership count at level k
                // on top of the full coreness checksum.
                if let (Algorithm::KCore, Some(k)) = (spec.algo, spec.k) {
                    let size = r.property_ints("core").iter().filter(|&&c| c >= k).count();
                    line.push_str(&format!(" kcore_size={size}"));
                }
                line
            }
            Err(e) => err_line(e.class.label(), &e.message),
        };
        self.respond(p, line);
    }

    /// Sends the response, settling the accounting counters, the breaker,
    /// and the end-to-end latency histogram. Reply-prefix classification
    /// keeps the accounting invariant exact:
    /// `ok + errored + shed_* == admitted` (see `tests/telemetry_invariants.rs`).
    fn respond(&self, p: Pending, line: String) {
        let key = (p.spec.algo, p.spec.dataset, p.spec.scale);
        if line.starts_with("ok") {
            self.counters.ok.incr();
            self.breaker.record_success(key);
        } else {
            self.counters.errors.incr();
            if line.starts_with("err deadline") {
                self.counters.shed_deadline.incr();
            } else if line.starts_with("err overloaded") {
                self.counters.shed_overload.incr();
            } else if line.starts_with("err draining") {
                self.counters.shed_drain.incr();
            } else if line.starts_with("err circuit_open") {
                // Failed fast without executing: counts as an error
                // outcome but records no breaker outcome.
                self.counters.errored.incr();
            } else {
                self.counters.errored.incr();
                // Only classified permanent/invariant failures are
                // circuit-worthy; transient/budget outcomes resolve the
                // (possible) probe as a success so the circuit never
                // wedges half-open.
                if line.starts_with("err permanent") || line.starts_with("err invariant") {
                    self.breaker.record_failure(key);
                } else {
                    self.breaker.record_success(key);
                }
            }
        }
        self.counters
            .latency
            .record(p.enqueued.elapsed().as_micros() as u64);
        // A handler that gave up (dropped connection) is not an error.
        let _ = p.reply.send(line);
    }
}

/// The traversal itself: single-query fast path or multi-source lanes.
fn traverse(g: &Graph, algo: Algorithm, sources: &[u32]) -> (Vec<Vec<i64>>, TraversalStats) {
    match (algo, sources) {
        (Algorithm::Bfs, [s]) => {
            let (levels, stats) = ms::bfs_levels_counted(g, *s);
            (vec![levels], stats)
        }
        (Algorithm::Bfs, _) => ms::ms_bfs_levels(g, sources),
        (Algorithm::Sssp, [s]) => {
            let (dist, stats) = ms::sssp_distances_counted(g, *s);
            (vec![dist], stats)
        }
        (Algorithm::Sssp, _) => ms::ms_sssp_distances(g, sources),
        (other, _) => unreachable!("{} is not batchable", other.name()),
    }
}

fn traversal_ok_line(
    spec: &QuerySpec,
    lane: &[i64],
    batch: usize,
    stats: &TraversalStats,
    ms_elapsed: f64,
) -> String {
    let reached = match spec.algo {
        Algorithm::Bfs => lane.iter().filter(|&&l| l >= 0).count(),
        _ => lane.iter().filter(|&&d| d < INF).count(),
    };
    format!(
        "ok algo={} dataset={} scale={} source={} n={} reached={reached} \
         checksum={:#018x} batch={batch} work={} rounds={} ms={ms_elapsed:.3}",
        spec.algo.name(),
        spec.dataset.abbrev(),
        spec.scale.name(),
        spec.source,
        lane.len(),
        checksum_ints(lane),
        stats.edge_scans,
        stats.rounds,
    )
}
