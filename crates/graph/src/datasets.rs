//! Scaled-down, deterministic stand-ins for the ten input graphs of the
//! paper's Table VIII.
//!
//! The real datasets (SNAP, DIMACS, Network Repository; up to 530M edges)
//! are not redistributable nor tractable here, so each is replaced by a
//! synthetic graph with the same *structural class* — power-law degree
//! distribution for the social/web graphs, bounded degree and high diameter
//! for the road networks — because those are the properties the paper's
//! scheduling decisions key on. All graphs are weighted so that SSSP can run
//! on any of them; unweighted algorithms ignore the weights.

use crate::generators;
use crate::stats::DegreeProfile;
use crate::Graph;

/// Size class for dataset stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// A few hundred vertices — for unit/integration tests.
    Tiny,
    /// Tens of thousands of vertices — the benchmark default.
    #[default]
    Small,
    /// Several times larger — for scaling studies.
    Medium,
}

impl Scale {
    /// Lower-case name, as spelled on the CLI and in cache keys.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        }
    }
}

/// The ten input graphs of Table VIII.
///
/// # Example
///
/// ```
/// use ugc_graph::{Dataset, Scale};
///
/// let g = Dataset::RoadNetCa.generate(Scale::Tiny);
/// assert!(g.num_vertices() > 100);
/// assert!(g.is_weighted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// RN — RoadNetCA (road, 1.97M/5.5M in the paper).
    RoadNetCa,
    /// RC — RoadCentral (road, 14.1M/33.9M).
    RoadCentral,
    /// RU — RoadUSA (road, 23.9M/57.7M).
    RoadUsa,
    /// PK — Pokec (social, 1.6M/30.6M).
    Pokec,
    /// HW — Hollywood (social, 1.1M/112.8M — dense).
    Hollywood,
    /// LJ — LiveJournal (social, 4.8M/85.7M).
    LiveJournal,
    /// OK — Orkut (social, 3.0M/212.7M — dense).
    Orkut,
    /// IC — Indochina (web, 7.4M/302.0M).
    Indochina,
    /// TW — Twitter (social, 21.3M/530.1M).
    Twitter,
    /// SW — SinaWeibo (social, 58.7M/522.6M).
    SinaWeibo,
}

impl Dataset {
    /// All ten datasets in the paper's row order (roads first).
    pub const ALL: [Dataset; 10] = [
        Dataset::RoadNetCa,
        Dataset::RoadCentral,
        Dataset::RoadUsa,
        Dataset::Pokec,
        Dataset::Hollywood,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Indochina,
        Dataset::Twitter,
        Dataset::SinaWeibo,
    ];

    /// The six datasets evaluated on HammerBlade in the paper (simulation
    /// costs kept the other four out).
    pub const HAMMERBLADE_SET: [Dataset; 6] = [
        Dataset::RoadNetCa,
        Dataset::RoadCentral,
        Dataset::Pokec,
        Dataset::Hollywood,
        Dataset::LiveJournal,
        Dataset::Orkut,
    ];

    /// Two-letter abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::RoadNetCa => "RN",
            Dataset::RoadCentral => "RC",
            Dataset::RoadUsa => "RU",
            Dataset::Pokec => "PK",
            Dataset::Hollywood => "HW",
            Dataset::LiveJournal => "LJ",
            Dataset::Orkut => "OK",
            Dataset::Indochina => "IC",
            Dataset::Twitter => "TW",
            Dataset::SinaWeibo => "SW",
        }
    }

    /// Structural class of the original dataset.
    pub fn profile(self) -> DegreeProfile {
        match self {
            Dataset::RoadNetCa | Dataset::RoadCentral | Dataset::RoadUsa => DegreeProfile::Bounded,
            _ => DegreeProfile::PowerLaw,
        }
    }

    /// `(vertices, edges)` of the original dataset per Table VIII.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            Dataset::RoadNetCa => (1_971_281, 5_533_214),
            Dataset::RoadCentral => (14_081_816, 33_866_826),
            Dataset::RoadUsa => (23_947_347, 57_708_624),
            Dataset::Pokec => (1_632_803, 30_622_564),
            Dataset::Hollywood => (1_139_905, 112_751_422),
            Dataset::LiveJournal => (4_847_571, 85_702_474),
            Dataset::Orkut => (2_997_166, 212_698_418),
            Dataset::Indochina => (7_414_865, 301_969_638),
            Dataset::Twitter => (21_297_772, 530_051_090),
            Dataset::SinaWeibo => (58_655_849, 522_642_066),
        }
    }

    /// Deterministic seed per dataset so stand-ins differ from each other.
    fn seed(self) -> u64 {
        match self {
            Dataset::RoadNetCa => 0xA0,
            Dataset::RoadCentral => 0xA1,
            Dataset::RoadUsa => 0xA2,
            Dataset::Pokec => 0xB0,
            Dataset::Hollywood => 0xB1,
            Dataset::LiveJournal => 0xB2,
            Dataset::Orkut => 0xB3,
            Dataset::Indochina => 0xB4,
            Dataset::Twitter => 0xB5,
            Dataset::SinaWeibo => 0xB6,
        }
    }

    /// Generates the stand-in graph at the requested scale. Deterministic.
    pub fn generate(self, scale: Scale) -> Graph {
        let seed = self.seed();
        match self {
            Dataset::RoadNetCa => road(scale, 100, seed),
            Dataset::RoadCentral => road(scale, 190, seed),
            Dataset::RoadUsa => road(scale, 240, seed),
            Dataset::Pokec => social(scale, 13, 9, seed),
            Dataset::Hollywood => social(scale, 12, 24, seed),
            Dataset::LiveJournal => social(scale, 14, 9, seed),
            Dataset::Orkut => social(scale, 13, 32, seed),
            Dataset::Indochina => social(scale, 14, 16, seed),
            Dataset::Twitter => social(scale, 15, 12, seed),
            Dataset::SinaWeibo => social(scale, 15, 9, seed),
        }
    }
}

fn road(scale: Scale, side: usize, seed: u64) -> Graph {
    let side = match scale {
        Scale::Tiny => side / 4,
        Scale::Small => side,
        Scale::Medium => side * 2,
    };
    generators::road_grid(side, side, 0.05, seed, true)
}

fn social(scale: Scale, log_n: u32, edge_factor: usize, seed: u64) -> Graph {
    let (log_n, edge_factor) = match scale {
        Scale::Tiny => (8, edge_factor.min(8)),
        Scale::Small => (log_n, edge_factor),
        Scale::Medium => (log_n + 1, edge_factor),
    };
    generators::rmat(log_n, edge_factor, seed, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn all_tiny_datasets_generate() {
        for d in Dataset::ALL {
            let g = d.generate(Scale::Tiny);
            assert!(g.num_vertices() > 0, "{d:?}");
            assert!(g.num_edges() > 0, "{d:?}");
            assert!(g.is_weighted(), "{d:?}");
        }
    }

    #[test]
    fn profiles_match_generated_structure() {
        for d in [Dataset::RoadNetCa, Dataset::Twitter] {
            let g = d.generate(Scale::Small);
            assert_eq!(stats::classify(&g), d.profile(), "{d:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Pokec.generate(Scale::Tiny);
        let b = Dataset::Pokec.generate(Scale::Tiny);
        assert_eq!(a.out_csr().targets(), b.out_csr().targets());
    }

    #[test]
    fn datasets_differ_from_each_other() {
        let a = Dataset::Twitter.generate(Scale::Tiny);
        let b = Dataset::SinaWeibo.generate(Scale::Tiny);
        assert_ne!(a.out_csr().targets(), b.out_csr().targets());
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in Dataset::ALL {
            assert!(seen.insert(d.abbrev()));
        }
    }

    #[test]
    fn paper_sizes_match_table_viii_totals() {
        // Spot-check a couple of rows.
        assert_eq!(Dataset::Twitter.paper_size().1, 530_051_090);
        assert_eq!(Dataset::RoadNetCa.paper_size().0, 1_971_281);
    }
}
