//! Road-network navigation: ∆-stepping SSSP, sweeping ∆ on the CPU and
//! comparing Swarm's vertex-set→tasks conversion against barriered
//! execution — the two road-graph stories of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_cpu::CpuSchedule;
use ugc_backend_swarm::{Frontiers, SwarmSchedule, TaskGranularity};
use ugc_graph::{Dataset, Scale};
use ugc_schedule::ScheduleRef;

fn main() {
    let graph = Dataset::RoadNetCa.generate(Scale::Tiny);
    println!(
        "RoadNetCA stand-in: {} vertices, {} edges (weighted)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- CPU: sweep the ∆ bucket width ------------------------------
    println!("\nCPU ∆-stepping sweep (wall clock):");
    for delta in [1i64, 4, 16, 64, 256] {
        let r = Compiler::new(Algorithm::Sssp)
            .start_vertex(0)
            .schedule(
                Algorithm::Sssp.schedule_path(),
                ScheduleRef::simple(CpuSchedule::new().with_delta(delta)),
            )
            .run(Target::Cpu, &graph)
            .expect("sssp runs");
        let reach = r
            .property_ints("dist")
            .iter()
            .filter(|&&d| d != i32::MAX as i64)
            .count();
        println!(
            "    delta={delta:<4} {:>8.3} ms   ({reach} reachable)",
            r.time_ms
        );
    }

    // --- Swarm: barriers vs speculation ------------------------------
    println!("\nSwarm (simulated cycles):");
    let buffered = Compiler::new(Algorithm::Sssp)
        .start_vertex(0)
        .schedule(
            Algorithm::Sssp.schedule_path(),
            ScheduleRef::simple(SwarmSchedule::new()),
        )
        .run(Target::Swarm, &graph)
        .expect("sssp runs");
    let tasks = Compiler::new(Algorithm::Sssp)
        .start_vertex(0)
        .schedule(
            Algorithm::Sssp.schedule_path(),
            ScheduleRef::simple(
                SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained)
                    .with_delta(8),
            ),
        )
        .run(Target::Swarm, &graph)
        .expect("sssp runs");
    println!("    buffered frontiers : {:>12} cycles", buffered.cycles);
    println!("    vertexset-to-tasks : {:>12} cycles", tasks.cycles);
    println!(
        "    speculation speedup: {:.2}x",
        buffered.cycles as f64 / tasks.cycles as f64
    );

    // Sanity: both agree on the shortest path to the far corner.
    let far = graph.num_vertices() as u32 - 1;
    assert_eq!(
        buffered.property_ints("dist")[far as usize],
        tasks.property_ints("dist")[far as usize]
    );
    println!(
        "\nshortest distance to far corner v{far}: {}",
        tasks.property_ints("dist")[far as usize]
    );
}
