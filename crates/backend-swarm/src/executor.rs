//! The Swarm operator executor: functional execution + task-graph
//! recording, then timing simulation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ugc_graph::Csr;
use ugc_graphir::ir::{EdgeSetIteratorData, Expr, ExprKind, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::{Direction, Intrinsic, VertexSetRepr};
use ugc_runtime::eval::{BufferedOutput, EdgeCtx, Evaluator, MemoryModel, NullOutput};
use ugc_runtime::host::HostValue;
use ugc_runtime::interp::{ExecError, OperatorExecutor, ProgramState};
use ugc_runtime::properties::PropId;
use ugc_runtime::value::Value;
use ugc_runtime::vertexset::VertexSet;
use ugc_runtime::UdfId;
use ugc_schedule::schedule_of;
use ugc_sim_swarm::{SwarmSim, TaskSpec};

use crate::schedule::{Frontiers, SwarmSchedule, TaskGranularity};

/// Cache line id of a shared round counter (privatization ablation).
const SHARED_ROUND_LINE: u64 = u64::MAX - 1;

/// `(reads, writes, duration, enqueued, first dst)` of one fine-grained
/// subtask recorded during functional execution.
type SubtaskRecord = (Vec<u64>, Vec<u64>, u64, Vec<u32>, u32);

/// Cycles charged per memory access inside a task.
const MEM_CYCLES: u64 = 4;
/// Base cycles per task (prologue/epilogue).
const TASK_BASE_CYCLES: u64 = 10;
/// Extra cycles per buffered-frontier enqueue (shared tail update).
const BUFFERED_ENQUEUE_CYCLES: u64 = 12;
/// Edges per fine-grained subtask in converted loops (one, as in the
/// paper's Fig. 5 — hint precision matters for claim serialization).
const FINE_CHUNK: usize = 1;
/// Edges per fine-grained subtask in generic (topology-driven) operators —
/// a small chunk keeps most of per-edge splitting's abort-cost benefit at
/// a quarter of its task count (simulation cost).
const GENERIC_FINE_CHUNK: usize = 2;

/// Records a task's memory footprint at cache-line granularity.
#[derive(Default)]
struct TaskRecorder {
    reads: Vec<u64>,
    writes: Vec<u64>,
    accesses: u64,
    computes: u64,
}

/// Conflict-detection granule. Real Swarm tracks cache lines; with dense
/// vertex ids that produces pathological false sharing that the authors'
/// sparse layouts avoid, so this reproduction tracks word-granularity
/// granules (true dependences only) — see DESIGN.md.
fn line(prop: PropId, idx: u32) -> u64 {
    (((prop.0 as u64) + 1) << 28) + (idx as u64)
}

impl MemoryModel for TaskRecorder {
    fn load(&mut self, prop: PropId, idx: u32) {
        self.reads.push(line(prop, idx));
        self.accesses += 1;
    }
    fn store(&mut self, prop: PropId, idx: u32) {
        self.writes.push(line(prop, idx));
        self.accesses += 1;
    }
    fn atomic(&mut self, prop: PropId, idx: u32) {
        self.writes.push(line(prop, idx));
        self.accesses += 1;
    }
    fn compute(&mut self, n: u32) {
        self.computes += n as u64;
    }
}

impl TaskRecorder {
    /// Raw (unsorted, possibly duplicated) access lists plus the modeled
    /// duration. Sorting/dedup is deferred to [`finalize_tasks`], which
    /// normalizes every task in parallel right before simulation.
    fn into_parts(self) -> (Vec<u64>, Vec<u64>, u64) {
        let duration = TASK_BASE_CYCLES + self.computes + self.accesses * MEM_CYCLES;
        (self.reads, self.writes, duration)
    }
}

/// Normalizes every task's read/write sets (sorted, deduplicated) — the
/// form [`SwarmSim`] expects. Task construction is inherently serial
/// (data-dependent traversal), but this cleanup pass is embarrassingly
/// parallel, so it runs on the persistent pool.
fn finalize_tasks(tasks: &mut [TaskSpec]) {
    ugc_runtime::pool::parallel_for_each_mut(
        ugc_runtime::pool::default_threads(),
        tasks,
        256,
        |_tid, _start, window| {
            for t in window {
                t.reads.sort_unstable();
                t.reads.dedup();
                t.writes.sort_unstable();
                t.writes.dedup();
            }
        },
    );
}

/// Executes GraphIR operators as Swarm task graphs.
#[derive(Debug)]
pub struct SwarmExecutor {
    /// The timing simulator.
    pub sim: SwarmSim,
}

impl SwarmExecutor {
    /// Creates an executor over a simulator.
    pub fn new(sim: SwarmSim) -> Self {
        SwarmExecutor { sim }
    }
}

struct OpPlan {
    udf: UdfId,
    takes_weight: bool,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
    requires_output: bool,
    dedup: bool,
    sched: SwarmSchedule,
    /// Property whose `[dst]` element is the spatial-hint target
    /// (the tracked property or the queue's priority property).
    hint_prop: Option<PropId>,
}

fn plan(
    state: &ProgramState<'_>,
    stmt: &Stmt,
    data: &EdgeSetIteratorData,
) -> Result<OpPlan, ExecError> {
    let udf = state
        .udfs
        .id_of(&data.apply)
        .ok_or_else(|| ExecError::new(format!("unknown UDF `{}`", data.apply)))?;
    let lookup = |name: &Option<String>| -> Result<Option<UdfId>, ExecError> {
        match name {
            None => Ok(None),
            Some(n) => state
                .udfs
                .id_of(n)
                .map(Some)
                .ok_or_else(|| ExecError::new(format!("unknown filter `{n}`"))),
        }
    };
    let sched = schedule_of(stmt)
        .and_then(|r| r.as_simple().cloned())
        .and_then(|s| s.as_any().downcast_ref::<SwarmSchedule>().cloned())
        .unwrap_or_default();
    let hint_prop = data
        .tracked_prop
        .as_ref()
        .and_then(|p| state.binding.props.get(p).copied())
        .or_else(|| {
            stmt.meta
                .get_str(keys::QUEUE_UPDATED)
                .and_then(|q| state.binding.queues.get(q).copied())
                .map(|qid| state.udfs.queue_props[qid])
        });
    Ok(OpPlan {
        udf,
        takes_weight: state.udfs.get(udf).num_params == 3,
        src_filter: lookup(&data.src_filter)?,
        dst_filter: lookup(&data.dst_filter)?,
        requires_output: data.output.is_some(),
        dedup: stmt.meta.flag(keys::APPLY_DEDUPLICATION),
        sched,
        hint_prop,
    })
}

fn evaluator<'a>(state: &'a ProgramState<'_>) -> Evaluator<'a> {
    Evaluator {
        udfs: &state.udfs,
        props: &state.props,
        globals: &state.globals,
        graph: state.graph,
        really_atomic: false,
    }
}

fn passes_filter(ev: &Evaluator<'_>, f: Option<UdfId>, v: u32, rec: &mut TaskRecorder) -> bool {
    match f {
        None => true,
        Some(id) => ev
            .call(
                id,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut NullOutput,
                rec,
            )
            .is_none_or(|r| r.as_bool()),
    }
}

/// Runs the apply UDF for the edges `edge_range` of `src`, recording into
/// `rec` and collecting enqueues/priority updates into `out`.
#[allow(clippy::too_many_arguments)]
fn run_edges(
    ev: &Evaluator<'_>,
    csr: &Csr,
    src: u32,
    edge_range: std::ops::Range<usize>,
    plan: &OpPlan,
    rec: &mut TaskRecorder,
    out: &mut BufferedOutput,
) {
    let base = csr.edge_offset(src);
    let weights = csr.neighbor_weights(src);
    for k in edge_range {
        let dst = csr.targets()[k];
        rec.accesses += 1; // edge fetch
        if !passes_filter(ev, plan.dst_filter, dst, rec) {
            continue;
        }
        let w = weights.map_or(1, |ws| ws[k - base]) as i64;
        let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
        if plan.takes_weight {
            args.push(Value::Int(w));
        }
        ev.call(plan.udf, &args, EdgeCtx { weight: w }, out, rec);
    }
}

impl SwarmExecutor {
    /// Builds one operator's task batch (Buffered semantics) and simulates
    /// it. Barrier between operators is implicit.
    fn operator_batch(
        &mut self,
        state: &ProgramState<'_>,
        csr: &Csr,
        members: &[u32],
        plan: &OpPlan,
    ) -> BufferedOutput {
        let ev = evaluator(state);
        let mut members = members.to_vec();
        if plan.sched.shuffle_edges() {
            // Deterministic shuffle (splitmix-style indexing).
            let n = members.len();
            for i in (1..n).rev() {
                let j =
                    (i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) as usize % (i + 1);
                members.swap(i, j);
            }
        }
        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        let mut merged = BufferedOutput::default();
        let fine = plan.sched.task_granularity() == TaskGranularity::FineGrained;
        for &v in &members {
            let mut rec = TaskRecorder::default();
            rec.accesses += 2; // frontier slot + offsets
            if !passes_filter(&ev, plan.src_filter, v, &mut rec) {
                let (reads, writes, duration) = rec.into_parts();
                roots.push(tasks.len());
                tasks.push(TaskSpec {
                    ts: 0,
                    duration,
                    reads,
                    writes,
                    hint: None,
                    children: vec![],
                });
                continue;
            }
            let deg = csr.degree(v);
            let lo = csr.edge_offset(v);
            if !fine {
                let mut out = BufferedOutput::default();
                run_edges(&ev, csr, v, lo..lo + deg, plan, &mut rec, &mut out);
                let enq = out.enqueued.len() as u64;
                let (reads, writes, mut duration) = rec.into_parts();
                duration += enq * BUFFERED_ENQUEUE_CYCLES;
                roots.push(tasks.len());
                tasks.push(TaskSpec {
                    ts: 0,
                    duration,
                    reads,
                    writes,
                    hint: None,
                    children: vec![],
                });
                merged.enqueued.extend(out.enqueued);
                merged.priority_updates.extend(out.priority_updates);
            } else {
                // Parent scan task + per-chunk hinted subtasks.
                let parent_id = tasks.len();
                roots.push(parent_id);
                tasks.push(TaskSpec {
                    ts: 0,
                    duration: TASK_BASE_CYCLES + 2 * MEM_CYCLES + deg as u64 / 2,
                    reads: rec.reads.clone(),
                    writes: vec![],
                    hint: None,
                    children: vec![],
                });
                let mut s = 0usize;
                while s < deg {
                    let e = (s + GENERIC_FINE_CHUNK).min(deg);
                    let mut sub_rec = TaskRecorder::default();
                    let mut out = BufferedOutput::default();
                    run_edges(&ev, csr, v, lo + s..lo + e, plan, &mut sub_rec, &mut out);
                    let enq = out.enqueued.len() as u64;
                    let (reads, writes, mut duration) = sub_rec.into_parts();
                    duration += enq * BUFFERED_ENQUEUE_CYCLES;
                    let hint = if plan.sched.spatial_hints() {
                        let dst = csr.targets()[lo + s];
                        plan.hint_prop
                            .map(|p| line(p, dst))
                            .or_else(|| writes.iter().min().copied())
                    } else {
                        None
                    };
                    let sub_id = tasks.len();
                    tasks.push(TaskSpec {
                        ts: 0,
                        duration,
                        reads,
                        writes,
                        hint,
                        children: vec![],
                    });
                    tasks[parent_id].children.push(sub_id);
                    merged.enqueued.extend(out.enqueued);
                    merged.priority_updates.extend(out.priority_updates);
                    s = e;
                }
            }
        }
        finalize_tasks(&mut tasks);
        self.sim.simulate(&tasks, &roots, false);
        merged
    }

    /// The vertex-set→tasks conversion for data-driven loops (BFS/CC
    /// shape): rounds become timestamps; the whole loop is one simulation.
    fn convert_data_driven_loop(
        &mut self,
        state: &mut ProgramState<'_>,
        frontier_var: &str,
        iter_stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<(), ExecError> {
        let plan = plan(state, iter_stmt, data)?;
        let csr: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let initial = state
            .env
            .set(frontier_var)
            .cloned()
            .ok_or_else(|| ExecError::new(format!("frontier `{frontier_var}` unbound")))?;
        let ev = evaluator(state);
        let fine = plan.sched.task_granularity() == TaskGranularity::FineGrained;
        let privatize = plan.sched.privatize();

        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        // (vertex, round, pre-created task id)
        let mut queue: VecDeque<(u32, u64, usize)> = VecDeque::new();
        let mut round_first_task: Vec<usize> = Vec::new();
        for v in initial.iter() {
            let id = tasks.len();
            tasks.push(TaskSpec {
                ts: 0,
                ..Default::default()
            });
            roots.push(id);
            queue.push_back((v, 0, id));
        }
        while let Some((v, round, id)) = queue.pop_front() {
            let mut rec = TaskRecorder::default();
            rec.accesses += 2;
            let spawned: Vec<u32>;
            // (reads, writes, duration, enqueued, first dst)
            let mut children_subtasks: Vec<SubtaskRecord> = Vec::new();
            if passes_filter(&ev, plan.src_filter, v, &mut rec) {
                let deg = csr.degree(v);
                let lo = csr.edge_offset(v);
                if !fine {
                    let mut out = BufferedOutput::default();
                    run_edges(&ev, csr, v, lo..lo + deg, &plan, &mut rec, &mut out);
                    spawned = out.enqueued;
                } else {
                    let mut all = Vec::new();
                    let mut s = 0usize;
                    while s < deg {
                        let e = (s + FINE_CHUNK).min(deg);
                        let mut sub_rec = TaskRecorder::default();
                        let mut out = BufferedOutput::default();
                        run_edges(&ev, csr, v, lo + s..lo + e, &plan, &mut sub_rec, &mut out);
                        let (r, w, d) = sub_rec.into_parts();
                        all.extend(out.enqueued.iter().copied());
                        let first_dst = csr.targets()[lo + s];
                        children_subtasks.push((r, w, d, out.enqueued, first_dst));
                        s = e;
                    }
                    spawned = all;
                }
            } else {
                spawned = Vec::new();
            }
            // Fill this task's spec.
            let (mut reads, writes, duration) = rec.into_parts();
            if !privatize {
                reads.push(SHARED_ROUND_LINE);
            }
            tasks[id].ts = round;
            tasks[id].duration = if fine {
                TASK_BASE_CYCLES + 2 * MEM_CYCLES
            } else {
                duration
            };
            tasks[id].reads = reads;
            tasks[id].writes = writes;
            if !privatize && round_first_task.len() <= round as usize {
                round_first_task.push(id);
                tasks[id].writes.push(SHARED_ROUND_LINE);
            }
            // Children: next-round vertex tasks (pre-created so ids exist).
            if !fine {
                let mut child_ids = Vec::new();
                for &dst in &spawned {
                    let cid = tasks.len();
                    tasks.push(TaskSpec {
                        ts: round + 1,
                        ..Default::default()
                    });
                    child_ids.push(cid);
                    queue.push_back((dst, round + 1, cid));
                }
                tasks[id].children = child_ids;
            } else {
                for (r, mut w, d, enq, first_dst) in children_subtasks {
                    let hint = if plan.sched.spatial_hints() {
                        plan.hint_prop
                            .map(|p| line(p, first_dst))
                            .or_else(|| w.iter().min().copied())
                    } else {
                        None
                    };
                    if !privatize {
                        w.push(SHARED_ROUND_LINE);
                    }
                    let sub_id = tasks.len();
                    tasks.push(TaskSpec {
                        ts: round,
                        duration: d,
                        reads: r,
                        writes: w,
                        hint,
                        children: vec![],
                    });
                    tasks[id].children.push(sub_id);
                    for dst in enq {
                        let cid = tasks.len();
                        tasks.push(TaskSpec {
                            ts: round + 1,
                            ..Default::default()
                        });
                        tasks[sub_id].children.push(cid);
                        queue.push_back((dst, round + 1, cid));
                    }
                }
            }
        }
        finalize_tasks(&mut tasks);
        self.sim.simulate(&tasks, &roots, false);
        // The loop has fully run: the frontier drains to empty.
        let empty = VertexSet::empty_sparse(state.graph.num_vertices());
        let _ = state
            .env
            .assign(frontier_var, HostValue::Set(empty.clone()));
        if let Some(o) = &data.output {
            if state.env.assign(o, HostValue::Set(empty.clone())).is_err() {
                state.env.declare(o.clone(), HostValue::Set(empty));
            }
        }
        Ok(())
    }

    /// The vertex-set→tasks conversion for priority-driven loops
    /// (∆-stepping SSSP): priorities become timestamps.
    fn convert_ordered_loop(
        &mut self,
        state: &mut ProgramState<'_>,
        qid: usize,
        iter_stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<(), ExecError> {
        let plan = plan(state, iter_stmt, data)?;
        let delta = ugc_schedule::SimpleSchedule::delta(&plan.sched).max(1) as u64;
        let csr: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let prio_prop = state.udfs.queue_props[qid];

        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        // Functional Dijkstra over pre-created task ids.
        let mut heap: BinaryHeap<Reverse<(i64, usize, u32)>> = BinaryHeap::new();
        let initial = state.pop_ready(qid);
        for v in initial.iter() {
            let prio = state.props.read(prio_prop, v).as_int();
            let id = tasks.len();
            tasks.push(TaskSpec {
                ts: prio as u64 / delta,
                ..Default::default()
            });
            roots.push(id);
            heap.push(Reverse((prio, id, v)));
        }
        let fine = plan.sched.task_granularity() == TaskGranularity::FineGrained;
        while let Some(Reverse((prio, id, v))) = heap.pop() {
            let ev = evaluator(state);
            let mut rec = TaskRecorder::default();
            // Every task reads its vertex's current priority.
            rec.load(prio_prop, v);
            let current = state.props.read(prio_prop, v).as_int();
            let fresh = current == prio;
            let hint = if plan.sched.spatial_hints() {
                Some(line(prio_prop, v))
            } else {
                None
            };
            if !fine {
                let mut out = BufferedOutput::default();
                if fresh {
                    let deg = csr.degree(v);
                    let lo = csr.edge_offset(v);
                    if passes_filter(&ev, plan.src_filter, v, &mut rec) {
                        run_edges(&ev, csr, v, lo..lo + deg, &plan, &mut rec, &mut out);
                    }
                }
                let (reads, writes, duration) = rec.into_parts();
                tasks[id].duration = duration;
                tasks[id].reads = reads;
                tasks[id].writes = writes;
                tasks[id].hint = hint;
                for (q, dst, ndist) in out.priority_updates {
                    debug_assert_eq!(q, qid);
                    let cid = tasks.len();
                    tasks.push(TaskSpec {
                        ts: ndist as u64 / delta,
                        ..Default::default()
                    });
                    tasks[id].children.push(cid);
                    heap.push(Reverse((ndist, cid, dst)));
                }
            } else {
                // Fine-grained splitting (Fig. 5): the vertex task only
                // scans its offsets; each edge relaxes in its own subtask
                // hinted by the destination's priority element.
                let src_ok = fresh && passes_filter(&ev, plan.src_filter, v, &mut rec);
                let (reads, writes, _) = rec.into_parts();
                tasks[id].duration = TASK_BASE_CYCLES
                    + MEM_CYCLES
                    + if fresh { csr.degree(v) as u64 / 2 } else { 0 };
                tasks[id].reads = reads;
                tasks[id].writes = writes;
                tasks[id].hint = hint;
                if src_ok {
                    let deg = csr.degree(v);
                    let lo = csr.edge_offset(v);
                    for k in lo..lo + deg {
                        let dst = csr.targets()[k];
                        let mut sub_rec = TaskRecorder::default();
                        let mut out = BufferedOutput::default();
                        run_edges(&ev, csr, v, k..k + 1, &plan, &mut sub_rec, &mut out);
                        let (r, w, d) = sub_rec.into_parts();
                        let sub_id = tasks.len();
                        tasks.push(TaskSpec {
                            ts: prio.max(0) as u64 / delta,
                            duration: d,
                            reads: r,
                            writes: w,
                            hint: if plan.sched.spatial_hints() {
                                Some(line(prio_prop, dst))
                            } else {
                                None
                            },
                            children: vec![],
                        });
                        tasks[id].children.push(sub_id);
                        for (q, dst2, ndist) in out.priority_updates {
                            debug_assert_eq!(q, qid);
                            let cid = tasks.len();
                            tasks.push(TaskSpec {
                                ts: ndist as u64 / delta,
                                ..Default::default()
                            });
                            tasks[sub_id].children.push(cid);
                            heap.push(Reverse((ndist, cid, dst2)));
                        }
                    }
                }
            }
        }
        let barrier = plan.sched.frontiers() == Frontiers::Buffered;
        finalize_tasks(&mut tasks);
        self.sim.simulate(&tasks, &roots, barrier);
        state.queues[qid].clear();
        Ok(())
    }
}

/// Recognizes `while (VertexSetSize(F) != 0) { F-driven iterator; … }`.
fn data_driven_pattern<'a>(
    cond: &'a Expr,
    body: &'a [Stmt],
) -> Option<(&'a str, &'a Stmt, &'a EdgeSetIteratorData)> {
    // Condition must test a frontier's size.
    let frontier = match &cond.kind {
        ExprKind::Binary { lhs, .. } => match &lhs.kind {
            ExprKind::Intrinsic {
                kind: Intrinsic::VertexSetSize,
                args,
            } => match &args[0].kind {
                ExprKind::Var(n) => n.as_str(),
                _ => return None,
            },
            _ => return None,
        },
        _ => return None,
    };
    let mut iter: Option<(&Stmt, &EdgeSetIteratorData)> = None;
    for s in body {
        match &s.kind {
            StmtKind::EdgeSetIterator(d) => {
                if iter.is_some() || d.input.as_deref() != Some(frontier) {
                    return None;
                }
                iter = Some((s, d));
            }
            StmtKind::Delete { .. } | StmtKind::Assign { .. } => {}
            _ => return None,
        }
    }
    iter.map(|(s, d)| (frontier, s, d))
}

/// Recognizes `while (PrioQueueFinished(q) == false) { dequeue; ordered
/// iterator; … }`.
fn ordered_pattern(body: &[Stmt]) -> Option<(&Stmt, &EdgeSetIteratorData)> {
    let mut iter = None;
    for s in body {
        match &s.kind {
            StmtKind::EdgeSetIterator(d) => {
                if !s.meta.flag(keys::IS_ORDERED) || iter.is_some() {
                    return None;
                }
                iter = Some((s, d));
            }
            StmtKind::VarDecl { .. } | StmtKind::Delete { .. } | StmtKind::Assign { .. } => {}
            _ => return None,
        }
    }
    iter
}

impl OperatorExecutor for SwarmExecutor {
    fn edge_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<Option<VertexSet>, ExecError> {
        let plan_v = plan(state, stmt, data)?;
        let direction = stmt
            .meta
            .get_direction(keys::DIRECTION)
            .unwrap_or(Direction::Push);
        if direction == Direction::Pull {
            return Err(ExecError::new(
                "the Swarm GraphVM supports push traversal only (as in the paper)",
            ));
        }
        let input = state.input_set(&data.input)?;
        let csr: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let members = input.iter();
        let out = self.operator_batch(state, csr, &members, &plan_v);
        for (q, v, p) in out.priority_updates {
            state.queues[q].push(v, p);
        }
        if plan_v.requires_output {
            let mut set = VertexSet::from_members(state.graph.num_vertices(), out.enqueued);
            if plan_v.dedup {
                set.dedup();
            }
            let repr = stmt
                .meta
                .get_repr(keys::OUTPUT_REPRESENTATION)
                .unwrap_or(VertexSetRepr::Sparse);
            if set.repr() != repr {
                set = set.to_repr(repr);
            }
            Ok(Some(set))
        } else {
            Ok(None)
        }
    }

    fn vertex_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        _stmt: &Stmt,
        set: Option<&str>,
        apply: &str,
    ) -> Result<(), ExecError> {
        let udf = state
            .udfs
            .id_of(apply)
            .ok_or_else(|| ExecError::new(format!("unknown UDF `{apply}`")))?;
        let members = match set {
            None => VertexSet::all(state.graph.num_vertices()).iter(),
            Some(n) => state
                .env
                .set(n)
                .ok_or_else(|| ExecError::new(format!("set `{n}` is not bound")))?
                .iter(),
        };
        let ev = evaluator(state);
        let mut tasks = Vec::with_capacity(members.len());
        let mut roots = Vec::with_capacity(members.len());
        let mut merged = BufferedOutput::default();
        for &v in &members {
            let mut rec = TaskRecorder::default();
            rec.accesses += 1;
            let mut out = BufferedOutput::default();
            ev.call(
                udf,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut out,
                &mut rec,
            );
            let (reads, writes, duration) = rec.into_parts();
            roots.push(tasks.len());
            tasks.push(TaskSpec {
                ts: 0,
                duration,
                reads,
                writes,
                hint: None,
                children: vec![],
            });
            merged.priority_updates.extend(out.priority_updates);
        }
        self.sim.simulate(&tasks, &roots, false);
        for (q, v, p) in merged.priority_updates {
            state.queues[q].push(v, p);
        }
        Ok(())
    }

    fn try_loop(&mut self, state: &mut ProgramState<'_>, stmt: &Stmt) -> Result<bool, ExecError> {
        let StmtKind::While { cond, body } = &stmt.kind else {
            return Ok(false);
        };
        // Only convert when the schedule asks for it.
        if stmt.meta.flag("is_ordered_loop") {
            if let Some((it, data)) = ordered_pattern(body) {
                let sched = schedule_of(it)
                    .and_then(|r| r.as_simple().cloned())
                    .and_then(|s| s.as_any().downcast_ref::<SwarmSchedule>().cloned())
                    .unwrap_or_default();
                if sched.frontiers() == Frontiers::VertexsetToTasks {
                    let queue = it
                        .meta
                        .get_str(keys::QUEUE_UPDATED)
                        .ok_or_else(|| ExecError::new("ordered iterator lacks queue binding"))?;
                    let qid = *state
                        .binding
                        .queues
                        .get(queue)
                        .ok_or_else(|| ExecError::new("unbound queue"))?;
                    let it = it.clone();
                    let data = data.clone();
                    self.convert_ordered_loop(state, qid, &it, &data)?;
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        if let Some((frontier, it, data)) = data_driven_pattern(cond, body) {
            let sched = schedule_of(it)
                .and_then(|r| r.as_simple().cloned())
                .and_then(|s| s.as_any().downcast_ref::<SwarmSchedule>().cloned())
                .unwrap_or_default();
            if sched.frontiers() == Frontiers::VertexsetToTasks {
                let frontier = frontier.to_string();
                let it = it.clone();
                let data = data.clone();
                self.convert_data_driven_loop(state, &frontier, &it, &data)?;
                return Ok(true);
            }
        }
        Ok(false)
    }
}
