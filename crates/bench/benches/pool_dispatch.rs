//! Microbenchmark: spawn-per-call vs. persistent-pool parallel-for
//! dispatch latency across frontier sizes.
//!
//! Every CPU operator pays one parallel-for dispatch per traversal
//! iteration, so dispatch latency is pure overhead on small and medium
//! frontiers — exactly where BFS/SSSP spend most of their rounds. The
//! `spawn` rows time the original `std::thread::scope` implementation
//! (one thread spawn/join cycle per call); the `pool` rows time the
//! persistent work-stealing pool. Both run the same trivial body so the
//! delta is dispatch cost alone.
//!
//! Thread count is `default_threads().max(4)` — forced above 1 so the
//! comparison is meaningful on single-core CI boxes too (the pool grows
//! on demand; `UGC_THREADS` still caps it, so skip this bench under
//! `UGC_THREADS=1`).

use std::hint::black_box;
use std::time::Instant;

use ugc_bench::harness::Harness;
use ugc_runtime::parallel::spawn_parallel_for_with_local;
use ugc_runtime::pool;

/// Frontier sizes: tiny tail rounds up through a scan-sized range.
const SIZES: [usize; 6] = [64, 256, 1024, 8192, 65536, 1 << 20];
/// Chunk hint matching the CPU executor's vertex-based push path.
const CHUNK: usize = 64;

fn main() {
    let h = Harness::from_args();
    let threads = pool::default_threads().max(4);
    // Inner repetitions per timed sample, scaled down for big frontiers.
    let reps_for = |total: usize| (1 << 14) / total.max(64).min(1 << 14);

    for total in SIZES {
        let reps = reps_for(total).max(1) as u32;
        let group = format!("pool_dispatch/n={total}");
        h.bench(&group, "spawn", || {
            let t0 = Instant::now();
            for _ in 0..reps {
                let locals = spawn_parallel_for_with_local::<u64, _>(
                    threads,
                    total,
                    CHUNK,
                    |_tid, range, local| {
                        *local += black_box(range.len() as u64);
                    },
                );
                black_box(locals);
            }
            t0.elapsed() / reps
        });
        h.bench(&group, "pool", || {
            let t0 = Instant::now();
            for _ in 0..reps {
                let locals = pool::parallel_for_with_local::<u64, _>(
                    threads,
                    total,
                    CHUNK,
                    |_tid, range, local| {
                        *local += black_box(range.len() as u64);
                    },
                );
                black_box(locals);
            }
            t0.elapsed() / reps
        });
    }

    // A serial reference for scale: what the same body costs with no
    // dispatch at all (thread count 1 short-circuits inline).
    for total in [64usize, 8192] {
        let reps = reps_for(total).max(1) as u32;
        h.bench(&format!("pool_dispatch/n={total}"), "serial", || {
            let t0 = Instant::now();
            for _ in 0..reps {
                let locals = pool::parallel_for_with_local::<u64, _>(
                    1,
                    total,
                    CHUNK,
                    |_tid, range, local| {
                        *local += black_box(range.len() as u64);
                    },
                );
                black_box(locals);
            }
            t0.elapsed() / reps
        });
    }

    let t = pool::telemetry();
    eprintln!(
        "pool telemetry: workers_spawned={} jobs={} serial_runs={} chunks={} steals={} parks={}",
        t.workers_spawned, t.jobs, t.serial_runs, t.chunks, t.steals, t.parks
    );
}
