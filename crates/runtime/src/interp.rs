//! The host-side program interpreter shared by every GraphVM.
//!
//! A GraphVM in this reproduction is "an interpreter that directly consumes
//! and executes GraphIR" (an implementation strategy the paper explicitly
//! sanctions, §III-C). The *host* part — sequential coordination code that
//! the paper's backends emit as C++ `main` — is identical across backends,
//! so it lives here: variable management, scalar expression evaluation,
//! control flow, priority-queue rounds, frontier lists.
//!
//! What differs per architecture is how the two iteration operators run and
//! whether loops are specialized (GPU kernel fusion, Swarm task
//! conversion). Backends supply that through [`OperatorExecutor`].

use std::collections::HashMap;

use ugc_graph::Graph;
use ugc_graphir::ir::{EdgeSetIteratorData, Expr, ExprKind, LValue, Program, Stmt, StmtKind};
use ugc_graphir::types::{Intrinsic, ReduceOp, Type};
use ugc_resilience::ErrorClass;

use crate::buckets::BucketQueue;
use crate::bytecode::{binding_of, compile_udfs, Binding, UdfSet};
use crate::frontier_list::FrontierList;
use crate::host::{HostEnv, HostValue};
use crate::properties::{GlobalTable, PropertyStorage};
use crate::value::Value;
use crate::vertexset::VertexSet;

/// Execution failure (unbound variables, malformed host programs,
/// injected faults, watchdog kills), classed per the workspace taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description.
    pub message: String,
    /// Supervisor policy class ([`ErrorClass::Permanent`] for ordinary
    /// program/configuration errors).
    pub class: ErrorClass,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error ({}): {}", self.class, self.message)
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Creates a `Permanent` error with the given message — the right
    /// default for program and configuration errors, which fail the same
    /// way on every backend and every retry.
    pub fn new(message: impl Into<String>) -> Self {
        ExecError::classified(ErrorClass::Permanent, message)
    }

    /// Creates an error with an explicit class.
    pub fn classified(class: ErrorClass, message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            class,
        }
    }
}

/// Runs a GraphVM execution body with panic isolation: any panic —
/// including the typed payloads raised by injected faults and cycle
/// watchdogs — is caught and converted into a classed [`ExecError`].
/// This is the boundary the supervisor's "no panic escapes" guarantee
/// rests on.
pub fn contain<T>(
    body: impl FnOnce() -> Result<T, ExecError> + std::panic::UnwindSafe,
) -> Result<T, ExecError> {
    ugc_resilience::silence_supervised_panics();
    match std::panic::catch_unwind(body) {
        Ok(result) => result,
        Err(payload) => {
            let (class, message) = ugc_resilience::classify_panic(payload.as_ref());
            Err(ExecError::classified(class, message))
        }
    }
}

/// Backend-specific execution of the iteration operators.
pub trait OperatorExecutor {
    /// Executes an `EdgeSetIterator`. Returns the output frontier when the
    /// operator produces one (`data.output` is `Some`).
    ///
    /// # Errors
    ///
    /// Backend-specific failures (unbound sets, unknown UDFs).
    fn edge_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<Option<VertexSet>, ExecError>;

    /// Executes a `VertexSetIterator` applying `apply` to `set`
    /// (`None` = all vertices).
    ///
    /// # Errors
    ///
    /// Backend-specific failures.
    fn vertex_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        set: Option<&str>,
        apply: &str,
    ) -> Result<(), ExecError>;

    /// Executes a `VertexSetFilter`: evaluates the boolean `filter` UDF on
    /// every candidate vertex (the members of `input`, or all vertices)
    /// and returns the passing subset. The default runs sequentially on
    /// the host — correct for every backend (the simulators treat it as
    /// host coordination); the CPU backend overrides it with a
    /// pool-parallel sweep.
    ///
    /// # Errors
    ///
    /// Backend-specific failures (unbound sets, unknown UDFs).
    fn vertex_filter(
        &mut self,
        state: &mut ProgramState<'_>,
        _stmt: &Stmt,
        input: Option<&str>,
        filter: &str,
    ) -> Result<VertexSet, ExecError> {
        sequential_vertex_filter(state, input, filter)
    }

    /// Offered every `While` loop before generic interpretation; return
    /// `true` if the backend executed the whole loop itself (GPU kernel
    /// fusion, Swarm vertex-set→tasks).
    ///
    /// # Errors
    ///
    /// Backend-specific failures.
    fn try_loop(&mut self, _state: &mut ProgramState<'_>, _stmt: &Stmt) -> Result<bool, ExecError> {
        Ok(false)
    }
}

/// The sequential host-side filter sweep behind the default
/// [`OperatorExecutor::vertex_filter`].
///
/// # Errors
///
/// Fails on an unknown filter UDF or an unbound input set.
pub fn sequential_vertex_filter(
    state: &mut ProgramState<'_>,
    input: Option<&str>,
    filter: &str,
) -> Result<VertexSet, ExecError> {
    let id = state
        .udfs
        .id_of(filter)
        .ok_or_else(|| ExecError::new(format!("unknown filter function `{filter}`")))?;
    let n = state.graph.num_vertices();
    let candidates: Vec<u32> = match input {
        Some(name) => state
            .env
            .set(name)
            .ok_or_else(|| ExecError::new(format!("set `{name}` is not bound")))?
            .members_in_order(),
        None => (0..n as u32).collect(),
    };
    let ev = crate::eval::Evaluator::new(&state.udfs, &state.props, &state.globals, state.graph);
    let mut members = Vec::new();
    for v in candidates {
        let keep = ev
            .call(
                id,
                &[Value::Int(v as i64)],
                crate::eval::EdgeCtx::default(),
                &mut crate::eval::NullOutput,
                &mut crate::eval::NullMemory,
            )
            .map(|r| r.as_bool())
            .unwrap_or(false);
        if keep {
            members.push(v);
        }
    }
    Ok(VertexSet::from_members(n, members))
}

/// All mutable state of one program execution.
pub struct ProgramState<'g> {
    /// The compiled GraphIR program.
    pub prog: Program,
    /// The input graph.
    pub graph: &'g Graph,
    /// Property vectors.
    pub props: PropertyStorage,
    /// Scalar globals.
    pub globals: GlobalTable,
    /// Compiled UDFs.
    pub udfs: UdfSet,
    /// Name bindings used at compile time.
    pub binding: Binding,
    /// Priority queues by declaration order.
    pub queues: Vec<BucketQueue>,
    /// Host variables.
    pub env: HostEnv,
    /// Output of `Print` statements.
    pub prints: Vec<String>,
}

impl std::fmt::Debug for ProgramState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramState")
            .field("num_vertices", &self.graph.num_vertices())
            .field("props", &self.props)
            .field("queues", &self.queues.len())
            .finish()
    }
}

enum Flow {
    Normal,
    Break,
}

impl<'g> ProgramState<'g> {
    /// Prepares program state: allocates properties and globals, evaluates
    /// initializers (which may read `extern_values`), compiles UDFs, and
    /// seeds priority queues.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound externs or bad initializers.
    pub fn new(
        prog: Program,
        graph: &'g Graph,
        extern_values: &HashMap<String, Value>,
    ) -> Result<Self, ExecError> {
        let binding = binding_of(&prog);
        let udfs = compile_udfs(&prog, &binding).map_err(|e| ExecError::new(e.to_string()))?;
        let mut state = ProgramState {
            prog,
            graph,
            props: PropertyStorage::new(graph.num_vertices()),
            globals: GlobalTable::new(),
            udfs,
            binding,
            queues: Vec::new(),
            env: HostEnv::new(),
            prints: Vec::new(),
        };
        // Globals first (property inits may reference them).
        let global_decls = state.prog.globals.clone();
        for g in &global_decls {
            let init = match &g.init {
                Some(e) => state.eval_host(e)?,
                None => match extern_values.get(&g.name) {
                    Some(v) => *v,
                    None => {
                        return Err(ExecError::new(format!(
                            "extern const `{}` was not bound by the host",
                            g.name
                        )))
                    }
                },
            };
            state.globals.add(g.name.clone(), g.ty, init);
        }
        let prop_decls = state.prog.properties.clone();
        for p in &prop_decls {
            let init = state.eval_host(&p.init)?;
            state.props.add(p.name.clone(), p.ty, init);
        }
        let queue_decls = state.prog.queues.clone();
        for q in &queue_decls {
            let source = state.eval_host(&q.source)?.as_int();
            let delta = q.meta.get_int("delta").unwrap_or(1).max(1);
            state
                .queues
                .push(BucketQueue::new(graph.num_vertices(), delta, source as u32));
        }
        Ok(state)
    }

    /// Resolves an input frontier: `None` means all vertices.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the named set is unbound or deleted.
    pub fn input_set(&self, name: &Option<String>) -> Result<VertexSet, ExecError> {
        match name {
            None => Ok(VertexSet::all(self.graph.num_vertices())),
            Some(n) => self
                .env
                .set(n)
                .cloned()
                .ok_or_else(|| ExecError::new(format!("input frontier `{n}` is not bound"))),
        }
    }

    /// Pops the ready bucket of queue `qid`, consulting current tracked
    /// priorities.
    pub fn pop_ready(&mut self, qid: usize) -> VertexSet {
        let prop = self.udfs.queue_props[qid];
        let props = &self.props;
        self.queues[qid].pop_ready(|v| props.read(prop, v).as_int())
    }

    /// Evaluates a host-level scalar expression.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound names or non-host intrinsics.
    pub fn eval_host(&mut self, e: &Expr) -> Result<Value, ExecError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::Var(n) => {
                if let Some(v) = self.env.scalar(n) {
                    return Ok(v);
                }
                if let Some(id) = self.globals.id_of(n) {
                    return Ok(self.globals.read(id));
                }
                Err(ExecError::new(format!("unbound host variable `{n}`")))
            }
            ExprKind::PropRead { prop, index } => {
                let i = self.eval_host(index)?.as_int() as u32;
                let pid = self
                    .binding
                    .props
                    .get(prop)
                    .copied()
                    .ok_or_else(|| ExecError::new(format!("unbound property `{prop}`")))?;
                Ok(self.props.read(pid, i))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.eval_host(lhs)?;
                let b = self.eval_host(rhs)?;
                Ok(Value::bin(*op, a, b))
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval_host(operand)?;
                Ok(Value::un(*op, v))
            }
            ExprKind::Intrinsic { kind, args } => match kind {
                Intrinsic::NumVertices => Ok(Value::Int(self.graph.num_vertices() as i64)),
                Intrinsic::NumEdges => Ok(Value::Int(self.graph.num_edges() as i64)),
                Intrinsic::VertexSetSize => {
                    let ExprKind::Var(n) = &args[0].kind else {
                        return Err(ExecError::new("VertexSetSize expects a set variable"));
                    };
                    let s = self
                        .env
                        .set(n)
                        .ok_or_else(|| ExecError::new(format!("set `{n}` is not bound")))?;
                    Ok(Value::Int(s.len() as i64))
                }
                Intrinsic::ListSize => {
                    let ExprKind::Var(n) = &args[0].kind else {
                        return Err(ExecError::new("ListSize expects a list variable"));
                    };
                    match self.env.get(n) {
                        Some(HostValue::List(l)) => Ok(Value::Int(l.len() as i64)),
                        _ => Err(ExecError::new(format!("list `{n}` is not bound"))),
                    }
                }
                Intrinsic::PrioQueueFinished => {
                    let qid = self.queue_id(&args[0])?;
                    // A queue is finished when no non-stale entries remain:
                    // approximate by "no pending entries" which is exact for
                    // monotone min-updates.
                    Ok(Value::Bool(self.queues[qid].finished()))
                }
                Intrinsic::DequeueReadySet => Err(ExecError::new(
                    "DequeueReadySet only valid as a variable initializer",
                )),
                Intrinsic::OutDegree => {
                    let v = self.eval_host(args.last().expect("degree arg"))?.as_int() as u32;
                    Ok(Value::Int(self.graph.out_degree(v) as i64))
                }
                Intrinsic::InDegree => {
                    let v = self.eval_host(args.last().expect("degree arg"))?.as_int() as u32;
                    Ok(Value::Int(self.graph.in_degree(v) as i64))
                }
                Intrinsic::Abs => {
                    let v = self.eval_host(&args[0])?;
                    Ok(Value::Float(v.as_float().abs()))
                }
                Intrinsic::IntersectCount => {
                    let a = self.eval_host(&args[args.len() - 2])?.as_int() as u32;
                    let b = self
                        .eval_host(args.last().expect("intersect arg"))?
                        .as_int() as u32;
                    Ok(Value::Int(self.graph.intersect_count(a, b) as i64))
                }
                other => Err(ExecError::new(format!(
                    "intrinsic {other} not valid in host expressions"
                ))),
            },
            ExprKind::Call { func, args } => {
                let id = self
                    .udfs
                    .id_of(func)
                    .ok_or_else(|| ExecError::new(format!("unknown function `{func}`")))?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_host(a)?);
                }
                let ev =
                    crate::eval::Evaluator::new(&self.udfs, &self.props, &self.globals, self.graph);
                Ok(ev
                    .call(
                        id,
                        &vals,
                        crate::eval::EdgeCtx::default(),
                        &mut crate::eval::NullOutput,
                        &mut crate::eval::NullMemory,
                    )
                    .unwrap_or(Value::Int(0)))
            }
            ExprKind::CompareAndSwap { .. } => Err(ExecError::new(
                "CompareAndSwap not valid in host expressions",
            )),
        }
    }

    fn queue_id(&self, e: &Expr) -> Result<usize, ExecError> {
        let ExprKind::Var(n) = &e.kind else {
            return Err(ExecError::new("expected a queue variable"));
        };
        self.binding
            .queues
            .get(n)
            .copied()
            .ok_or_else(|| ExecError::new(format!("unbound queue `{n}`")))
    }
}

/// Runs a statement block under `exec` (used by backends that take over
/// whole loops, e.g. GPU kernel fusion). Returns `true` when the block
/// executed a `break`.
///
/// # Errors
///
/// Propagates [`ExecError`]s from the host walk or the executor.
pub fn run_block(
    state: &mut ProgramState<'_>,
    exec: &mut dyn OperatorExecutor,
    stmts: &[Stmt],
) -> Result<bool, ExecError> {
    Ok(matches!(exec_block(state, exec, stmts)?, Flow::Break))
}

/// Runs the program's `main` with operators executed by `exec`.
///
/// # Errors
///
/// Propagates [`ExecError`]s from the host walk or the executor.
pub fn run_main(
    state: &mut ProgramState<'_>,
    exec: &mut dyn OperatorExecutor,
) -> Result<(), ExecError> {
    let main = state.prog.main.clone();
    exec_block(state, exec, &main)?;
    Ok(())
}

fn exec_block(
    state: &mut ProgramState<'_>,
    exec: &mut dyn OperatorExecutor,
    stmts: &[Stmt],
) -> Result<Flow, ExecError> {
    for s in stmts {
        match exec_stmt(state, exec, s)? {
            Flow::Normal => {}
            Flow::Break => return Ok(Flow::Break),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt(
    state: &mut ProgramState<'_>,
    exec: &mut dyn OperatorExecutor,
    s: &Stmt,
) -> Result<Flow, ExecError> {
    match &s.kind {
        StmtKind::VarDecl { name, ty, init } => {
            let value = match init {
                Some(Expr {
                    kind: ExprKind::Intrinsic { kind, args },
                    ..
                }) => match kind {
                    Intrinsic::NewVertexSet => {
                        let count = state.eval_host(&args[0])?.as_int().max(0) as usize;
                        let n = state.graph.num_vertices();
                        if count == 0 {
                            HostValue::Set(VertexSet::empty_sparse(n))
                        } else {
                            HostValue::Set(VertexSet::from_members(
                                n,
                                (0..count.min(n) as u32).collect(),
                            ))
                        }
                    }
                    Intrinsic::NewFrontierList => HostValue::List(FrontierList::new()),
                    Intrinsic::DequeueReadySet => {
                        let qid = state.queue_id(&args[0])?;
                        HostValue::Set(state.pop_ready(qid))
                    }
                    _ => HostValue::Scalar(state.eval_host(init.as_ref().expect("checked"))?),
                },
                Some(e) => HostValue::Scalar(state.eval_host(e)?),
                None => match ty {
                    Type::VertexSet => {
                        HostValue::Set(VertexSet::empty_sparse(state.graph.num_vertices()))
                    }
                    Type::FrontierList => HostValue::List(FrontierList::new()),
                    t => HostValue::Scalar(Value::zero_of(*t)),
                },
            };
            state.env.declare(name.clone(), value);
            Ok(Flow::Normal)
        }
        StmtKind::Assign { target, value } => {
            match target {
                LValue::Var(name) => {
                    // Set-to-set moves: `frontier = output`.
                    if let ExprKind::Var(src) = &value.kind {
                        if let Some(set) = state.env.take_set(src) {
                            if state.env.assign(name, HostValue::Set(set)).is_err() {
                                return Err(ExecError::new(format!(
                                    "assignment to undeclared variable `{name}`"
                                )));
                            }
                            return Ok(Flow::Normal);
                        }
                    }
                    let v = state.eval_host(value)?;
                    if state.env.assign(name, HostValue::Scalar(v)).is_ok() {
                        return Ok(Flow::Normal);
                    }
                    if let Some(id) = state.globals.id_of(name) {
                        state.globals.write(id, v);
                        return Ok(Flow::Normal);
                    }
                    Err(ExecError::new(format!(
                        "assignment to undeclared variable `{name}`"
                    )))
                }
                LValue::Prop { prop, index } => {
                    let i = state.eval_host(index)?.as_int() as u32;
                    let v = state.eval_host(value)?;
                    let pid = state
                        .binding
                        .props
                        .get(prop)
                        .copied()
                        .ok_or_else(|| ExecError::new(format!("unbound property `{prop}`")))?;
                    state.props.write(pid, i, v);
                    Ok(Flow::Normal)
                }
            }
        }
        StmtKind::Reduce {
            target, op, value, ..
        } => {
            let v = state.eval_host(value)?;
            match target {
                LValue::Prop { prop, index } => {
                    let i = state.eval_host(index)?.as_int() as u32;
                    let pid = state
                        .binding
                        .props
                        .get(prop)
                        .copied()
                        .ok_or_else(|| ExecError::new(format!("unbound property `{prop}`")))?;
                    state.props.reduce_relaxed(pid, i, *op, v);
                }
                LValue::Var(name) => {
                    if let Some(cur) = state.env.scalar(name) {
                        let newv = host_reduce(*op, cur, v);
                        state
                            .env
                            .assign(name, HostValue::Scalar(newv))
                            .map_err(|n| ExecError::new(format!("unbound variable `{n}`")))?;
                    } else if let Some(id) = state.globals.id_of(name) {
                        state.globals.reduce(id, *op, v);
                    } else {
                        return Err(ExecError::new(format!("unbound variable `{name}`")));
                    }
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            if state.eval_host(cond)?.as_bool() {
                exec_block(state, exec, then_body)
            } else {
                exec_block(state, exec, else_body)
            }
        }
        StmtKind::While { cond, body } => {
            if exec.try_loop(state, s)? {
                return Ok(Flow::Normal);
            }
            loop {
                // Cooperative wall watchdog: `While` headers are the one
                // place every long-running program passes through
                // repeatedly, on every backend.
                if let Some(msg) = ugc_resilience::budget::wall_exceeded() {
                    return Err(ExecError::classified(ErrorClass::Budget, msg));
                }
                if !state.eval_host(cond)?.as_bool() {
                    break;
                }
                match exec_block(state, exec, body)? {
                    Flow::Normal => {}
                    Flow::Break => break,
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::For {
            var,
            start,
            end,
            body,
        } => {
            let lo = state.eval_host(start)?.as_int();
            let hi = state.eval_host(end)?.as_int();
            state.env.push_scope();
            state
                .env
                .declare(var.clone(), HostValue::Scalar(Value::Int(lo)));
            let mut i = lo;
            while i < hi {
                state
                    .env
                    .assign(var, HostValue::Scalar(Value::Int(i)))
                    .map_err(|n| ExecError::new(format!("unbound loop variable `{n}`")))?;
                if matches!(exec_block(state, exec, body)?, Flow::Break) {
                    break;
                }
                i += 1;
            }
            state.env.pop_scope();
            Ok(Flow::Normal)
        }
        StmtKind::ExprStmt(e) => {
            state.eval_host(e)?;
            Ok(Flow::Normal)
        }
        StmtKind::Return(_) => Ok(Flow::Normal),
        StmtKind::Break => Ok(Flow::Break),
        StmtKind::EdgeSetIterator(d) => {
            let out = exec.edge_iterator(state, s, d)?;
            if let Some(name) = &d.output {
                let set = out.ok_or_else(|| {
                    ExecError::new("executor returned no output for an output-producing operator")
                })?;
                if state.env.assign(name, HostValue::Set(set.clone())).is_err() {
                    state.env.declare(name.clone(), HostValue::Set(set));
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::VertexSetIterator { set, apply } => {
            exec.vertex_iterator(state, s, set.as_deref(), apply)?;
            Ok(Flow::Normal)
        }
        StmtKind::VertexSetFilter { input, out, filter } => {
            let set = exec.vertex_filter(state, s, input.as_deref(), filter)?;
            if state.env.assign(out, HostValue::Set(set.clone())).is_err() {
                state.env.declare(out.clone(), HostValue::Set(set));
            }
            Ok(Flow::Normal)
        }
        StmtKind::EnqueueVertex { set, vertex } => {
            let v = state.eval_host(vertex)?.as_int() as u32;
            let Some(name) = set else {
                return Err(ExecError::new(
                    "EnqueueVertex without explicit set outside a UDF",
                ));
            };
            match state.env.get_mut(name) {
                Some(HostValue::Set(s)) => {
                    s.add(v);
                    Ok(Flow::Normal)
                }
                _ => Err(ExecError::new(format!("set `{name}` is not bound"))),
            }
        }
        StmtKind::VertexSetDedup { set } => match state.env.get_mut(set) {
            Some(HostValue::Set(s)) => {
                s.dedup();
                Ok(Flow::Normal)
            }
            _ => Err(ExecError::new(format!("set `{set}` is not bound"))),
        },
        StmtKind::UpdatePriority { .. } => Err(ExecError::new(
            "UpdatePriority outside a UDF is not supported",
        )),
        StmtKind::ListAppend { list, set } => {
            let s = state
                .env
                .set(set)
                .cloned()
                .ok_or_else(|| ExecError::new(format!("set `{set}` is not bound")))?;
            match state.env.list_mut(list) {
                Some(l) => {
                    l.append(s);
                    Ok(Flow::Normal)
                }
                None => Err(ExecError::new(format!("list `{list}` is not bound"))),
            }
        }
        StmtKind::ListRetrieve { list, index, out } => {
            let i = state.eval_host(index)?.as_int();
            let set = match state.env.list_mut(list) {
                Some(l) => l
                    .retrieve(i as usize)
                    .ok_or_else(|| ExecError::new(format!("list index {i} out of bounds"))),
                None => Err(ExecError::new(format!("list `{list}` is not bound"))),
            }?;
            if state.env.assign(out, HostValue::Set(set.clone())).is_err() {
                state.env.declare(out.clone(), HostValue::Set(set));
            }
            Ok(Flow::Normal)
        }
        StmtKind::ListPopBack { list, out } => {
            let set = match state.env.list_mut(list) {
                Some(l) => l
                    .pop_back()
                    .ok_or_else(|| ExecError::new("pop from empty frontier list")),
                None => Err(ExecError::new(format!("list `{list}` is not bound"))),
            }?;
            if state.env.assign(out, HostValue::Set(set.clone())).is_err() {
                state.env.declare(out.clone(), HostValue::Set(set));
            }
            Ok(Flow::Normal)
        }
        StmtKind::Delete { name } => {
            let _ = state.env.take_set(name);
            Ok(Flow::Normal)
        }
        StmtKind::Print(e) => {
            let v = state.eval_host(e)?;
            state.prints.push(v.to_string());
            Ok(Flow::Normal)
        }
    }
}

fn host_reduce(op: ReduceOp, cur: Value, v: Value) -> Value {
    use ugc_graphir::types::BinOp;
    match op {
        ReduceOp::Sum => Value::bin(BinOp::Add, cur, v),
        ReduceOp::Min => {
            if Value::bin(BinOp::Lt, v, cur).as_bool() {
                v
            } else {
                cur
            }
        }
        ReduceOp::Max => {
            if Value::bin(BinOp::Gt, v, cur).as_bool() {
                v
            } else {
                cur
            }
        }
        ReduceOp::Or => Value::Bool(cur.as_bool() || v.as_bool()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially-sequential executor used to test the host walker.
    struct SerialExec;

    impl OperatorExecutor for SerialExec {
        fn edge_iterator(
            &mut self,
            state: &mut ProgramState<'_>,
            stmt: &Stmt,
            data: &EdgeSetIteratorData,
        ) -> Result<Option<VertexSet>, ExecError> {
            let input = state.input_set(&data.input)?;
            let id = state
                .udfs
                .id_of(&data.apply)
                .ok_or_else(|| ExecError::new("unknown UDF"))?;
            let mut out = crate::eval::BufferedOutput::default();
            for src in input.iter() {
                for (k, &dst) in state.graph.out_neighbors(src).iter().enumerate() {
                    let w = state
                        .graph
                        .out_csr()
                        .neighbor_weights(src)
                        .map_or(1, |ws| ws[k]) as i64;
                    let ev = crate::eval::Evaluator::new(
                        &state.udfs,
                        &state.props,
                        &state.globals,
                        state.graph,
                    );
                    let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
                    if state.udfs.get(id).num_params == 3 {
                        args.push(Value::Int(w));
                    }
                    ev.call(
                        id,
                        &args,
                        crate::eval::EdgeCtx { weight: w },
                        &mut out,
                        &mut crate::eval::NullMemory,
                    );
                }
            }
            for (q, v, p) in out.priority_updates {
                state.queues[q].push(v, p);
            }
            let _ = stmt;
            if data.output.is_some() {
                let mut s = VertexSet::empty_sparse(state.graph.num_vertices());
                for v in out.enqueued {
                    s.add(v);
                }
                s.dedup();
                Ok(Some(s))
            } else {
                Ok(None)
            }
        }

        fn vertex_iterator(
            &mut self,
            state: &mut ProgramState<'_>,
            _stmt: &Stmt,
            set: Option<&str>,
            apply: &str,
        ) -> Result<(), ExecError> {
            let members = match set {
                None => VertexSet::all(state.graph.num_vertices()).iter(),
                Some(n) => state
                    .env
                    .set(n)
                    .ok_or_else(|| ExecError::new("set unbound"))?
                    .iter(),
            };
            let id = state
                .udfs
                .id_of(apply)
                .ok_or_else(|| ExecError::new("unknown UDF"))?;
            for v in members {
                let ev = crate::eval::Evaluator::new(
                    &state.udfs,
                    &state.props,
                    &state.globals,
                    state.graph,
                );
                ev.call(
                    id,
                    &[Value::Int(v as i64)],
                    crate::eval::EdgeCtx::default(),
                    &mut crate::eval::NullOutput,
                    &mut crate::eval::NullMemory,
                );
            }
            Ok(())
        }
    }

    #[test]
    fn bfs_end_to_end_with_serial_executor() {
        use ugc_graphir::ir::{Function, Param};
        use ugc_graphir::types::BinOp;

        // Build BFS IR by hand (mirrors the midend output).
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        p.add_global("start_vertex", Type::Vertex, None);
        let mut f = Function::new(
            "upd",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "ok".into(),
            ty: Type::Bool,
            init: Some(Expr::cas(
                "parent",
                Expr::var("dst"),
                Expr::int(-1),
                Expr::var("src"),
            )),
        }));
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("ok"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        p.add_function(f);
        // main
        p.main.push(Stmt::new(StmtKind::VarDecl {
            name: "frontier".into(),
            ty: Type::VertexSet,
            init: Some(Expr::intrinsic(Intrinsic::NewVertexSet, vec![Expr::int(0)])),
        }));
        p.main.push(Stmt::new(StmtKind::EnqueueVertex {
            set: Some("frontier".into()),
            vertex: Expr::var("start_vertex"),
        }));
        p.main.push(Stmt::new(StmtKind::Assign {
            target: LValue::prop("parent", Expr::var("start_vertex")),
            value: Expr::var("start_vertex"),
        }));
        let iter = Stmt::new(StmtKind::EdgeSetIterator(EdgeSetIteratorData {
            graph: "edges".into(),
            input: Some("frontier".into()),
            output: Some("output".into()),
            apply: "upd".into(),
            src_filter: None,
            dst_filter: None,
            tracked_prop: Some("parent".into()),
            transposed: false,
        }));
        p.main.push(Stmt::new(StmtKind::While {
            cond: Expr::bin(
                BinOp::Ne,
                Expr::intrinsic(Intrinsic::VertexSetSize, vec![Expr::var("frontier")]),
                Expr::int(0),
            ),
            body: vec![
                iter,
                Stmt::new(StmtKind::Delete {
                    name: "frontier".into(),
                }),
                Stmt::new(StmtKind::Assign {
                    target: LValue::Var("frontier".into()),
                    value: Expr::var("output"),
                }),
            ],
        }));

        let graph = ugc_graph::generators::path(5);
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let mut state = ProgramState::new(p, &graph, &externs).unwrap();
        run_main(&mut state, &mut SerialExec).unwrap();
        let parent = state.props.id_of("parent").unwrap();
        assert_eq!(state.props.read(parent, 0), Value::Int(0));
        assert_eq!(state.props.read(parent, 4), Value::Int(3));
    }

    #[test]
    fn missing_extern_is_an_error() {
        let mut p = Program::new();
        p.add_global("start_vertex", Type::Vertex, None);
        let graph = ugc_graph::generators::path(2);
        let err = ProgramState::new(p, &graph, &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("start_vertex"));
    }

    #[test]
    fn print_and_for_loops() {
        let mut p = Program::new();
        p.main.push(Stmt::new(StmtKind::For {
            var: "i".into(),
            start: Expr::int(0),
            end: Expr::int(3),
            body: vec![Stmt::new(StmtKind::Print(Expr::var("i")))],
        }));
        let graph = ugc_graph::generators::path(2);
        let mut state = ProgramState::new(p, &graph, &HashMap::new()).unwrap();
        run_main(&mut state, &mut SerialExec).unwrap();
        assert_eq!(state.prints, vec!["0", "1", "2"]);
    }

    #[test]
    fn break_exits_while() {
        let mut p = Program::new();
        p.main.push(Stmt::new(StmtKind::VarDecl {
            name: "n".into(),
            ty: Type::Int,
            init: Some(Expr::int(0)),
        }));
        p.main.push(Stmt::new(StmtKind::While {
            cond: Expr::bool(true),
            body: vec![
                Stmt::new(StmtKind::Reduce {
                    target: LValue::Var("n".into()),
                    op: ReduceOp::Sum,
                    value: Expr::int(1),
                    tracking: None,
                }),
                Stmt::new(StmtKind::If {
                    cond: Expr::bin(ugc_graphir::types::BinOp::Ge, Expr::var("n"), Expr::int(5)),
                    then_body: vec![Stmt::new(StmtKind::Break)],
                    else_body: vec![],
                }),
            ],
        }));
        p.main.push(Stmt::new(StmtKind::Print(Expr::var("n"))));
        let graph = ugc_graph::generators::path(2);
        let mut state = ProgramState::new(p, &graph, &HashMap::new()).unwrap();
        run_main(&mut state, &mut SerialExec).unwrap();
        assert_eq!(state.prints, vec!["5"]);
    }
}
