//! The extensible metadata API.
//!
//! The paper attaches optimization-relevant information to IR nodes with
//! `setMetadata<T>(std::string label, T val)` / `getMetadata<T>(label)`.
//! Because the label space is open, backends can stack new metadata without
//! changing GraphIR definitions. This module reproduces that design: a
//! [`Metadata`] map from string labels to [`MetaValue`]s, where `MetaValue`
//! covers the common scalar kinds plus an `Any` escape hatch for arbitrary
//! shared payloads (used, e.g., to attach schedule objects to statements).

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::types::{Direction, VertexSetRepr};

/// A single metadata value.
#[derive(Clone)]
pub enum MetaValue {
    /// Boolean flag.
    Bool(bool),
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// String parameter (also used for variable/function names).
    Str(String),
    /// Traversal direction.
    Direction(Direction),
    /// Vertex set representation.
    Repr(VertexSetRepr),
    /// List of strings (e.g., hoisted variable names).
    StrList(Vec<String>),
    /// Arbitrary shared payload, downcast by whoever attached it.
    Any(Arc<dyn Any + Send + Sync>),
}

impl fmt::Debug for MetaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaValue::Bool(v) => write!(f, "{v}"),
            MetaValue::Int(v) => write!(f, "{v}"),
            MetaValue::Float(v) => write!(f, "{v}"),
            MetaValue::Str(v) => write!(f, "{v:?}"),
            MetaValue::Direction(v) => write!(f, "{v}"),
            MetaValue::Repr(v) => write!(f, "{v}"),
            MetaValue::StrList(v) => write!(f, "{v:?}"),
            MetaValue::Any(_) => write!(f, "<any>"),
        }
    }
}

impl PartialEq for MetaValue {
    fn eq(&self, other: &Self) -> bool {
        use MetaValue::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Direction(a), Direction(b)) => a == b,
            (Repr(a), Repr(b)) => a == b,
            (StrList(a), StrList(b)) => a == b,
            (Any(a), Any(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl From<bool> for MetaValue {
    fn from(v: bool) -> Self {
        MetaValue::Bool(v)
    }
}
impl From<i64> for MetaValue {
    fn from(v: i64) -> Self {
        MetaValue::Int(v)
    }
}
impl From<f64> for MetaValue {
    fn from(v: f64) -> Self {
        MetaValue::Float(v)
    }
}
impl From<&str> for MetaValue {
    fn from(v: &str) -> Self {
        MetaValue::Str(v.to_string())
    }
}
impl From<String> for MetaValue {
    fn from(v: String) -> Self {
        MetaValue::Str(v)
    }
}
impl From<Direction> for MetaValue {
    fn from(v: Direction) -> Self {
        MetaValue::Direction(v)
    }
}
impl From<VertexSetRepr> for MetaValue {
    fn from(v: VertexSetRepr) -> Self {
        MetaValue::Repr(v)
    }
}
impl From<Vec<String>> for MetaValue {
    fn from(v: Vec<String>) -> Self {
        MetaValue::StrList(v)
    }
}

/// String-keyed metadata map carried by every GraphIR node.
///
/// # Example
///
/// ```
/// use ugc_graphir::meta::Metadata;
///
/// let mut m = Metadata::new();
/// m.set("is_atomic", true);
/// m.set("delta", 8i64);
/// assert_eq!(m.get_bool("is_atomic"), Some(true));
/// assert_eq!(m.get_int("delta"), Some(8));
/// assert_eq!(m.get_bool("missing"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metadata {
    entries: BTreeMap<String, MetaValue>,
}

impl Metadata {
    /// Creates an empty metadata map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `label` to `value`, replacing any previous value.
    pub fn set(&mut self, label: impl Into<String>, value: impl Into<MetaValue>) {
        self.entries.insert(label.into(), value.into());
    }

    /// Attaches an arbitrary shared payload under `label`.
    pub fn set_any<T: Any + Send + Sync>(&mut self, label: impl Into<String>, value: Arc<T>) {
        self.entries.insert(label.into(), MetaValue::Any(value));
    }

    /// Raw lookup.
    pub fn get(&self, label: &str) -> Option<&MetaValue> {
        self.entries.get(label)
    }

    /// Whether `label` is present.
    pub fn contains(&self, label: &str) -> bool {
        self.entries.contains_key(label)
    }

    /// Removes `label`, returning its previous value.
    pub fn remove(&mut self, label: &str) -> Option<MetaValue> {
        self.entries.remove(label)
    }

    /// Typed lookup of a boolean.
    pub fn get_bool(&self, label: &str) -> Option<bool> {
        match self.get(label) {
            Some(MetaValue::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// Boolean lookup defaulting to `false` when absent.
    pub fn flag(&self, label: &str) -> bool {
        self.get_bool(label).unwrap_or(false)
    }

    /// Typed lookup of an integer.
    pub fn get_int(&self, label: &str) -> Option<i64> {
        match self.get(label) {
            Some(MetaValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed lookup of a float.
    pub fn get_float(&self, label: &str) -> Option<f64> {
        match self.get(label) {
            Some(MetaValue::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed lookup of a string.
    pub fn get_str(&self, label: &str) -> Option<&str> {
        match self.get(label) {
            Some(MetaValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed lookup of a direction.
    pub fn get_direction(&self, label: &str) -> Option<Direction> {
        match self.get(label) {
            Some(MetaValue::Direction(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed lookup of a vertex set representation.
    pub fn get_repr(&self, label: &str) -> Option<VertexSetRepr> {
        match self.get(label) {
            Some(MetaValue::Repr(v)) => Some(*v),
            _ => None,
        }
    }

    /// Typed lookup of a string list.
    pub fn get_str_list(&self, label: &str) -> Option<&[String]> {
        match self.get(label) {
            Some(MetaValue::StrList(v)) => Some(v),
            _ => None,
        }
    }

    /// Typed lookup + downcast of an `Any` payload.
    pub fn get_any<T: Any + Send + Sync>(&self, label: &str) -> Option<Arc<T>> {
        match self.get(label) {
            Some(MetaValue::Any(v)) => v.clone().downcast::<T>().ok(),
            _ => None,
        }
    }

    /// Iterates `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetaValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut m = Metadata::new();
        m.set("k", 1i64);
        m.set("k", 2i64);
        assert_eq!(m.get_int("k"), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn typed_lookup_rejects_wrong_type() {
        let mut m = Metadata::new();
        m.set("k", true);
        assert_eq!(m.get_int("k"), None);
        assert_eq!(m.get_bool("k"), Some(true));
    }

    #[test]
    fn flag_defaults_false() {
        let m = Metadata::new();
        assert!(!m.flag("whatever"));
    }

    #[test]
    fn any_payload_downcasts() {
        #[derive(Debug, PartialEq)]
        struct Payload(u32);
        let mut m = Metadata::new();
        m.set_any("sched", Arc::new(Payload(7)));
        let p = m.get_any::<Payload>("sched").unwrap();
        assert_eq!(*p, Payload(7));
        assert!(m.get_any::<String>("sched").is_none());
    }

    #[test]
    fn direction_and_repr() {
        let mut m = Metadata::new();
        m.set("direction", Direction::Pull);
        m.set("repr", VertexSetRepr::Bitmap);
        assert_eq!(m.get_direction("direction"), Some(Direction::Pull));
        assert_eq!(m.get_repr("repr"), Some(VertexSetRepr::Bitmap));
    }

    #[test]
    fn str_list() {
        let mut m = Metadata::new();
        m.set("hoisted", vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.get_str_list("hoisted").unwrap().len(), 2);
    }

    #[test]
    fn remove_and_contains() {
        let mut m = Metadata::new();
        m.set("k", "v");
        assert!(m.contains("k"));
        m.remove("k");
        assert!(!m.contains("k"));
        assert!(m.is_empty());
    }

    #[test]
    fn iter_in_label_order() {
        let mut m = Metadata::new();
        m.set("b", 1i64);
        m.set("a", 2i64);
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
