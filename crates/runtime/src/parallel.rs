//! Minimal work-distribution primitives for the CPU backend.
//!
//! Built on `std::thread::scope` (std scoped threads, stable since Rust
//! 1.63) with an atomic chunk cursor — the dynamic scheduling shape of an
//! OpenMP `schedule(dynamic)` loop, which is what GraphIt's CPU runtime
//! uses for irregular graph work. Using std keeps the workspace free of
//! external runtime dependencies, like the paper's self-contained GraphVM
//! runtime libraries.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by default: the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(thread_id, start..end)` over chunks of `0..total` on
/// `num_threads` workers, chunks handed out dynamically.
///
/// `f` must be safe to call concurrently. Chunk size is
/// `max(chunk_hint, 1)`.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use ugc_runtime::parallel::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(4, 1000, 64, |_tid, range| {
///     sum.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(num_threads: usize, total: usize, chunk_hint: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    let chunk = chunk_hint.max(1);
    let threads = num_threads.max(1).min(total.div_ceil(chunk));
    if threads <= 1 {
        f(0, 0..total);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                let end = (start + chunk).min(total);
                f(tid, start..end);
            });
        }
        // Scope exit joins every worker; a worker panic propagates here.
    });
}

/// Runs `f(thread_id, start..end, &mut local)` like [`parallel_for`] but
/// gives each worker a `T::default()` accumulator, returning all
/// accumulators (useful for building output frontiers without contention).
pub fn parallel_for_with_local<T, F>(
    num_threads: usize,
    total: usize,
    chunk_hint: usize,
    f: F,
) -> Vec<T>
where
    T: Default + Send,
    F: Fn(usize, std::ops::Range<usize>, &mut T) + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let chunk = chunk_hint.max(1);
    let threads = num_threads.max(1).min(total.div_ceil(chunk));
    if threads <= 1 {
        let mut local = T::default();
        f(0, 0..total, &mut local);
        return vec![local];
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let f = &f;
            let cursor = &cursor;
            handles.push(s.spawn(move || {
                let mut local = T::default();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + chunk).min(total);
                    f(tid, start..end, &mut local);
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        parallel_for(8, 500, 7, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_total_is_noop() {
        parallel_for(4, 0, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn local_accumulators_merge() {
        let locals = parallel_for_with_local::<Vec<usize>, _>(4, 100, 3, |_tid, range, local| {
            local.extend(range);
        });
        let mut all: Vec<usize> = locals.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let locals = parallel_for_with_local::<usize, _>(1, 10, 100, |tid, range, local| {
            assert_eq!(tid, 0);
            *local += range.len();
        });
        assert_eq!(locals, vec![10]);
    }
}
