//! The benchmark harness shared by the `harness = false` benches and the
//! `repro` binary that regenerates every table and figure of the paper.
//! Timing/reporting lives in [`harness`] — the in-tree, offline
//! replacement for Criterion (warmup + median-of-N + JSON lines).
//!
//! The key ingredient is [`tuned_schedule`]: the per-(architecture,
//! algorithm, graph-class) schedules of the paper's §IV-A ("we tune the
//! schedules for each application and graph pair, but always compile from
//! exactly the same algorithm specification"). [`baseline_schedule`] is
//! each GraphVM's default.

pub mod harness;

pub use harness::{Harness, Stats};

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_cpu::CpuSchedule;
use ugc_backend_gpu::{FrontierCreation, GpuSchedule, LoadBalance};
use ugc_backend_hb::{HbLoadBalance, HbSchedule};
use ugc_backend_swarm::{Frontiers, SwarmSchedule, TaskGranularity};
use ugc_graph::stats::DegreeProfile;
use ugc_graph::{Dataset, Graph, Scale};
use ugc_schedule::{Parallelization, SchedDirection, ScheduleRef};

/// Which measurement a run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Milliseconds: wall-clock (CPU) or simulated (others).
    pub time_ms: f64,
    /// Simulated cycles (0 on CPU).
    pub cycles: u64,
}

/// The baseline (default) schedule of a GraphVM, as used for the
/// "unoptimized" bars of Fig. 8. The HammerBlade baseline uses hybrid
/// traversal for the data-driven algorithms, exactly as §IV-D notes.
pub fn baseline_schedule(target: Target, algo: Algorithm) -> ScheduleRef {
    match target {
        Target::Cpu => ScheduleRef::simple(CpuSchedule::new()),
        Target::Gpu => ScheduleRef::simple(GpuSchedule::new()),
        Target::Swarm => ScheduleRef::simple(SwarmSchedule::new()),
        Target::HammerBlade => {
            let mut s = HbSchedule::new();
            if matches!(algo, Algorithm::Bfs | Algorithm::Bc | Algorithm::Sssp) {
                s = s.with_direction(SchedDirection::Hybrid);
            }
            ScheduleRef::simple(s)
        }
    }
}

/// The hand-tuned schedule for a (target, algorithm, graph-class) triple —
/// the paper's optimized configurations (§IV-C/D/E). Tuning is per graph,
/// so [`tuned_schedule_for`] (which also sees the graph size) should be
/// preferred; this variant assumes a paper-scale graph.
pub fn tuned_schedule(target: Target, algo: Algorithm, profile: DegreeProfile) -> ScheduleRef {
    tuned_schedule_sized(target, algo, profile, usize::MAX)
}

/// Per-graph tuned schedule.
pub fn tuned_schedule_for(target: Target, algo: Algorithm, graph: &Graph) -> ScheduleRef {
    tuned_schedule_sized(
        target,
        algo,
        ugc_graph::stats::classify(graph),
        graph.num_vertices(),
    )
}

fn tuned_schedule_sized(
    target: Target,
    algo: Algorithm,
    profile: DegreeProfile,
    num_vertices: usize,
) -> ScheduleRef {
    let social = profile == DegreeProfile::PowerLaw;
    match target {
        Target::Cpu => {
            let s = match algo {
                Algorithm::Bfs | Algorithm::Bc => {
                    if social {
                        CpuSchedule::new()
                            .with_direction(SchedDirection::Hybrid)
                            .with_parallelization(Parallelization::EdgeAwareVertexBased)
                    } else {
                        CpuSchedule::new().with_serial_threshold(2048)
                    }
                }
                Algorithm::PageRank => CpuSchedule::new()
                    .with_cache_blocking(true)
                    .with_parallelization(Parallelization::EdgeAwareVertexBased),
                Algorithm::Cc => {
                    CpuSchedule::new().with_parallelization(Parallelization::EdgeAwareVertexBased)
                }
                Algorithm::Sssp => {
                    if social {
                        // Low-diameter graphs want fine buckets (measured:
                        // larger ∆ only adds re-relaxation work on CPUs).
                        CpuSchedule::new()
                            .with_delta(1)
                            .with_parallelization(Parallelization::EdgeAwareVertexBased)
                    } else {
                        CpuSchedule::new()
                            .with_delta(64)
                            .with_serial_threshold(4096)
                    }
                }
            };
            ScheduleRef::simple(s)
        }
        Target::Gpu => {
            // Small graphs are kernel-launch-bound, so per-graph tuning
            // also fuses the social-graph schedules there.
            let launch_bound = num_vertices < 16_384;
            let s = match algo {
                Algorithm::Bfs | Algorithm::Bc => {
                    if social {
                        GpuSchedule::new()
                            .with_direction(SchedDirection::Hybrid)
                            .with_load_balance(LoadBalance::Twc)
                            .with_frontier_creation(FrontierCreation::Fused)
                            .with_kernel_fusion(launch_bound)
                    } else {
                        GpuSchedule::new()
                            .with_kernel_fusion(true)
                            .with_frontier_creation(FrontierCreation::Fused)
                    }
                }
                Algorithm::PageRank => {
                    // EdgeBlocking pays off once the rank arrays exceed the
                    // L2; below that the per-block scans are pure overhead
                    // (per-graph tuning, §IV-A).
                    let s = GpuSchedule::new().with_load_balance(LoadBalance::Etwc);
                    if num_vertices >= 1 << 17 {
                        s.with_edge_blocking(1 << 13)
                    } else {
                        s
                    }
                }
                Algorithm::Cc => GpuSchedule::new().with_load_balance(LoadBalance::Etwc),
                Algorithm::Sssp => {
                    if social {
                        GpuSchedule::new()
                            .with_delta(8)
                            .with_load_balance(LoadBalance::Twc)
                            .with_kernel_fusion(launch_bound)
                    } else {
                        GpuSchedule::new().with_delta(64).with_kernel_fusion(true)
                    }
                }
            };
            ScheduleRef::simple(s)
        }
        Target::Swarm => {
            let s = match algo {
                Algorithm::Bfs => SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained),
                Algorithm::Sssp => SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained)
                    .with_delta(if social { 4 } else { 16 }),
                Algorithm::PageRank => {
                    // Fine splitting pays off on high-in-degree (social)
                    // graphs (§IV-E); road graphs keep coarse tasks.
                    if social {
                        SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)
                    } else {
                        SwarmSchedule::new()
                    }
                }
                // Label propagation's tiny updates don't repay task
                // splitting in this model; per-graph tuning keeps the
                // default (measured — a deviation from the paper's CC
                // gains, noted in EXPERIMENTS.md).
                Algorithm::Cc => SwarmSchedule::new(),
                Algorithm::Bc => {
                    SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)
                }
            };
            ScheduleRef::simple(s)
        }
        Target::HammerBlade => {
            let s = match algo {
                Algorithm::Bfs | Algorithm::Bc | Algorithm::Cc => {
                    // Aligned blocks need enough line-disjoint work units to
                    // keep 128 cores busy; tiny graphs fall back to
                    // degree-balanced chunks (per-graph tuning, §IV-A).
                    let lb = if num_vertices >= 4096 {
                        HbLoadBalance::Aligned
                    } else {
                        HbLoadBalance::EdgeBased
                    };
                    HbSchedule::new()
                        .with_direction(if matches!(algo, Algorithm::Bfs | Algorithm::Bc) {
                            SchedDirection::Hybrid
                        } else {
                            SchedDirection::Push
                        })
                        .with_load_balance(lb)
                }
                Algorithm::PageRank => HbSchedule::new()
                    .with_blocked_access(true)
                    .with_block_size(64),
                Algorithm::Sssp => HbSchedule::new()
                    .with_direction(SchedDirection::Hybrid)
                    .with_blocked_access(true)
                    .with_block_size(64)
                    .with_delta(if social { 8 } else { 32 }),
            };
            ScheduleRef::simple(s)
        }
    }
}

/// Runs `(target, algo)` on `graph` with the given schedule, returning the
/// target-appropriate time. CPU runs take the best of `cpu_reps` repeats.
///
/// # Panics
///
/// Panics if compilation or execution fails (bench configurations must be
/// valid).
pub fn measure(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    sched: ScheduleRef,
    cpu_reps: u32,
) -> Measurement {
    let mut compiler = Compiler::new(algo);
    compiler.schedule(algo.schedule_path(), sched);
    if algo.needs_start_vertex() {
        compiler.start_vertex(0);
    }
    if target == Target::Cpu {
        let mut best = f64::INFINITY;
        for _ in 0..cpu_reps.max(1) {
            let r = compiler.run(target, graph).expect("bench run");
            best = best.min(r.time_ms);
        }
        Measurement {
            time_ms: best,
            cycles: 0,
        }
    } else {
        let r = compiler.run(target, graph).expect("bench run");
        Measurement {
            time_ms: r.time_ms,
            cycles: r.cycles,
        }
    }
}

/// The speedup of the tuned schedule over the baseline schedule — one cell
/// of the Fig. 8 heatmap.
pub fn fig8_cell(target: Target, algo: Algorithm, dataset: Dataset, scale: Scale) -> f64 {
    let graph = dataset.generate(scale);
    let base = measure(target, algo, &graph, baseline_schedule(target, algo), 3);
    let tuned = measure(
        target,
        algo,
        &graph,
        tuned_schedule_for(target, algo, &graph),
        3,
    );
    base.time_ms / tuned.time_ms
}

/// Candidate schedules per (target, algorithm) for [`autotune`] — a small
/// exhaustive space like the paper's OpenTuner setup explores.
pub fn candidate_schedules(target: Target, algo: Algorithm) -> Vec<(&'static str, ScheduleRef)> {
    let mut out: Vec<(&'static str, ScheduleRef)> = vec![
        ("baseline", baseline_schedule(target, algo)),
        (
            "tuned_social",
            tuned_schedule(target, algo, DegreeProfile::PowerLaw),
        ),
        (
            "tuned_road",
            tuned_schedule(target, algo, DegreeProfile::Bounded),
        ),
    ];
    match target {
        Target::Cpu => {
            out.push((
                "hybrid",
                ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Hybrid)),
            ));
            out.push((
                "pull",
                ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Pull)),
            ));
        }
        Target::Gpu => {
            out.push((
                "twc",
                ScheduleRef::simple(GpuSchedule::new().with_load_balance(LoadBalance::Twc)),
            ));
            out.push((
                "strict",
                ScheduleRef::simple(GpuSchedule::new().with_load_balance(LoadBalance::Strict)),
            ));
            out.push((
                "fused",
                ScheduleRef::simple(GpuSchedule::new().with_kernel_fusion(true)),
            ));
            if algo == Algorithm::Sssp {
                out.push((
                    "async",
                    ScheduleRef::simple(
                        GpuSchedule::new().with_async_execution(true).with_delta(32),
                    ),
                ));
            }
        }
        Target::Swarm => {
            out.push((
                "tasks",
                ScheduleRef::simple(
                    SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks),
                ),
            ));
            out.push((
                "tasks_fine",
                ScheduleRef::simple(
                    SwarmSchedule::new()
                        .with_frontiers(Frontiers::VertexsetToTasks)
                        .with_task_granularity(TaskGranularity::FineGrained),
                ),
            ));
        }
        Target::HammerBlade => {
            out.push((
                "aligned",
                ScheduleRef::simple(HbSchedule::new().with_load_balance(HbLoadBalance::Aligned)),
            ));
            out.push((
                "blocked",
                ScheduleRef::simple(HbSchedule::new().with_blocked_access(true)),
            ));
        }
    }
    out
}

/// Exhaustive mini-autotuner: measures every candidate schedule and
/// returns the winner with its measurement (the paper's §IV-A notes
/// "techniques like autotuning can find high-performance schedules in
/// relatively little time" — with deterministic simulators, exhaustive
/// search is exact).
pub fn autotune(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
) -> (&'static str, ScheduleRef, Measurement) {
    candidate_schedules(target, algo)
        .into_iter()
        .map(|(name, sched)| {
            let m = measure(target, algo, graph, sched.clone(), 2);
            (name, sched, m)
        })
        .min_by(|a, b| a.2.time_ms.total_cmp(&b.2.time_ms))
        .expect("candidate list is non-empty")
}

/// Parses the harness scale flag.
pub fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        other => panic!("unknown scale `{other}` (tiny|small|medium)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_schedules_exist_for_every_combination() {
        for target in Target::ALL {
            for algo in Algorithm::ALL {
                for profile in [DegreeProfile::PowerLaw, DegreeProfile::Bounded] {
                    let _ = tuned_schedule(target, algo, profile);
                    let _ = baseline_schedule(target, algo);
                }
            }
        }
    }

    #[test]
    fn fig8_cell_runs_and_is_positive() {
        let s = fig8_cell(Target::Gpu, Algorithm::Bfs, Dataset::RoadNetCa, Scale::Tiny);
        assert!(s > 0.0, "{s}");
    }

    #[test]
    fn autotune_never_loses_to_baseline() {
        let g = Dataset::RoadNetCa.generate(Scale::Tiny);
        for target in [Target::Gpu, Target::Swarm] {
            let (name, _, best) = autotune(target, Algorithm::Bfs, &g);
            let base = measure(
                target,
                Algorithm::Bfs,
                &g,
                baseline_schedule(target, Algorithm::Bfs),
                1,
            );
            assert!(
                best.time_ms <= base.time_ms,
                "{}: winner {name} ({}) worse than baseline ({})",
                target.name(),
                best.time_ms,
                base.time_ms
            );
        }
    }

    #[test]
    fn measure_cpu_and_sim() {
        let g = Dataset::Pokec.generate(Scale::Tiny);
        let cpu = measure(
            Target::Cpu,
            Algorithm::Bfs,
            &g,
            baseline_schedule(Target::Cpu, Algorithm::Bfs),
            2,
        );
        assert!(cpu.time_ms > 0.0);
        assert_eq!(cpu.cycles, 0);
        let gpu = measure(
            Target::Gpu,
            Algorithm::Bfs,
            &g,
            baseline_schedule(Target::Gpu, Algorithm::Bfs),
            1,
        );
        assert!(gpu.cycles > 0);
    }
}
