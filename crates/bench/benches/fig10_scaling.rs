//! Regenerates Fig. 10: BFS strong scaling on the HammerBlade manycore
//! (32→256 cores) and on Swarm (1→64 cores).
//!
//! Runs on the in-tree timing harness (warmup + median-of-N + one JSON
//! line per core count on stdout).

use std::time::Duration;

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_hb::HbGraphVm;
use ugc_backend_swarm::SwarmGraphVm;
use ugc_bench::{tuned_schedule_for, Harness};
use ugc_graph::{Dataset, Scale};

fn externs() -> std::collections::HashMap<String, ugc_runtime::value::Value> {
    let mut m = std::collections::HashMap::new();
    m.insert(
        "start_vertex".to_string(),
        ugc_runtime::value::Value::Int(0),
    );
    m
}

fn fig10a(h: &Harness) {
    let dataset = Dataset::RoadCentral;
    let graph = dataset.generate(Scale::Tiny);
    for rows in [2usize, 4, 8, 16] {
        h.bench(
            "fig10a/hammerblade_bfs",
            &format!("{}cores", rows * 16),
            || {
                let mut comp = Compiler::new(Algorithm::Bfs);
                comp.start_vertex(0).schedule(
                    Algorithm::Bfs.schedule_path(),
                    tuned_schedule_for(Target::HammerBlade, Algorithm::Bfs, &graph),
                );
                let prog = comp.compile().expect("compiles");
                let run = HbGraphVm::with_rows(rows)
                    .execute(prog, &graph, &externs())
                    .expect("runs");
                Duration::from_nanos(run.cycles)
            },
        );
    }
}

fn fig10b(h: &Harness) {
    let dataset = Dataset::RoadCentral;
    let graph = dataset.generate(Scale::Tiny);
    for cores in [1usize, 4, 16, 64] {
        h.bench("fig10b/swarm_bfs", &format!("{cores}cores"), || {
            let mut comp = Compiler::new(Algorithm::Bfs);
            comp.start_vertex(0).schedule(
                Algorithm::Bfs.schedule_path(),
                tuned_schedule_for(Target::Swarm, Algorithm::Bfs, &graph),
            );
            let prog = comp.compile().expect("compiles");
            let run = SwarmGraphVm::with_cores(cores)
                .execute(prog, &graph, &externs())
                .expect("runs");
            Duration::from_nanos(run.cycles)
        });
    }
}

fn main() {
    let h = Harness::from_args();
    fig10a(&h);
    fig10b(&h);
}
