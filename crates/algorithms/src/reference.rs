//! Sequential reference implementations used to validate every backend.

use std::collections::VecDeque;

use ugc_graph::{Graph, VertexId};

/// The DSL's "infinite distance" marker (`int` max).
pub const INF: i64 = i32::MAX as i64;

/// BFS levels from `src`; `-1` for unreachable vertices.
pub fn bfs_levels(g: &Graph, src: VertexId) -> Vec<i64> {
    let mut level = vec![-1i64; g.num_vertices()];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &u in g.out_neighbors(v) {
            if level[u as usize] == -1 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    level
}

/// BFS parent pointers from `src` (the BFS algorithm's `parent` vector):
/// `parent[src] == src`, `-1` for unreachable vertices. Any valid BFS
/// tree passes the validators; this one is the first-discovered tree.
pub fn bfs_parents(g: &Graph, src: VertexId) -> Vec<i64> {
    let mut parent = vec![-1i64; g.num_vertices()];
    let mut q = VecDeque::new();
    parent[src as usize] = src as i64;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &u in g.out_neighbors(v) {
            if parent[u as usize] == -1 {
                parent[u as usize] = v as i64;
                q.push_back(u);
            }
        }
    }
    parent
}

/// Dijkstra distances from `src`; [`INF`] for unreachable vertices.
pub fn dijkstra(g: &Graph, src: VertexId) -> Vec<i64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0i64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let weights = g.out_csr().neighbor_weights(v);
        for (k, &u) in g.out_neighbors(v).iter().enumerate() {
            let w = weights.map_or(1, |ws| ws[k]) as i64;
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Connected-component labels: each vertex gets the minimum vertex id of
/// its (weakly) connected component — the fixpoint of min-label
/// propagation on symmetric graphs.
pub fn cc_labels(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (s, d, _) in g.out_csr().iter_edges() {
        let (rs, rd) = (find(&mut parent, s as usize), find(&mut parent, d as usize));
        if rs != rd {
            // Union by smaller root id so the representative is the min.
            let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as i64).collect()
}

/// PageRank with `iters` damped iterations (the DSL source's exact
/// update schedule, including zero-out-degree handling).
pub fn pagerank(g: &Graph, iters: usize, damp: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let beta = (1.0 - damp) / n as f64;
    let mut old_rank = vec![1.0 / n as f64; n];
    let mut new_rank = vec![0.0f64; n];
    for _ in 0..iters {
        let contrib: Vec<f64> = (0..n as VertexId)
            .map(|v| {
                let d = g.out_degree(v);
                if d == 0 {
                    0.0
                } else {
                    old_rank[v as usize] / d as f64
                }
            })
            .collect();
        for (s, d, _) in g.out_csr().iter_edges() {
            new_rank[d as usize] += contrib[s as usize];
        }
        for v in 0..n {
            old_rank[v] = beta + damp * new_rank[v];
            new_rank[v] = 0.0;
        }
    }
    old_rank
}

/// Brandes single-source dependency scores from `src`: for every vertex
/// `v`, `delta[v] = Σ_{w : v precedes w} σ_v/σ_w · (1 + delta[w])`,
/// the quantity the BC algorithm's `centrality` vector holds.
pub fn bc_dependencies(g: &Graph, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0u64; n];
    let mut level = vec![-1i64; n];
    let mut order: Vec<VertexId> = Vec::new();
    sigma[src as usize] = 1;
    level[src as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &u in g.out_neighbors(v) {
            if level[u as usize] == -1 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
            if level[u as usize] == level[v as usize] + 1 {
                sigma[u as usize] += sigma[v as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &v in g.in_neighbors(w) {
            if level[v as usize] >= 0 && level[v as usize] + 1 == level[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] as f64 / sigma[w as usize] as f64 * (1.0 + delta[w as usize]);
            }
        }
    }
    delta
}

/// Per-vertex triangle counts mirroring the TC source exactly: every
/// directed edge `(s, d)` adds `|N_out(s) ∩ N_out(d)|` to `tri[d]`, via
/// the same [`ugc_graph::Csr::intersect_count`] merge the runtime uses —
/// bit-identical by construction, including duplicate-edge pairing.
pub fn triangle_counts(g: &Graph) -> Vec<i64> {
    let mut tri = vec![0i64; g.num_vertices()];
    for (s, d, _) in g.out_csr().iter_edges() {
        tri[d as usize] += g.intersect_count(s, d) as i64;
    }
    tri
}

/// Total triangles on a symmetric simple graph: each triangle is counted
/// once per direction of each of its three edges in [`triangle_counts`].
pub fn total_triangles(g: &Graph) -> i64 {
    triangle_counts(g).iter().sum::<i64>() / 6
}

/// Coreness of every vertex, mirroring the KCORE source's peeling order:
/// degrees start at out-degree, a vertex killed while `cur_k` is the
/// active stage gets coreness `cur_k - 1`, and each kill decrements the
/// degree of every out-neighbor (multi-edges decrement repeatedly).
pub fn coreness(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices();
    let mut deg: Vec<i64> = (0..n as VertexId).map(|v| g.out_degree(v) as i64).collect();
    let mut core = vec![0i64; n];
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut cur_k = 1i64;
    while remaining > 0 {
        let peel: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| alive[v as usize] && deg[v as usize] < cur_k)
            .collect();
        if peel.is_empty() {
            cur_k += 1;
            continue;
        }
        for &v in &peel {
            alive[v as usize] = false;
            core[v as usize] = cur_k - 1;
        }
        for &v in &peel {
            for &u in g.out_neighbors(v) {
                deg[u as usize] -= 1;
            }
        }
        remaining -= peel.len();
    }
    core
}

/// Labels after synchronous min-label propagation, mirroring the LP
/// source: init `labels[v] = (v + seed) mod n`, then up to `max_iters`
/// rounds of `next[d] = min(labels[d], min over in-edges of labels[s])`
/// adopted synchronously, stopping when a round changes nothing.
pub fn label_propagation(g: &Graph, max_iters: i64, seed: i64) -> Vec<i64> {
    let n = g.num_vertices() as i64;
    if n == 0 {
        return Vec::new();
    }
    // Truncated `%`, matching the runtime's `BinOp::Mod` exactly.
    let mut labels: Vec<i64> = (0..n).map(|v| (v + seed) % n).collect();
    for _ in 0..max_iters {
        let mut next = labels.clone();
        for (s, d, _) in g.out_csr().iter_edges() {
            next[d as usize] = next[d as usize].min(labels[s as usize]);
        }
        if next == labels {
            break;
        }
        labels = next;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graph::generators;

    #[test]
    fn bfs_levels_on_path() {
        let g = generators::path(4);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 2), vec![-1, -1, 0, 1]);
    }

    #[test]
    fn bfs_parents_on_path() {
        let g = generators::path(4);
        assert_eq!(bfs_parents(&g, 0), vec![0, 0, 1, 2]);
        assert_eq!(bfs_parents(&g, 2), vec![-1, -1, 2, 2]);
    }

    #[test]
    fn dijkstra_on_two_communities() {
        let g = generators::two_communities();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0);
        // 0->1 weight 1 (first pushed edge).
        assert_eq!(d[1], 1);
        assert!(d.iter().all(|&x| x < INF));
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let g = ugc_graph::Graph::from_edges(3, &[(0, 1)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn cc_labels_two_components() {
        let g = ugc_graph::Graph::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let l = cc_labels(&g);
        assert_eq!(l, vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = generators::rmat(8, 4, 1, false);
        let pr = pagerank(&g, 20, 0.85);
        let s: f64 = pr.iter().sum();
        // Dangling mass leaks, so <= 1, but should be near 1 on a
        // symmetrized graph with few isolated vertices.
        assert!(s > 0.5 && s <= 1.0 + 1e-9, "sum {s}");
    }

    #[test]
    fn bc_star_center_dominates() {
        let g = generators::star(6);
        let d = bc_dependencies(&g, 1);
        // From leaf 1, all shortest paths go through the hub 0.
        assert!(d[0] > d[2], "{d:?}");
    }

    #[test]
    fn bc_path_dependencies() {
        let g = generators::path(4);
        let d = bc_dependencies(&g, 0);
        // delta[2] = 1 (for 3), delta[1] = 1*(1+1) = 2, delta[0] = 3.
        assert_eq!(d, vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn triangles_on_cliques_and_bipartite() {
        // K4 has C(4,3) = 4 triangles; three disjoint K4s have 12.
        let g = generators::clique_batch(3, 4);
        assert_eq!(total_triangles(&g), 12);
        // Each vertex of a K4 is in C(3,2) = 3 triangles; tri[v] counts
        // each twice per incident edge pair: 6 per vertex here.
        assert!(triangle_counts(&g).iter().all(|&t| t == 6));
        // Complete bipartite graphs are triangle-free.
        let b = generators::bipartite(3, 4);
        assert_eq!(total_triangles(&b), 0);
        assert!(triangle_counts(&b).iter().all(|&t| t == 0));
    }

    #[test]
    fn coreness_on_barbell_and_path() {
        // Two K5s bridged by 3 path vertices: clique vertices sit in the
        // 4-core; the bridge (and the clique endpoints' bridge edges)
        // peel at coreness <= 2.
        let g = generators::barbell(5, 3);
        let c = coreness(&g);
        for v in [0usize, 1, 2, 3] {
            assert_eq!(c[v], 4, "clique interior {v}: {c:?}");
        }
        for v in [5usize, 6, 7] {
            assert!(c[v] <= 2, "bridge {v}: {c:?}");
        }
        // A symmetric path is entirely coreness 1.
        let mut edges = Vec::new();
        for v in 0..5u32 {
            edges.push((v, v + 1));
            edges.push((v + 1, v));
        }
        let p = ugc_graph::Graph::from_edges(6, &edges);
        let cp = coreness(&p);
        assert!(cp.iter().all(|&k| k == 1), "{cp:?}");
    }

    #[test]
    fn lp_converges_to_component_minimum() {
        // With seed 0 the init is the identity labeling, so the fixpoint
        // is the component-min — CC's answer.
        let g = generators::two_communities();
        assert_eq!(label_propagation(&g, 50, 0), cc_labels(&g));
        // Seed rotation relabels but preserves the partition.
        let rotated = label_propagation(&g, 50, 3);
        let cc = cc_labels(&g);
        let n = g.num_vertices();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    rotated[a] == rotated[b],
                    cc[a] == cc[b],
                    "partition mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn lp_zero_iters_is_initial_labeling() {
        let g = generators::path(4);
        assert_eq!(label_propagation(&g, 0, 1), vec![1, 2, 3, 0]);
    }
}
