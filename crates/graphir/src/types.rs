//! GraphIR data types and operator enums (paper Table II, upper half).

use std::fmt;

/// The type of a GraphIR variable, property element, or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// A vertex id (stored as an integer; `-1` conventionally means "none").
    Vertex,
    /// A set of vertices (a frontier). Concrete representation is a
    /// backend decision — see [`VertexSetRepr`].
    VertexSet,
    /// The graph (edge set). Can be weighted or unweighted.
    EdgeSet,
    /// A priority queue of vertices keyed by an integer property.
    PrioQueue,
    /// A list of vertex sets (used by betweenness centrality to record the
    /// frontier of every round for the backward pass).
    FrontierList,
}

impl Type {
    /// Whether values of this type are scalars (fit in a register).
    pub fn is_scalar(self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Bool | Type::Vertex)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Int => "int",
            Type::Float => "float",
            Type::Bool => "bool",
            Type::Vertex => "Vertex",
            Type::VertexSet => "VertexSet",
            Type::EdgeSet => "EdgeSet",
            Type::PrioQueue => "PrioQueue",
            Type::FrontierList => "FrontierList",
        };
        f.write_str(s)
    }
}

/// Edge traversal direction of an `EdgeSetIterator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Iterate out-edges of the input frontier ("push").
    #[default]
    Push,
    /// Iterate in-edges of candidate destinations ("pull").
    Pull,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Push => "PUSH",
            Direction::Pull => "PULL",
        })
    }
}

/// Concrete representation of a vertex set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VertexSetRepr {
    /// A dense array of member vertex ids.
    #[default]
    Sparse,
    /// One bit per vertex.
    Bitmap,
    /// One byte per vertex.
    Boolmap,
}

impl fmt::Display for VertexSetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VertexSetRepr::Sparse => "SPARSE",
            VertexSetRepr::Bitmap => "BITMAP",
            VertexSetRepr::Boolmap => "BOOLMAP",
        })
    }
}

/// Reduction operators for `Reduce` statements (`+=`, `min=`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `target += value`
    Sum,
    /// `target min= value` (keep minimum)
    Min,
    /// `target max= value` (keep maximum)
    Max,
    /// `target |= value` for booleans
    Or,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReduceOp::Sum => "+=",
            ReduceOp::Min => "min=",
            ReduceOp::Max => "max=",
            ReduceOp::Or => "|=",
        })
    }
}

/// Binary operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
    /// Int → float conversion.
    ToFloat,
    /// Float → int conversion (truncating).
    ToInt,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::ToFloat => "(float)",
            UnOp::ToInt => "(int)",
        })
    }
}

/// Built-in operations exposed to algorithm code and passes as expression
/// intrinsics (runtime/host API calls in the generated code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `VertexSetSize(set)` — number of active vertices.
    VertexSetSize,
    /// `NumVertices(graph)` — total vertices of the graph.
    NumVertices,
    /// `NumEdges(graph)` — total directed edges.
    NumEdges,
    /// `OutDegree(graph, v)`.
    OutDegree,
    /// `InDegree(graph, v)`.
    InDegree,
    /// `EdgeWeight()` — weight of the edge currently being applied
    /// (valid only inside an edge UDF).
    EdgeWeight,
    /// `PrioQueueFinished(queue)` — whether the priority queue is drained.
    PrioQueueFinished,
    /// `DequeueReadySet(queue)` — pop the next ready bucket as a vertex set.
    DequeueReadySet,
    /// `ListSize(list)` — number of frontiers stored in a frontier list.
    ListSize,
    /// `Abs(x)` — absolute value (float result), the DSL's `fabs`.
    Abs,
    /// `IntersectCount(graph, a, b)` — number of common out-neighbors of
    /// `a` and `b` (sorted-merge count; the triangle-counting primitive).
    IntersectCount,
    /// `NewVertexSet(count)` — allocate a vertex set containing vertices
    /// `0..count` (0 = empty set).
    NewVertexSet,
    /// `NewFrontierList()` — allocate an empty frontier list.
    NewFrontierList,
    /// `StartTimer()` / `StopTimer()` pair for measurement regions.
    StartTimer,
    /// See [`Intrinsic::StartTimer`].
    StopTimer,
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::VertexSetSize => "VertexSetSize",
            Intrinsic::NumVertices => "NumVertices",
            Intrinsic::NumEdges => "NumEdges",
            Intrinsic::OutDegree => "OutDegree",
            Intrinsic::InDegree => "InDegree",
            Intrinsic::EdgeWeight => "EdgeWeight",
            Intrinsic::PrioQueueFinished => "PrioQueueFinished",
            Intrinsic::DequeueReadySet => "DequeueReadySet",
            Intrinsic::ListSize => "ListSize",
            Intrinsic::Abs => "Abs",
            Intrinsic::IntersectCount => "IntersectCount",
            Intrinsic::NewVertexSet => "NewVertexSet",
            Intrinsic::NewFrontierList => "NewFrontierList",
            Intrinsic::StartTimer => "StartTimer",
            Intrinsic::StopTimer => "StopTimer",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_round_trip_names() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::VertexSet.to_string(), "VertexSet");
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::Vertex.is_scalar());
        assert!(!Type::EdgeSet.is_scalar());
    }

    #[test]
    fn binop_comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(Direction::Push.to_string(), "PUSH");
        assert_eq!(VertexSetRepr::Bitmap.to_string(), "BITMAP");
        assert_eq!(ReduceOp::Min.to_string(), "min=");
        assert_eq!(UnOp::Not.to_string(), "!");
        assert_eq!(Intrinsic::VertexSetSize.to_string(), "VertexSetSize");
    }
}
