//! The schedule-space matrix: a broad sweep of schedule combinations per
//! backend, all validated. This is the paper's central claim — the
//! algorithm never changes, only schedules do, and every point in the
//! space is correct.

use ugc_algorithms::Algorithm;
use ugc_backend_cpu::{CpuGraphVm, CpuSchedule};
use ugc_backend_gpu::{FrontierCreation, GpuGraphVm, GpuSchedule, LoadBalance};
use ugc_backend_hb::{HbGraphVm, HbLoadBalance, HbSchedule};
use ugc_backend_swarm::{Frontiers, SwarmGraphVm, SwarmSchedule, TaskGranularity};
use ugc_integration::{compile, externs_for, validate};
use ugc_schedule::{Parallelization, PullFrontierRepr, SchedDirection, ScheduleRef};

fn graph() -> ugc_graph::Graph {
    ugc_graph::generators::rmat(8, 5, 13, true)
}

#[test]
fn cpu_schedule_matrix() {
    let graph = graph();
    for dir in [
        SchedDirection::Push,
        SchedDirection::Pull,
        SchedDirection::Hybrid,
    ] {
        for par in [
            Parallelization::VertexBased,
            Parallelization::EdgeAwareVertexBased,
        ] {
            for pf in [PullFrontierRepr::Boolmap, PullFrontierRepr::Bitmap] {
                for dedup in [false, true] {
                    let sched = CpuSchedule::new()
                        .with_direction(dir)
                        .with_parallelization(par)
                        .with_pull_frontier(pf)
                        .with_deduplication(dedup)
                        .with_serial_threshold(8);
                    let prog = compile(Algorithm::Bfs, Some(ScheduleRef::simple(sched)));
                    let run = CpuGraphVm::with_threads(4)
                        .execute(prog, &graph, &externs_for(Algorithm::Bfs, 0))
                        .unwrap_or_else(|e| panic!("{dir:?}/{par:?}/{pf:?}/{dedup}: {e}"));
                    validate(Algorithm::Bfs, &graph, 0, &|p| run.property_ints(p), &|p| {
                        run.property_floats(p)
                    });
                }
            }
        }
    }
}

#[test]
fn gpu_schedule_matrix() {
    let graph = graph();
    for lb in LoadBalance::ALL {
        for fc in [
            FrontierCreation::Fused,
            FrontierCreation::UnfusedBoolmap,
            FrontierCreation::UnfusedBitmap,
        ] {
            for fusion in [false, true] {
                let sched = GpuSchedule::new()
                    .with_load_balance(lb)
                    .with_frontier_creation(fc)
                    .with_kernel_fusion(fusion);
                let prog = compile(Algorithm::Cc, Some(ScheduleRef::simple(sched)));
                let run = GpuGraphVm::default()
                    .execute(prog, &graph, &externs_for(Algorithm::Cc, 0))
                    .unwrap_or_else(|e| panic!("{lb:?}/{fc:?}/{fusion}: {e}"));
                validate(Algorithm::Cc, &graph, 0, &|p| run.property_ints(p), &|p| {
                    run.property_floats(p)
                });
            }
        }
    }
}

#[test]
fn swarm_schedule_matrix() {
    let graph = graph();
    for frontiers in [Frontiers::Buffered, Frontiers::VertexsetToTasks] {
        for gran in [TaskGranularity::Coarse, TaskGranularity::FineGrained] {
            for hints in [false, true] {
                for delta in [1, 8] {
                    let sched = SwarmSchedule::new()
                        .with_frontiers(frontiers)
                        .with_task_granularity(gran)
                        .with_spatial_hints(hints)
                        .with_delta(delta);
                    let prog = compile(Algorithm::Sssp, Some(ScheduleRef::simple(sched)));
                    let run = SwarmGraphVm::default()
                        .execute(prog, &graph, &externs_for(Algorithm::Sssp, 0))
                        .unwrap_or_else(|e| panic!("{frontiers:?}/{gran:?}/{hints}/{delta}: {e}"));
                    validate(
                        Algorithm::Sssp,
                        &graph,
                        0,
                        &|p| run.property_ints(p),
                        &|p| run.property_floats(p),
                    );
                }
            }
        }
    }
}

#[test]
fn hb_schedule_matrix() {
    let graph = graph();
    for lb in [
        HbLoadBalance::VertexBased,
        HbLoadBalance::EdgeBased,
        HbLoadBalance::Aligned,
    ] {
        for blocked in [false, true] {
            for block in [16, 64, 256] {
                let sched = HbSchedule::new()
                    .with_load_balance(lb)
                    .with_blocked_access(blocked)
                    .with_block_size(block);
                let prog = compile(Algorithm::PageRank, Some(ScheduleRef::simple(sched)));
                let run = HbGraphVm::default()
                    .execute(prog, &graph, &externs_for(Algorithm::PageRank, 0))
                    .unwrap_or_else(|e| panic!("{lb:?}/{blocked}/{block}: {e}"));
                validate(
                    Algorithm::PageRank,
                    &graph,
                    0,
                    &|p| run.property_ints(p),
                    &|p| run.property_floats(p),
                );
            }
        }
    }
}

#[test]
fn composite_schedules_on_every_backend() {
    use ugc_schedule::{CompositeCriteria, CompositeSchedule};
    let graph = graph();
    // Push-when-sparse / pull-when-dense composite, per backend's types.
    let cases: Vec<(&str, ScheduleRef)> = vec![
        (
            "cpu",
            ScheduleRef::composite(CompositeSchedule::new(
                CompositeCriteria::InputSetSize { threshold: 0.2 },
                ScheduleRef::simple(CpuSchedule::new()),
                ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Pull)),
            )),
        ),
        (
            "gpu",
            ScheduleRef::composite(CompositeSchedule::new(
                CompositeCriteria::InputSetSize { threshold: 0.2 },
                ScheduleRef::simple(GpuSchedule::new()),
                ScheduleRef::simple(GpuSchedule::new().with_direction(SchedDirection::Pull)),
            )),
        ),
        (
            "hb",
            ScheduleRef::composite(CompositeSchedule::new(
                CompositeCriteria::InputSetSize { threshold: 0.2 },
                ScheduleRef::simple(HbSchedule::new()),
                ScheduleRef::simple(HbSchedule::new().with_direction(SchedDirection::Pull)),
            )),
        ),
    ];
    for (name, sched) in cases {
        let prog = compile(Algorithm::Bfs, Some(sched));
        let parents = match name {
            "cpu" => {
                let run = CpuGraphVm::default()
                    .execute(prog, &graph, &externs_for(Algorithm::Bfs, 0))
                    .unwrap();
                run.property_ints("parent")
            }
            "gpu" => {
                let run = GpuGraphVm::default()
                    .execute(prog, &graph, &externs_for(Algorithm::Bfs, 0))
                    .unwrap();
                run.property_ints("parent")
            }
            _ => {
                let run = HbGraphVm::default()
                    .execute(prog, &graph, &externs_for(Algorithm::Bfs, 0))
                    .unwrap();
                run.property_ints("parent")
            }
        };
        ugc_algorithms::validate::check_bfs_parents(&graph, 0, &parents)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
