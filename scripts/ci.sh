#!/usr/bin/env bash
# Tier-1 verification gate (referenced from README.md).
#
# The workspace is hermetic — zero crates-io dependencies — so everything
# here runs with --offline and must pass with no network access. Any
# nonzero exit fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo test under UGC_THREADS=1 (deterministic serial execution)"
# The pool honors UGC_THREADS as a global cap; 1 means every parallel_for
# runs inline. Scoped to the crates that exercise the pool to bound time.
# ugc-integration includes the cross-backend differential conformance
# suite (tests/differential_backends.rs) and the pool counter tests, so
# both run serially here — the latter asserts steals == 0 exactly.
UGC_THREADS=1 cargo test -q --offline -p ugc-runtime -p ugc-backend-cpu -p ugc-integration

echo "== cargo test under UGC_TELEMETRY=0 (counters compiled to no-ops)"
# Disabled telemetry must leave results identical and registries empty;
# telemetry_invariants asserts both, the differential suite proves the
# answers don't change, pool_threads checks the all-zero counter branch,
# and failure_modes drives the repro CLI's telemetry-off exit path.
UGC_TELEMETRY=0 cargo test -q --offline -p ugc-telemetry
UGC_TELEMETRY=0 cargo test -q --offline -p ugc-integration \
  --test telemetry_invariants --test differential_backends \
  --test pool_threads --test failure_modes

echo "== repro --profile smoke (attribution tables must balance)"
# repro itself exits nonzero when a backend's components fail to sum to
# its total; on top of that, assert the table actually rendered for all
# four backends and the snapshot landed in the JSON-lines output.
rm -f target/ci-profile-smoke.json
profile_out="$(UGC_BENCH_OUT=target/ci-profile-smoke.json \
  cargo run --release --offline -q -p ugc-bench --bin repro -- --scale tiny --profile all)"
balanced=$(printf '%s\n' "$profile_out" | grep -c "components sum to total" || true)
if [ "$balanced" -ne 4 ]; then
  echo "profile smoke: expected 4 balanced attribution tables, saw $balanced" >&2
  exit 1
fi
grep -q '"counter":"sim_gpu.cycles.total"' target/ci-profile-smoke.json || {
  echo "profile smoke: telemetry snapshot missing from JSON output" >&2
  exit 1
}

echo "== kernel dispatch smoke (compiled kernels engage; fallback env honored)"
# A default CPU profile run must dispatch through the compiled kernel
# library (nonzero cpu.kernel.specialized in the snapshot); the same run
# under UGC_CPU_KERNELS=0 must go entirely through the interpreter —
# the specialized counter never moves, the fallback counter does.
rm -f target/ci-kernels-on.json target/ci-kernels-off.json
UGC_BENCH_OUT=target/ci-kernels-on.json \
  cargo run --release --offline -q -p ugc-bench --bin repro -- --scale tiny --profile cpu \
  > /dev/null
grep -Eq '"counter":"cpu.kernel.specialized","value":[1-9]' target/ci-kernels-on.json || {
  echo "kernel smoke: cpu.kernel.specialized is zero/absent on a default run" >&2
  exit 1
}
UGC_CPU_KERNELS=0 UGC_BENCH_OUT=target/ci-kernels-off.json \
  cargo run --release --offline -q -p ugc-bench --bin repro -- --scale tiny --profile cpu \
  > /dev/null
if grep -Eq '"counter":"cpu.kernel.specialized","value":[1-9]' target/ci-kernels-off.json; then
  echo "kernel smoke: UGC_CPU_KERNELS=0 still dispatched compiled kernels" >&2
  exit 1
fi
grep -Eq '"counter":"cpu.kernel.fallback","value":[1-9]' target/ci-kernels-off.json || {
  echo "kernel smoke: forced-fallback run recorded no interpreter dispatches" >&2
  exit 1
}

echo "== telemetry centralization gate"
# Every perf counter lives in crates/telemetry. No other crate may
# declare a raw `static ... AtomicU64` counter — property storage
# (Vec<AtomicU64> fields) and test-local atomics are fine; the gate is
# on statics, which is how ad-hoc perf counters creep back in.
if grep -rn --include='*.rs' 'static .*AtomicU64' crates | grep -v '^crates/telemetry/'; then
  echo "telemetry gate: raw static AtomicU64 counter outside crates/telemetry" >&2
  exit 1
fi

echo "== chaos smoke (seeded faults; supervised runs must stay reference-equal)"
# A deterministic fault schedule across all three simulator domains. The
# repro chaos experiment itself exits 1 on any silent wrong answer or if
# no resilience counter moved; on top of that, assert every one of the 8
# (algorithm x backend) rows recovered to a reference-equal result with
# these seeds.
chaos_env='gpu:kernel_launch_fail:p=0.3:seed=7,swarm:task_abort_storm:p=0.2:seed=3,hb:dram_bit_error:p=0.05:seed=9'
chaos_out="$(UGC_FAULTS="$chaos_env" \
  cargo run --release --offline -q -p ugc-bench --bin repro -- --scale tiny chaos)"
recovered=$(printf '%s\n' "$chaos_out" | grep -c "reference-equal" || true)
if [ "$recovered" -ne 8 ]; then
  echo "chaos smoke: expected 8 reference-equal rows, saw $recovered" >&2
  printf '%s\n' "$chaos_out" >&2
  exit 1
fi

echo "== algorithm suite differential smoke (tc/kcore/lp across all four backends)"
# Each new algorithm's headline scalar must exist and agree across every
# backend at tiny scale: the triangle total, the maximum coreness, and the
# number of label classes are all backend-independent facts about the
# graph, so any divergence is a wrong answer, not noise.
for spec in "tc triangles" "kcore max_coreness" "lp label_classes"; do
  algo="${spec% *}"
  key="${spec#* }"
  want=""
  for target in cpu gpu swarm hb; do
    run_out="$(cargo run --release --offline -q -p ugc-bench --bin repro -- \
      --scale tiny run "$target" "$algo" RN)"
    val="$(printf '%s\n' "$run_out" | grep -o "${key}=[0-9]*" | head -1 | cut -d= -f2)"
    if [ -z "$val" ]; then
      echo "algorithm smoke: $target/$algo printed no ${key}=: $run_out" >&2
      exit 1
    fi
    if [ -z "$want" ]; then
      want="$val"
    elif [ "$val" != "$want" ]; then
      echo "algorithm smoke: $target/$algo ${key}=$val diverges from $want" >&2
      exit 1
    fi
  done
done

echo "== algorithm conformance gate (every registered algorithm is differentially tested)"
# The frontend registry (Algorithm::ALL) is the source of truth: every
# variant listed there must appear in the cross-backend differential
# conformance suite. Adding an algorithm without conformance coverage
# fails the gate.
registry="$(awk '/pub const ALL/,/\];/' crates/algorithms/src/lib.rs \
  | grep -o 'Algorithm::[A-Za-z]*' | sort -u)"
if [ "$(printf '%s\n' "$registry" | wc -l)" -lt 8 ]; then
  echo "conformance gate: failed to extract the algorithm registry" >&2
  exit 1
fi
for variant in $registry; do
  grep -q "$variant\b" tests/differential_backends.rs || {
    echo "conformance gate: $variant is registered but missing from tests/differential_backends.rs" >&2
    exit 1
  }
done

echo "== backend VM containment gate"
# GraphVM execute paths must surface failures as classed errors through
# the contain() boundary — never unwrap or panic in production code. Test
# modules are exempt: the gate stops scanning at the first #[cfg(test)].
containment_bad=0
for f in crates/backend-*/src/vm.rs crates/backend-*/src/executor.rs; do
  if ! awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)|panic!\(/{print FILENAME ": " $0; found=1} END{exit found}' "$f"; then
    containment_bad=1
  fi
done
if [ "$containment_bad" -ne 0 ]; then
  echo "containment gate: unwrap()/panic! in backend VM production code (see lines above)" >&2
  exit 1
fi

echo "== autotuner smoke (tiny scale, fixed seed, capped budget)"
# A deterministic end-to-end tune of one triple per simulator target; the
# second GPU invocation must hit the persistent cache without re-measuring.
export UGC_TUNE_CACHE="target/ci-tuning-cache.jsonl"
rm -f "$UGC_TUNE_CACHE"
tune() {
  cargo run --release --offline -q -p ugc-bench --bin repro -- \
    --scale tiny --seed 7 --budget 10 tune "$@"
}
tune gpu bfs PK
tune swarm sssp RN
tune hb pr PK
# Capture to a file rather than piping into grep -q: an early-exiting
# grep would hand repro a broken pipe mid-print.
tune gpu bfs PK > target/ci-tune-rerun.txt
grep -q "cache hit" target/ci-tune-rerun.txt || {
  echo "autotuner smoke: expected a cache hit on the second GPU tune" >&2
  exit 1
}
grep -q "winner profile:" target/ci-tune-rerun.txt || {
  echo "autotuner smoke: cached tune must replay the winner's profile" >&2
  exit 1
}

echo "== tune --explain smoke (cost model must prune and account its budget)"
# A fresh guided GPU tune at a budget that lets the cost model engage:
# the report must name at least one pruned axis with its dominant
# component, and the measured/pruned/considered budget line must balance.
cargo run --release --offline -q -p ugc-bench --bin repro -- \
  --scale tiny --seed 7 --budget 24 --no-cache tune --explain gpu bfs PK \
  > target/ci-tune-explain.txt
grep -q 'pruned axis `' target/ci-tune-explain.txt || {
  echo "explain smoke: no pruned axis reported" >&2
  cat target/ci-tune-explain.txt >&2
  exit 1
}
awk -F'[= ]' '/^budget: /{
  for (i = 1; i <= NF; i++) {
    if ($i == "measured") m = $(i+1)
    if ($i == "pruned") p = $(i+1)
    if ($i == "considered") c = $(i+1)
  }
  if (m + p != c) { print "explain smoke: budget line does not balance: " $0 > "/dev/stderr"; exit 1 }
  found = 1
}
END { if (!found) { print "explain smoke: no budget line" > "/dev/stderr"; exit 1 } }' \
  target/ci-tune-explain.txt

echo "== serve smoke (unix socket; pair coalesces; no thread leak; clean shutdown)"
# Boot the daemon on a unix socket, run a batched pair (two concurrent BFS
# clients against a single admission slot and a wide batch window, so the
# late arrival coalesces) plus one degenerate non-batchable query, then
# assert from `stats` that coalescing happened and that the pool worker
# count is identical across two captures — serving must not leak threads.
repro_bin="target/release/repro"
serve_sock="target/ci-serve.sock"
rm -f "$serve_sock"
"$repro_bin" serve --socket "$serve_sock" --admit 1 --batch-max 8 --batch-window-ms 500 \
  > target/ci-serve-daemon.txt 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$serve_sock" ] && break
  sleep 0.1
done
if ! [ -S "$serve_sock" ]; then
  echo "serve smoke: daemon never bound $serve_sock" >&2
  kill "$serve_pid" 2> /dev/null || true
  exit 1
fi
"$repro_bin" client "unix:$serve_sock" query bfs RN source=0 > target/ci-serve-q1.txt &
client_a=$!
"$repro_bin" client "unix:$serve_sock" query bfs RN source=7 > target/ci-serve-q2.txt &
client_b=$!
wait "$client_a"
wait "$client_b"
workers_before="$("$repro_bin" client "unix:$serve_sock" stats \
  | grep -o 'pool_workers=[0-9]*')"
"$repro_bin" client "unix:$serve_sock" query cc RN > target/ci-serve-q3.txt
stats_out="$("$repro_bin" client "unix:$serve_sock" stats)"
coalesced="$(printf '%s\n' "$stats_out" | grep -o 'coalesced=[0-9]*' | cut -d= -f2)"
if [ "${coalesced:-0}" -eq 0 ]; then
  echo "serve smoke: concurrent BFS pair never coalesced: $stats_out" >&2
  exit 1
fi
workers_after="$(printf '%s\n' "$stats_out" | grep -o 'pool_workers=[0-9]*')"
if [ "$workers_before" != "$workers_after" ]; then
  echo "serve smoke: pool worker count drifted ($workers_before -> $workers_after)" >&2
  exit 1
fi
# Background tuning: the first PR query enqueues a tune job; once the
# gate goes idle the tuner resolves it and every later supervised PR
# query must run under the tuned schedule (tuned_hits > 0). Poll with a
# bounded retry loop — the tuner deliberately waits for idle.
tuned_hits=0
for _ in $(seq 1 60); do
  "$repro_bin" client "unix:$serve_sock" query pr RN > /dev/null
  tuned_hits="$("$repro_bin" client "unix:$serve_sock" stats \
    | grep -o 'tuned_hits=[0-9]*' | cut -d= -f2)"
  [ "${tuned_hits:-0}" -gt 0 ] && break
  sleep 0.2
done
if [ "${tuned_hits:-0}" -eq 0 ]; then
  echo "serve smoke: background tuner never produced a tuned-schedule hit" >&2
  "$repro_bin" client "unix:$serve_sock" stats >&2 || true
  exit 1
fi
"$repro_bin" client "unix:$serve_sock" shutdown > /dev/null
wait "$serve_pid"
grep -q "shutdown complete" target/ci-serve-daemon.txt || {
  echo "serve smoke: daemon did not report a clean shutdown" >&2
  exit 1
}

echo "== chaos-serve smoke (daemon under faults: breaker opens, deadlines shed, clean drain)"
# repro chaos-serve boots an in-process daemon on a unix socket under the
# serve fault schedule, then exercises the whole failure surface: healthy
# traffic that must survive injected batch aborts, a poisoned key that
# must open its circuit breaker, tight deadlines that must shed in queue,
# and fuzzed protocol frames that must end in typed errors. The driver
# itself exits 1 unless the ok+errored+shed ledger balances against
# admitted and pool_workers stays stable; on top of that, assert the two
# headline events and the clean drain actually showed up in the output.
chaos_serve_out="$(UGC_FAULTS='serve:batch_abort:p=0.9:seed=7' \
  "$repro_bin" --scale tiny chaos-serve)"
opened="$(printf '%s\n' "$chaos_serve_out" \
  | grep -o 'circuit breaker: [0-9]*' | grep -o '[0-9]*' || echo 0)"
if [ "${opened:-0}" -eq 0 ]; then
  echo "chaos-serve smoke: no query was ever rejected by an open circuit" >&2
  printf '%s\n' "$chaos_serve_out" >&2
  exit 1
fi
shed="$(printf '%s\n' "$chaos_serve_out" \
  | grep -o 'deadline propagation: [0-9]*' | grep -o '[0-9]*' || echo 0)"
if [ "${shed:-0}" -eq 0 ]; then
  echo "chaos-serve smoke: no query was ever deadline-shed in queue" >&2
  printf '%s\n' "$chaos_serve_out" >&2
  exit 1
fi
printf '%s\n' "$chaos_serve_out" | grep -q "drain complete" || {
  echo "chaos-serve smoke: daemon never drained cleanly" >&2
  printf '%s\n' "$chaos_serve_out" >&2
  exit 1
}

echo "== bench snapshot smoke (tiny, output under target/)"
# Exercise the snapshot pipeline end to end without touching the tracked
# BENCH_<n>.json: one sample per bench, output redirected to target/.
UGC_BENCH_OUT="target/ci-bench-smoke.json" UGC_BENCH_SAMPLES=1 UGC_BENCH_WARMUP=0 \
  scripts/bench_snapshot.sh
grep -q '"group"' target/ci-bench-smoke.json || {
  echo "bench snapshot smoke: no bench entries in output" >&2
  exit 1
}

echo "tier-1 gate: OK"
