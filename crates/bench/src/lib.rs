//! The benchmark harness shared by the `harness = false` benches and the
//! `repro` binary that regenerates every table and figure of the paper.
//! Timing/reporting lives in [`harness`] — the in-tree, offline
//! replacement for Criterion (warmup + median-of-N + JSON lines).
//!
//! The key ingredient is [`tuned_schedule`]: the per-(architecture,
//! algorithm, graph-class) schedules of the paper's §IV-A ("we tune the
//! schedules for each application and graph pair, but always compile from
//! exactly the same algorithm specification"). [`baseline_schedule`] is
//! each GraphVM's default.

pub mod harness;
pub mod profile;

pub use harness::{Harness, Stats};
pub use profile::{attribution_from, profile_backend, try_measure_profiled, Attribution};
pub use ugc_autotune::{Strategy, TuneError, TuneOutcome, Tuned, Tuner};

use std::path::Path;

use ugc::{Algorithm, Compiler, Target};
use ugc_autotune::{
    graph_fingerprint, space_for, space_params, tune_cached, tune_warm, CacheKey, GraphShape,
    Sample, TuningCache,
};
use ugc_backend_cpu::CpuSchedule;
use ugc_backend_gpu::{FrontierCreation, GpuSchedule, LoadBalance};
use ugc_backend_hb::{HbLoadBalance, HbSchedule};
use ugc_backend_swarm::{Frontiers, SwarmSchedule, TaskGranularity};
use ugc_graph::stats::DegreeProfile;
use ugc_graph::{Dataset, Graph, Scale};
use ugc_schedule::{Parallelization, SchedDirection, ScheduleRef};

/// Which measurement a run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Milliseconds: wall-clock (CPU) or simulated (others).
    pub time_ms: f64,
    /// Simulated cycles (0 on CPU).
    pub cycles: u64,
}

/// The baseline (default) schedule of a GraphVM, as used for the
/// "unoptimized" bars of Fig. 8. The HammerBlade baseline uses hybrid
/// traversal for the data-driven algorithms, exactly as §IV-D notes.
pub fn baseline_schedule(target: Target, algo: Algorithm) -> ScheduleRef {
    match target {
        Target::Cpu => ScheduleRef::simple(CpuSchedule::new()),
        Target::Gpu => ScheduleRef::simple(GpuSchedule::new()),
        Target::Swarm => ScheduleRef::simple(SwarmSchedule::new()),
        Target::HammerBlade => {
            let mut s = HbSchedule::new();
            if matches!(algo, Algorithm::Bfs | Algorithm::Bc | Algorithm::Sssp) {
                s = s.with_direction(SchedDirection::Hybrid);
            }
            ScheduleRef::simple(s)
        }
    }
}

/// The hand-tuned schedule for a (target, algorithm, graph-class) triple —
/// the paper's optimized configurations (§IV-C/D/E). Tuning is per graph,
/// so [`tuned_schedule_for`] (which also sees the graph size) should be
/// preferred; this variant assumes a paper-scale graph.
pub fn tuned_schedule(target: Target, algo: Algorithm, profile: DegreeProfile) -> ScheduleRef {
    tuned_schedule_sized(target, algo, profile, usize::MAX)
}

/// Per-graph tuned schedule.
pub fn tuned_schedule_for(target: Target, algo: Algorithm, graph: &Graph) -> ScheduleRef {
    tuned_schedule_sized(
        target,
        algo,
        ugc_graph::stats::classify(graph),
        graph.num_vertices(),
    )
}

fn tuned_schedule_sized(
    target: Target,
    algo: Algorithm,
    profile: DegreeProfile,
    num_vertices: usize,
) -> ScheduleRef {
    let social = profile == DegreeProfile::PowerLaw;
    match target {
        Target::Cpu => {
            let s =
                match algo {
                    Algorithm::Bfs | Algorithm::Bc => {
                        if social {
                            CpuSchedule::new()
                                .with_direction(SchedDirection::Hybrid)
                                .with_parallelization(Parallelization::EdgeAwareVertexBased)
                        } else {
                            CpuSchedule::new().with_serial_threshold(2048)
                        }
                    }
                    Algorithm::PageRank => CpuSchedule::new()
                        .with_cache_blocking(true)
                        .with_parallelization(Parallelization::EdgeAwareVertexBased),
                    Algorithm::Cc => CpuSchedule::new()
                        .with_parallelization(Parallelization::EdgeAwareVertexBased),
                    Algorithm::Sssp => {
                        if social {
                            // Low-diameter graphs want fine buckets (measured:
                            // larger ∆ only adds re-relaxation work on CPUs).
                            CpuSchedule::new()
                                .with_delta(1)
                                .with_parallelization(Parallelization::EdgeAwareVertexBased)
                        } else {
                            CpuSchedule::new()
                                .with_delta(64)
                                .with_serial_threshold(4096)
                        }
                    }
                    // Per-edge intersection cost scales with the endpoint degree
                    // sum, so skewed graphs need edge-aware chunking.
                    Algorithm::Tc => CpuSchedule::new()
                        .with_parallelization(Parallelization::EdgeAwareVertexBased),
                    // Peel frontiers are small; serialize them below threshold
                    // on bounded-degree graphs, balance by edges on skewed ones.
                    Algorithm::KCore => {
                        if social {
                            CpuSchedule::new()
                                .with_parallelization(Parallelization::EdgeAwareVertexBased)
                        } else {
                            CpuSchedule::new().with_serial_threshold(2048)
                        }
                    }
                    // Topology-driven full sweeps, same shape as PageRank.
                    Algorithm::Lp => CpuSchedule::new()
                        .with_cache_blocking(true)
                        .with_parallelization(Parallelization::EdgeAwareVertexBased),
                };
            ScheduleRef::simple(s)
        }
        Target::Gpu => {
            // Small graphs are kernel-launch-bound, so per-graph tuning
            // also fuses the social-graph schedules there.
            let launch_bound = num_vertices < 16_384;
            let s = match algo {
                Algorithm::Bfs | Algorithm::Bc => {
                    if social {
                        GpuSchedule::new()
                            .with_direction(SchedDirection::Hybrid)
                            .with_load_balance(LoadBalance::Twc)
                            .with_frontier_creation(FrontierCreation::Fused)
                            .with_kernel_fusion(launch_bound)
                    } else {
                        GpuSchedule::new()
                            .with_kernel_fusion(true)
                            .with_frontier_creation(FrontierCreation::Fused)
                    }
                }
                Algorithm::PageRank => {
                    // EdgeBlocking pays off once the rank arrays exceed the
                    // L2; below that the per-block scans are pure overhead
                    // (per-graph tuning, §IV-A).
                    let s = GpuSchedule::new().with_load_balance(LoadBalance::Etwc);
                    if num_vertices >= 1 << 17 {
                        s.with_edge_blocking(1 << 13)
                    } else {
                        s
                    }
                }
                Algorithm::Cc => GpuSchedule::new().with_load_balance(LoadBalance::Etwc),
                Algorithm::Sssp => {
                    if social {
                        GpuSchedule::new()
                            .with_delta(8)
                            .with_load_balance(LoadBalance::Twc)
                            .with_kernel_fusion(launch_bound)
                    } else {
                        GpuSchedule::new().with_delta(64).with_kernel_fusion(true)
                    }
                }
                // Intersection work per edge is degree-sum-skewed: TWC
                // binning keeps warps off the heavy tails.
                Algorithm::Tc => GpuSchedule::new().with_load_balance(LoadBalance::Twc),
                // Many tiny peel rounds: fused frontier creation, and fuse
                // kernels outright when the graph is launch-bound.
                Algorithm::KCore => GpuSchedule::new()
                    .with_frontier_creation(FrontierCreation::Fused)
                    .with_kernel_fusion(launch_bound),
                // Full-sweep label exchange, same regime as CC.
                Algorithm::Lp => GpuSchedule::new().with_load_balance(LoadBalance::Etwc),
            };
            ScheduleRef::simple(s)
        }
        Target::Swarm => {
            let s = match algo {
                Algorithm::Bfs => SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained),
                Algorithm::Sssp => SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained)
                    .with_delta(if social { 4 } else { 16 }),
                Algorithm::PageRank => {
                    // Fine splitting pays off on high-in-degree (social)
                    // graphs (§IV-E); road graphs keep coarse tasks.
                    if social {
                        SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)
                    } else {
                        SwarmSchedule::new()
                    }
                }
                // Label propagation's tiny updates don't repay task
                // splitting in this model; per-graph tuning keeps the
                // default (measured — a deviation from the paper's CC
                // gains, noted in EXPERIMENTS.md).
                Algorithm::Cc => SwarmSchedule::new(),
                Algorithm::Bc => {
                    SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)
                }
                // Intersection tasks are heavy and uneven on skewed graphs;
                // bounded-degree graphs keep coarse tasks.
                Algorithm::Tc => {
                    if social {
                        SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)
                    } else {
                        SwarmSchedule::new()
                    }
                }
                // Peel sets are natural task sources.
                Algorithm::KCore => SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained),
                // Tiny label updates don't repay splitting (same finding as
                // CC above).
                Algorithm::Lp => SwarmSchedule::new(),
            };
            ScheduleRef::simple(s)
        }
        Target::HammerBlade => {
            let s = match algo {
                Algorithm::Bfs | Algorithm::Bc | Algorithm::Cc => {
                    // Aligned blocks need enough line-disjoint work units to
                    // keep 128 cores busy; tiny graphs fall back to
                    // degree-balanced chunks (per-graph tuning, §IV-A).
                    let lb = if num_vertices >= 4096 {
                        HbLoadBalance::Aligned
                    } else {
                        HbLoadBalance::EdgeBased
                    };
                    HbSchedule::new()
                        .with_direction(if matches!(algo, Algorithm::Bfs | Algorithm::Bc) {
                            SchedDirection::Hybrid
                        } else {
                            SchedDirection::Push
                        })
                        .with_load_balance(lb)
                }
                Algorithm::PageRank => HbSchedule::new()
                    .with_blocked_access(true)
                    .with_block_size(64),
                Algorithm::Sssp => HbSchedule::new()
                    .with_direction(SchedDirection::Hybrid)
                    .with_blocked_access(true)
                    .with_block_size(64)
                    .with_delta(if social { 8 } else { 32 }),
                // Adjacency-merge work per edge varies wildly; edge-based
                // chunks balance the manycore tiles.
                Algorithm::Tc => HbSchedule::new().with_load_balance(HbLoadBalance::EdgeBased),
                Algorithm::KCore => {
                    // Peel rounds shrink fast; aligned blocks only pay off
                    // once there are enough surviving vertices per round.
                    // Below that the default balancer already wins —
                    // edge-based chunking just adds bookkeeping.
                    let lb = if num_vertices >= 4096 {
                        HbLoadBalance::Aligned
                    } else {
                        HbLoadBalance::default()
                    };
                    HbSchedule::new().with_load_balance(lb)
                }
                // Regular full sweeps benefit from blocked vector access,
                // same as PageRank.
                Algorithm::Lp => HbSchedule::new()
                    .with_blocked_access(true)
                    .with_block_size(64),
            };
            ScheduleRef::simple(s)
        }
    }
}

/// Runs `(target, algo)` on `graph` with the given schedule, returning the
/// target-appropriate time. CPU runs take the best of `cpu_reps` repeats.
///
/// # Errors
///
/// Returns the compile/execution error message on failure.
pub fn try_measure(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    sched: ScheduleRef,
    cpu_reps: u32,
) -> Result<Measurement, String> {
    let mut compiler = Compiler::new(algo);
    compiler.schedule(algo.schedule_path(), sched);
    if algo.needs_start_vertex() {
        compiler.start_vertex(0);
    }
    if target == Target::Cpu {
        let mut best = f64::INFINITY;
        for _ in 0..cpu_reps.max(1) {
            let r = compiler.run(target, graph).map_err(|e| e.to_string())?;
            best = best.min(r.time_ms);
        }
        Ok(Measurement {
            time_ms: best,
            cycles: 0,
        })
    } else {
        let r = compiler.run(target, graph).map_err(|e| e.to_string())?;
        Ok(Measurement {
            time_ms: r.time_ms,
            cycles: r.cycles,
        })
    }
}

/// Like [`try_measure`], for call sites where failure is a bug.
///
/// # Panics
///
/// Panics if compilation or execution fails (bench configurations must be
/// valid).
pub fn measure(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    sched: ScheduleRef,
    cpu_reps: u32,
) -> Measurement {
    try_measure(target, algo, graph, sched, cpu_reps).expect("bench run")
}

/// Environment variable that switches [`fig8_cell`] (and thus the repro
/// binary's Fig. 8) from the hand-tuned schedules to autotuned winners.
pub const AUTOTUNE_ENV: &str = "UGC_AUTOTUNE";

/// The schedule Fig. 8 compares against the baseline: the hand-tuned one
/// by default, or — when `UGC_AUTOTUNE=1` — the winner of a deterministic
/// autotuning run over the target's declared search space (which always
/// also measures the hand-tuned candidate, so it can only tie or win).
/// Falls back to the hand-tuned schedule if tuning errors out.
pub fn effective_tuned_schedule(target: Target, algo: Algorithm, graph: &Graph) -> ScheduleRef {
    let hand = tuned_schedule_for(target, algo, graph);
    let enabled = std::env::var(AUTOTUNE_ENV).is_ok_and(|v| v == "1" || v == "true");
    if !enabled {
        return hand;
    }
    match autotune(target, algo, graph, &Tuner::default()) {
        Ok(outcome) => outcome.winner().schedule.clone(),
        Err(_) => hand,
    }
}

/// The speedup of the tuned schedule over the baseline schedule — one cell
/// of the Fig. 8 heatmap. Set `UGC_AUTOTUNE=1` to use autotuned winners
/// instead of the hand-tuned table (see [`effective_tuned_schedule`]).
pub fn fig8_cell(target: Target, algo: Algorithm, dataset: Dataset, scale: Scale) -> f64 {
    let graph = dataset.generate(scale);
    let base = measure(target, algo, &graph, baseline_schedule(target, algo), 3);
    let tuned = measure(
        target,
        algo,
        &graph,
        effective_tuned_schedule(target, algo, &graph),
        3,
    );
    base.time_ms / tuned.time_ms
}

/// The reference candidates every tuning run must also measure: the
/// GraphVM's default schedule and the hand-tuned one. Because the search
/// ranks these alongside the space's own points, the winner can never be
/// slower than either.
pub fn pinned_candidates(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
) -> Vec<(String, ScheduleRef)> {
    vec![
        ("baseline".to_string(), baseline_schedule(target, algo)),
        (
            "hand_tuned".to_string(),
            tuned_schedule_for(target, algo, graph),
        ),
    ]
}

/// Autotunes `(target, algo)` on `graph` over the backend's declared
/// search space (the paper's §IV-A notes "techniques like autotuning can
/// find high-performance schedules in relatively little time" — with
/// deterministic simulators, exhaustive search is exact and the seeded
/// greedy search is reproducible).
///
/// # Errors
///
/// Returns [`TuneError`] if the space is empty or every candidate fails —
/// an empty candidate list is a typed error here, not a panic.
pub fn autotune(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    tuner: &Tuner,
) -> Result<TuneOutcome, TuneError> {
    let params = space_params(algo, graph);
    let pinned = pinned_candidates(target, algo, graph);
    ugc_autotune::tune(space_for(target), &params, &pinned, tuner, |sched| {
        try_measure_profiled(target, algo, graph, sched.clone(), 2).map(|(m, profile)| Sample {
            time_ms: m.time_ms,
            cycles: m.cycles,
            profile,
        })
    })
}

/// [`autotune`] with an explicit warm-start point: the entry point for
/// fingerprint-transfer experiments, where the caller carries a donor
/// graph's winner over directly instead of going through a cache file.
/// An invalid point falls back to a cold random restart (the search
/// validates it), so a stale donor can never break the run.
///
/// # Errors
///
/// Returns [`TuneError`] if the space is empty or every candidate fails.
pub fn autotune_warm(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    tuner: &Tuner,
    warm: Option<&[usize]>,
) -> Result<TuneOutcome, TuneError> {
    let params = space_params(algo, graph);
    let pinned = pinned_candidates(target, algo, graph);
    tune_warm(space_for(target), &params, &pinned, tuner, warm, |sched| {
        try_measure_profiled(target, algo, graph, sched.clone(), 2).map(|(m, profile)| Sample {
            time_ms: m.time_ms,
            cycles: m.cycles,
            profile,
        })
    })
}

/// Cache-aware autotuning of a generated dataset: a second call with the
/// same (target, algo, dataset, scale) and cache file returns the stored
/// winner without re-measuring anything.
///
/// # Errors
///
/// Returns [`TuneError`] from the search or from an unreadable/unwritable
/// cache file.
pub fn tune_dataset(
    target: Target,
    algo: Algorithm,
    dataset: Dataset,
    scale: Scale,
    tuner: &Tuner,
    cache_path: Option<&Path>,
) -> Result<Tuned, TuneError> {
    let graph = dataset.generate(scale);
    let params = space_params(algo, &graph);
    let pinned = pinned_candidates(target, algo, &graph);
    let key = CacheKey {
        target: space_for(target).target_name().to_string(),
        algo: algo.name().to_string(),
        fingerprint: graph_fingerprint(&graph),
        scale: scale.name().to_string(),
    };
    let shape = GraphShape::of(&graph);
    let mut cache = match cache_path {
        Some(p) => Some(TuningCache::open(p).map_err(TuneError::Cache)?),
        None => None,
    };
    tune_cached(
        space_for(target),
        &params,
        &pinned,
        tuner,
        cache.as_mut(),
        &key,
        &shape,
        |sched| {
            try_measure_profiled(target, algo, &graph, sched.clone(), 2).map(|(m, profile)| {
                Sample {
                    time_ms: m.time_ms,
                    cycles: m.cycles,
                    profile,
                }
            })
        },
    )
}

/// Parses the harness scale flag.
///
/// # Errors
///
/// Returns a usage message naming the accepted values.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        other => Err(format!(
            "unknown scale `{other}` (expected tiny|small|medium)"
        )),
    }
}

/// Parses a target name as spelled on the `repro -- tune` CLI.
///
/// # Errors
///
/// Returns a usage message naming the accepted values.
pub fn parse_target(s: &str) -> Result<Target, String> {
    match s.to_ascii_lowercase().as_str() {
        "cpu" => Ok(Target::Cpu),
        "gpu" => Ok(Target::Gpu),
        "swarm" => Ok(Target::Swarm),
        "hb" | "hammerblade" => Ok(Target::HammerBlade),
        other => Err(format!(
            "unknown target `{other}` (expected cpu|gpu|swarm|hb)"
        )),
    }
}

/// Parses an algorithm name as spelled on the `repro -- tune` CLI. Unknown
/// spellings get a did-you-mean suggestion when one is close.
///
/// # Errors
///
/// Returns a usage message naming the accepted values.
pub fn parse_algo(s: &str) -> Result<Algorithm, String> {
    if let Some(algo) = Algorithm::from_cli_name(s) {
        return Ok(algo);
    }
    let mut msg = format!("unknown algorithm `{s}` (expected pr|bfs|sssp|cc|bc|tc|kcore|lp)");
    if let Some(hint) = Algorithm::suggest_cli_name(s) {
        msg.push_str(&format!("; did you mean `{hint}`?"));
    }
    Err(msg)
}

/// Parses the `--profile` flag value: one backend name or `all`.
///
/// # Errors
///
/// Returns a usage message naming the accepted values.
pub fn parse_profile(s: &str) -> Result<Vec<Target>, String> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(Target::ALL.to_vec());
    }
    parse_target(s)
        .map(|t| vec![t])
        .map_err(|_| format!("unknown profile `{s}` (expected cpu|gpu|swarm|hb|all)"))
}

/// Parses a dataset abbreviation (Table VIII's RN/RC/RU/PK/HW/LJ/OK/IC/TW/SW).
///
/// # Errors
///
/// Returns a usage message listing the known abbreviations.
pub fn parse_dataset(s: &str) -> Result<Dataset, String> {
    let up = s.to_ascii_uppercase();
    Dataset::ALL
        .into_iter()
        .find(|d| d.abbrev() == up)
        .ok_or_else(|| {
            let known: Vec<&str> = Dataset::ALL.iter().map(|d| d.abbrev()).collect();
            format!(
                "unknown dataset `{s}` (expected one of {})",
                known.join("|")
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_schedules_exist_for_every_combination() {
        for target in Target::ALL {
            for algo in Algorithm::ALL {
                for profile in [DegreeProfile::PowerLaw, DegreeProfile::Bounded] {
                    let _ = tuned_schedule(target, algo, profile);
                    let _ = baseline_schedule(target, algo);
                }
            }
        }
    }

    #[test]
    fn fig8_cell_runs_and_is_positive() {
        let s = fig8_cell(Target::Gpu, Algorithm::Bfs, Dataset::RoadNetCa, Scale::Tiny);
        assert!(s > 0.0, "{s}");
    }

    #[test]
    fn autotune_never_loses_to_baseline_or_hand_tuned() {
        let g = Dataset::RoadNetCa.generate(Scale::Tiny);
        let tuner = Tuner {
            budget: 24,
            seed: 7,
            ..Tuner::default()
        };
        for target in [Target::Gpu, Target::Swarm] {
            let out = autotune(target, Algorithm::Bfs, &g, &tuner).expect("tunes");
            let winner = out.winner();
            for pin in ["baseline", "hand_tuned"] {
                let pinned = out.find(pin).expect("pinned candidate was measured");
                assert!(
                    winner.sample.time_ms <= pinned.sample.time_ms,
                    "{}: winner {} ({}) worse than {pin} ({})",
                    target.name(),
                    winner.name,
                    winner.sample.time_ms,
                    pinned.sample.time_ms
                );
            }
        }
    }

    #[test]
    fn autotune_is_deterministic_for_a_seed() {
        let g = Dataset::Pokec.generate(Scale::Tiny);
        let tuner = Tuner {
            budget: 12,
            seed: 42,
            ..Tuner::default()
        };
        let a = autotune(Target::HammerBlade, Algorithm::Bfs, &g, &tuner).expect("tunes");
        let b = autotune(Target::HammerBlade, Algorithm::Bfs, &g, &tuner).expect("tunes");
        assert_eq!(a.winner().name, b.winner().name);
        assert_eq!(a.explored, b.explored);
    }

    #[test]
    fn tune_dataset_second_run_hits_the_cache() {
        let path = std::env::temp_dir()
            .join("ugc-bench-tune-test")
            .join("cache.jsonl");
        let _ = std::fs::remove_file(&path);
        let tuner = Tuner {
            budget: 6,
            seed: 3,
            ..Tuner::default()
        };
        let first = tune_dataset(
            Target::Swarm,
            Algorithm::Bfs,
            Dataset::RoadNetCa,
            Scale::Tiny,
            &tuner,
            Some(&path),
        )
        .expect("tunes");
        assert!(matches!(first, Tuned::Fresh(_)));
        let second = tune_dataset(
            Target::Swarm,
            Algorithm::Bfs,
            Dataset::RoadNetCa,
            Scale::Tiny,
            &tuner,
            Some(&path),
        )
        .expect("tunes");
        match second {
            Tuned::Cached { entry, schedule } => {
                assert_eq!(entry.winner, first.winner_name());
                assert!(schedule.is_some());
            }
            Tuned::Fresh(_) => panic!("expected a cache hit"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_helpers_accept_and_reject() {
        assert_eq!(parse_scale("tiny"), Ok(Scale::Tiny));
        assert!(parse_scale("huge").unwrap_err().contains("huge"));
        assert_eq!(parse_target("hb"), Ok(Target::HammerBlade));
        assert!(parse_target("tpu").is_err());
        assert_eq!(parse_algo("sssp"), Ok(Algorithm::Sssp));
        assert!(parse_algo("apsp").is_err());
        assert_eq!(parse_dataset("pk"), Ok(Dataset::Pokec));
        assert!(parse_dataset("zz").unwrap_err().contains("RN|RC"));
    }

    #[test]
    fn measure_cpu_and_sim() {
        let g = Dataset::Pokec.generate(Scale::Tiny);
        let cpu = measure(
            Target::Cpu,
            Algorithm::Bfs,
            &g,
            baseline_schedule(Target::Cpu, Algorithm::Bfs),
            2,
        );
        assert!(cpu.time_ms > 0.0);
        assert_eq!(cpu.cycles, 0);
        let gpu = measure(
            Target::Gpu,
            Algorithm::Bfs,
            &g,
            baseline_schedule(Target::Gpu, Algorithm::Bfs),
            1,
        );
        assert!(gpu.cycles > 0);
    }
}
