//! Schedule autotuning: search each GraphVM's declared schedule space and
//! report the winner — the workflow the paper delegates to OpenTuner
//! (§IV-A), here deterministic and offline.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use ugc::{Algorithm, Target};
use ugc_bench::{autotune, Tuner};
use ugc_graph::{Dataset, Scale};

fn main() {
    let tuner = Tuner {
        budget: 32,
        seed: 7,
        ..Tuner::default()
    };
    for dataset in [Dataset::RoadNetCa, Dataset::Pokec] {
        let graph = dataset.generate(Scale::Tiny);
        println!(
            "\n=== {} stand-in ({} vertices, {} edges) ===",
            dataset.abbrev(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for target in Target::ALL {
            for algo in [Algorithm::Bfs, Algorithm::Sssp] {
                let out = match autotune(target, algo, &graph, &tuner) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("{} {}: {e}", target.name(), algo.name());
                        continue;
                    }
                };
                let winner = out.winner();
                let base = out.find("baseline").expect("baseline is pinned");
                println!(
                    "{:>12} {:>5}: best = {:<40} ({:.3} ms, {:.2}x over baseline, \
                     {} of {} points measured, {})",
                    target.name(),
                    algo.name(),
                    winner.name,
                    winner.sample.time_ms,
                    base.sample.time_ms / winner.sample.time_ms.max(1e-12),
                    out.explored,
                    out.cardinality,
                    out.strategy,
                );
            }
        }
    }
}
