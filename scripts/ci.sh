#!/usr/bin/env bash
# Tier-1 verification gate (referenced from README.md).
#
# The workspace is hermetic — zero crates-io dependencies — so everything
# here runs with --offline and must pass with no network access. Any
# nonzero exit fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "tier-1 gate: OK"
