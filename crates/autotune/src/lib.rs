//! `ugc-autotune` — schedule-space autotuning for the UGC GraphVMs.
//!
//! The paper's thesis is that a small scheduling language spans wildly
//! different architectures; the practical consequence is that every
//! (target, algorithm, graph) triple has a *search space* of schedules,
//! not a single right answer. This crate turns that space into a
//! subsystem:
//!
//! 1. **Backend-declared spaces.** Each GraphVM's schedule type implements
//!    [`ugc_schedule::space::ScheduleSpace`], enumerating its tunable
//!    dimensions (direction, load balancer, kernel fusion, task
//!    granularity, blocked access, ∆ …). [`space_for`] is the registry.
//! 2. **Deterministic search.** [`search::tune`] runs exhaustive
//!    enumeration for small spaces and seeded random-restart coordinate
//!    descent for large ones; same seed, same winner.
//! 3. **A persistent cache.** [`cache::TuningCache`] stores winners as
//!    JSON lines keyed by (target, algorithm, dataset fingerprint,
//!    scale), so a second tuning run re-materializes the winner without
//!    re-measuring anything.
//!
//! The cost signal is pluggable: callers hand [`search::tune`] a closure.
//! [`compiler_evaluator`] builds one from the `ugc::Compiler` facade;
//! the bench harness passes its own `measure`-based evaluator instead.

pub mod cache;
pub mod search;

pub use cache::{graph_fingerprint, CacheEntry, CacheKey, GraphShape, TuningCache};
pub use search::{
    dominant_component, tune, tune_warm, AxisPrune, Ranked, Sample, Strategy, TuneError,
    TuneOutcome, Tuner, DOMINANCE_THRESHOLD,
};

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_cpu::CpuScheduleSpace;
use ugc_backend_gpu::GpuScheduleSpace;
use ugc_backend_hb::HbScheduleSpace;
use ugc_backend_swarm::SwarmScheduleSpace;
use ugc_graph::Graph;
use ugc_schedule::space::{ScheduleSpace, SpaceParams};
use ugc_schedule::ScheduleRef;

/// The declared search space for `target` — the GraphVM registry.
pub fn space_for(target: Target) -> &'static dyn ScheduleSpace {
    match target {
        Target::Cpu => &CpuScheduleSpace,
        Target::Gpu => &GpuScheduleSpace,
        Target::Swarm => &SwarmScheduleSpace,
        Target::HammerBlade => &HbScheduleSpace,
    }
}

/// Space parameters for tuning `algo` on `graph`: SSSP is ordered (so ∆
/// sweeps open up and pull-direction points close down); BFS and BC are
/// data-driven (frontier-based), which unlocks hybrid traversal.
pub fn space_params(algo: Algorithm, graph: &Graph) -> SpaceParams {
    SpaceParams {
        ordered: matches!(algo, Algorithm::Sssp),
        // TC and LP are topology-driven full sweeps, and k-core's peel
        // sets are filter products rather than tracked frontiers, so all
        // three prune the frontier-representation dimensions like PR/CC.
        data_driven: matches!(algo, Algorithm::Bfs | Algorithm::Bc),
        num_vertices: graph.num_vertices(),
    }
}

/// An evaluator built on the `ugc::Compiler` facade: compiles `algo` with
/// the candidate schedule and runs it on `target`, returning the
/// target-appropriate time (wall-clock on CPU, simulated elsewhere).
pub fn compiler_evaluator<'a>(
    target: Target,
    algo: Algorithm,
    graph: &'a Graph,
    start_vertex: u32,
) -> impl FnMut(&ScheduleRef) -> Result<Sample, String> + 'a {
    move |sched: &ScheduleRef| {
        let mut c = Compiler::new(algo);
        c.schedule(algo.schedule_path(), sched.clone());
        if algo.needs_start_vertex() {
            c.start_vertex(start_vertex);
        }
        let run = c.run(target, graph).map_err(|e| e.to_string())?;
        Ok(Sample {
            time_ms: run.time_ms,
            cycles: run.cycles,
            ..Sample::default()
        })
    }
}

/// How a tuning request was satisfied.
#[derive(Debug)]
pub enum Tuned {
    /// The persistent cache held a winner; nothing was measured.
    Cached {
        /// The stored record.
        entry: CacheEntry,
        /// The winner re-materialized from the space (or from the pinned
        /// list for pinned winners). `None` if the space no longer
        /// contains the stored point — callers should then re-tune.
        schedule: Option<ScheduleRef>,
    },
    /// A fresh search ran; the full ranking is available.
    Fresh(TuneOutcome),
}

impl Tuned {
    /// The winning schedule, if one is available without re-tuning.
    pub fn schedule(&self) -> Option<&ScheduleRef> {
        match self {
            Tuned::Cached { schedule, .. } => schedule.as_ref(),
            Tuned::Fresh(out) => Some(&out.winner().schedule),
        }
    }

    /// The winner's label.
    pub fn winner_name(&self) -> &str {
        match self {
            Tuned::Cached { entry, .. } => &entry.winner,
            Tuned::Fresh(out) => &out.winner().name,
        }
    }
}

/// Tunes with an optional persistent cache: a hit returns the stored
/// winner without invoking `eval` at all; a miss runs [`search::tune_warm`]
/// — warm-started from the cached winner of the nearest-[`GraphShape`]
/// neighbour under the same (target, algorithm), when one exists — and
/// stores the winner under `key` together with `shape`.
///
/// # Errors
///
/// Propagates [`TuneError`] from the search; cache write failures are
/// also surfaced as [`TuneError::Cache`] (the search result is lost, so
/// callers see the problem rather than silently losing persistence).
pub fn tune_cached<E>(
    space: &dyn ScheduleSpace,
    params: &SpaceParams,
    pinned: &[(String, ScheduleRef)],
    tuner: &Tuner,
    mut cache: Option<&mut TuningCache>,
    key: &CacheKey,
    shape: &GraphShape,
    eval: E,
) -> Result<Tuned, TuneError>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    if let Some(cache) = cache.as_deref() {
        if let Some(entry) = cache.get(key) {
            let schedule = if entry.point.is_empty() {
                pinned
                    .iter()
                    .find(|(name, _)| *name == entry.winner)
                    .map(|(_, s)| s.clone())
            } else {
                space.materialize(params, &entry.point)
            };
            if let Some(schedule) = schedule {
                return Ok(Tuned::Cached {
                    entry: entry.clone(),
                    schedule: Some(schedule),
                });
            }
            // A stale entry (space shape changed, pinned name gone):
            // fall through and re-tune.
        }
    }

    // Exact key missed: borrow the nearest structural neighbour's winner
    // as the warm-start point (greedy descent validates it).
    let warm = cache.as_deref().and_then(|c| {
        c.nearest(&key.target, &key.algo, shape)
            .filter(|e| !e.point.is_empty())
            .map(|e| e.point.clone())
    });

    let outcome = tune_warm(space, params, pinned, tuner, warm.as_deref(), eval)?;
    if let Some(cache) = cache.as_deref_mut() {
        let w = outcome.winner();
        cache
            .put(CacheEntry {
                key: key.clone(),
                winner: w.name.clone(),
                point: w.point.clone().unwrap_or_default(),
                time_ms: w.sample.time_ms,
                cycles: w.sample.cycles,
                explored: outcome.explored,
                seed: tuner.seed,
                profile: w.sample.profile.clone(),
                shape: shape.clone(),
            })
            .map_err(TuneError::Cache)?;
    }
    Ok(Tuned::Fresh(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use ugc_schedule::space::cardinality;

    fn tiny_graph() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn registry_covers_all_targets_and_spaces_are_nonempty() {
        let g = tiny_graph();
        for target in Target::ALL {
            let space = space_for(target);
            for algo in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
                let p = space_params(algo, &g);
                let dims = space.dimensions(&p);
                assert!(
                    cardinality(&dims) >= 2,
                    "{} space for {} too small",
                    space.target_name(),
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn gpu_bfs_space_has_at_least_twenty_candidates() {
        let g = tiny_graph();
        let p = space_params(Algorithm::Bfs, &g);
        let space = space_for(Target::Gpu);
        let dims = space.dimensions(&p);
        let distinct = ugc_schedule::space::PointIter::new(&dims)
            .filter(|pt| space.materialize(&p, pt).is_some())
            .count();
        assert!(distinct >= 20, "only {distinct} candidates");
    }

    #[test]
    fn compiler_evaluator_measures_a_real_run() {
        let g = tiny_graph();
        let mut eval = compiler_evaluator(Target::Gpu, Algorithm::Bfs, &g, 0);
        let p = space_params(Algorithm::Bfs, &g);
        let space = space_for(Target::Gpu);
        let sched = space.materialize(&p, &[0, 0, 0, 0, 0, 0]).unwrap();
        let sample = eval(&sched).unwrap();
        assert!(sample.time_ms > 0.0);
        assert!(sample.cycles > 0);
    }

    #[test]
    fn second_tune_run_hits_the_cache_without_measuring() {
        let g = tiny_graph();
        let p = space_params(Algorithm::Bfs, &g);
        let space = space_for(Target::HammerBlade);
        let key = CacheKey {
            target: "hb".to_string(),
            algo: "BFS".to_string(),
            fingerprint: graph_fingerprint(&g),
            scale: "tiny".to_string(),
        };
        let path = std::env::temp_dir()
            .join("ugc-autotune-lib-test")
            .join("cache.jsonl");
        let _ = std::fs::remove_file(&path);
        let tuner = Tuner {
            budget: 8,
            seed: 3,
            ..Tuner::default()
        };

        let evals = Cell::new(0usize);
        let fake_eval = |s: &ScheduleRef| {
            evals.set(evals.get() + 1);
            // Deterministic synthetic cost so the test is instant.
            Ok(Sample {
                time_ms: 1.0 + s.representative().delta() as f64,
                cycles: 1,
                ..Sample::default()
            })
        };

        let shape = GraphShape::of(&g);
        let mut cache = TuningCache::open(&path).unwrap();
        let first = tune_cached(
            space,
            &p,
            &[],
            &tuner,
            Some(&mut cache),
            &key,
            &shape,
            fake_eval,
        )
        .unwrap();
        assert!(matches!(first, Tuned::Fresh(_)));
        let measured = evals.get();
        assert!(measured > 0);

        // Re-open (fresh process simulation) and tune again: cache hit,
        // zero evaluations.
        let mut cache = TuningCache::open(&path).unwrap();
        let second = tune_cached(
            space,
            &p,
            &[],
            &tuner,
            Some(&mut cache),
            &key,
            &shape,
            |s| {
                evals.set(evals.get() + 1);
                Ok(Sample {
                    time_ms: 1.0 + s.representative().delta() as f64,
                    cycles: 1,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        assert_eq!(evals.get(), measured, "cache hit must not re-measure");
        match &second {
            Tuned::Cached { entry, schedule } => {
                assert_eq!(entry.winner, first.winner_name());
                assert!(schedule.is_some());
            }
            Tuned::Fresh(_) => panic!("expected a cache hit"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
