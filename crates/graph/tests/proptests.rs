//! Property-based tests on the graph substrate's invariants, running on
//! the in-tree `ugc-testkit` harness (seeded cases + bounded shrinking).

use ugc_graph::{Csr, EdgeList, Graph};
use ugc_testkit::{check_with_shrink, Config, Prng, Shrink};

/// Generator: a vertex count and a set of in-range edges.
fn gen_edges(rng: &mut Prng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.gen_range(2..64usize);
    let len = rng.gen_range(0..256usize);
    let edges = (0..len)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    (n, edges)
}

/// Shrinker that keeps `n` fixed so edges stay in range, only simplifying
/// the edge list.
fn shrink_edges(input: &(usize, Vec<(u32, u32)>)) -> Vec<(usize, Vec<(u32, u32)>)> {
    let (n, edges) = input;
    edges.shrink().into_iter().map(|e| (*n, e)).collect()
}

fn check_edges(name: &str, prop: impl Fn(&(usize, Vec<(u32, u32)>))) {
    check_with_shrink(name, Config::default(), gen_edges, shrink_edges, prop);
}

#[test]
fn csr_preserves_edge_multiset() {
    check_edges("csr_preserves_edge_multiset", |(n, edges)| {
        let csr = Csr::from_edges(*n, edges);
        assert_eq!(csr.num_edges(), edges.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<(u32, u32)> = csr.iter_edges().map(|(s, d, _)| (s, d)).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    });
}

#[test]
fn degrees_sum_to_edge_count() {
    check_edges("degrees_sum_to_edge_count", |(n, edges)| {
        let csr = Csr::from_edges(*n, edges);
        let total: usize = (0..*n as u32).map(|v| csr.degree(v)).sum();
        assert_eq!(total, edges.len());
    });
}

#[test]
fn transpose_is_involution() {
    check_edges("transpose_is_involution", |(n, edges)| {
        let csr = Csr::from_edges(*n, edges);
        assert_eq!(csr.transpose().transpose(), csr);
    });
}

#[test]
fn transpose_preserves_edge_count() {
    check_edges("transpose_preserves_edge_count", |(n, edges)| {
        let csr = Csr::from_edges(*n, edges);
        let t = csr.transpose();
        assert_eq!(t.num_edges(), csr.num_edges());
        // Every edge reversed is present.
        for (s, d, _) in csr.iter_edges() {
            assert!(t.neighbors(d).contains(&s));
        }
    });
}

#[test]
fn in_degree_equals_incoming_edges() {
    check_edges("in_degree_equals_incoming_edges", |(n, edges)| {
        let g = Graph::from_edges(*n, edges);
        for v in 0..*n as u32 {
            let expect = edges.iter().filter(|&&(_, d)| d == v).count();
            assert_eq!(g.in_degree(v), expect);
        }
    });
}

#[test]
fn symmetrize_makes_symmetric() {
    check_edges("symmetrize_makes_symmetric", |(n, edges)| {
        let mut el = EdgeList::new(*n);
        for &(s, d) in edges {
            el.push(s, d);
        }
        el.symmetrize();
        el.dedup_and_strip_loops();
        let g = el.into_graph();
        for v in 0..*n as u32 {
            for &u in g.out_neighbors(v) {
                assert!(g.out_neighbors(u).contains(&v), "missing {u}->{v}");
            }
        }
    });
}

#[test]
fn dedup_removes_all_duplicates() {
    check_edges("dedup_removes_all_duplicates", |(n, edges)| {
        let mut el = EdgeList::new(*n);
        for &(s, d) in edges {
            el.push(s, d);
            el.push(s, d); // force duplicates
        }
        el.dedup_and_strip_loops();
        let mut seen = std::collections::HashSet::new();
        for &(s, d, _) in el.edges() {
            assert!(s != d, "self loop survived");
            assert!(seen.insert((s, d)), "duplicate ({s},{d}) survived");
        }
    });
}

#[test]
fn io_round_trip() {
    check_edges("io_round_trip", |(n, edges)| {
        let g = Graph::from_edges((*n).max(1), edges);
        let mut buf = Vec::new();
        ugc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        if g.num_edges() > 0 {
            let g2 = ugc_graph::io::read_edge_list(buf.as_slice()).unwrap();
            assert_eq!(g.out_csr().targets(), g2.out_csr().targets());
        }
    });
}

#[test]
fn rmat_deterministic_for_seed() {
    check_with_shrink(
        "rmat_deterministic_for_seed",
        Config::default(),
        |rng| rng.gen_range(0u64..500),
        |_| Vec::new(), // the seed value has no meaningful simplification
        |seed| {
            let a = ugc_graph::generators::rmat(6, 4, *seed, true);
            let b = ugc_graph::generators::rmat(6, 4, *seed, true);
            assert_eq!(a.out_csr().targets(), b.out_csr().targets());
            assert_eq!(a.out_csr().weights(), b.out_csr().weights());
        },
    );
}
