//! Recursive-descent parser for the GraphIt algorithm language.

use std::fmt;

use ugc_graphir::types::{BinOp, ReduceOp, UnOp};

use crate::ast::{
    AExpr, AExprKind, AStmt, AStmtKind, ConstDecl, Decl, FuncDecl, SourceProgram, TypeExpr,
};
use crate::lexer::{lex, Span, Token, TokenKind};

/// Parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Offending position.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

/// Parses a GraphIt source program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Example
///
/// ```
/// use ugc_frontend::parse;
///
/// let p = parse("const x : int = 3;").unwrap();
/// assert_eq!(p.decls.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<SourceProgram, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            span: self.peek().span,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.next())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek().kind))
        }
    }

    fn program(&mut self) -> Result<SourceProgram, ParseError> {
        let mut decls = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            decls.push(self.decl()?);
        }
        Ok(SourceProgram { decls })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        if self.eat_keyword("element") {
            let name = self.expect_ident()?;
            self.expect_keyword("end")?;
            Ok(Decl::Element { name })
        } else if self.at_keyword("const") {
            let span = self.peek().span;
            self.next();
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.type_expr()?;
            let init = if self.peek().kind == TokenKind::Assign {
                self.next();
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&TokenKind::Semi)?;
            Ok(Decl::Const(ConstDecl {
                name,
                ty,
                init,
                span,
            }))
        } else if self.at_keyword("func") {
            Ok(Decl::Func(self.func_decl()?))
        } else {
            self.err(format!(
                "expected `element`, `const` or `func`, found {}",
                self.peek().kind
            ))
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        let span = self.peek().span;
        self.expect_keyword("func")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while self.peek().kind != TokenKind::RParen {
            if !params.is_empty() {
                self.expect(&TokenKind::Comma)?;
            }
            let pname = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let pty = self.type_expr()?;
            params.push((pname, pty));
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.peek().kind == TokenKind::Arrow {
            self.next();
            let rname = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let rty = self.type_expr()?;
            Some((rname, rty))
        } else {
            None
        };
        let body = self.stmt_block(&["end"])?;
        self.expect_keyword("end")?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "int" => Ok(TypeExpr::Int),
            "float" | "double" => Ok(TypeExpr::Float),
            "bool" => Ok(TypeExpr::Bool),
            "Vertex" | "Edge" => Ok(TypeExpr::Vertex),
            "vertexset" => {
                self.elem_braces()?;
                Ok(TypeExpr::VertexSet)
            }
            "edgeset" => {
                self.elem_braces()?;
                self.expect(&TokenKind::LParen)?;
                self.expect_ident()?;
                self.expect(&TokenKind::Comma)?;
                self.expect_ident()?;
                let weighted = if self.peek().kind == TokenKind::Comma {
                    self.next();
                    self.expect_ident()?; // `int`
                    true
                } else {
                    false
                };
                self.expect(&TokenKind::RParen)?;
                Ok(TypeExpr::EdgeSet { weighted })
            }
            "vector" => {
                self.elem_braces()?;
                self.expect(&TokenKind::LParen)?;
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(TypeExpr::Vector(Box::new(inner)))
            }
            "priority_queue" => {
                self.elem_braces()?;
                self.expect(&TokenKind::LParen)?;
                self.type_expr()?; // priority type (always int here)
                self.expect(&TokenKind::RParen)?;
                Ok(TypeExpr::PriorityQueue)
            }
            "list" => {
                self.expect(&TokenKind::LBrace)?;
                self.type_expr()?; // inner type (vertexset)
                self.expect(&TokenKind::RBrace)?;
                Ok(TypeExpr::List)
            }
            other => self.err(format!("unknown type `{other}`")),
        }
    }

    fn elem_braces(&mut self) -> Result<String, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(name)
    }

    /// Parses statements until one of `terminators` (keywords) is at the
    /// cursor. Does not consume the terminator.
    fn stmt_block(&mut self, terminators: &[&str]) -> Result<Vec<AStmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            if self.peek().kind == TokenKind::Eof {
                return self.err("unexpected end of input inside block");
            }
            if terminators.iter().any(|t| self.at_keyword(t)) {
                return Ok(stmts);
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<AStmt, ParseError> {
        let label = if let TokenKind::Label(l) = &self.peek().kind {
            let l = l.clone();
            self.next();
            Some(l)
        } else {
            None
        };
        let span = self.peek().span;
        let kind = self.stmt_kind()?;
        Ok(AStmt { kind, label, span })
    }

    fn stmt_kind(&mut self) -> Result<AStmtKind, ParseError> {
        if self.at_keyword("var") {
            self.next();
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let ty = self.type_expr()?;
            let init = if self.peek().kind == TokenKind::Assign {
                self.next();
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&TokenKind::Semi)?;
            return Ok(AStmtKind::VarDecl { name, ty, init });
        }
        if self.at_keyword("if") {
            self.next();
            let cond = self.expr()?;
            let then_body = self.stmt_block(&["else", "end"])?;
            let else_body = if self.eat_keyword("else") {
                self.stmt_block(&["end"])?
            } else {
                Vec::new()
            };
            self.expect_keyword("end")?;
            return Ok(AStmtKind::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.at_keyword("while") {
            self.next();
            let cond = self.expr()?;
            let body = self.stmt_block(&["end"])?;
            self.expect_keyword("end")?;
            return Ok(AStmtKind::While { cond, body });
        }
        if self.at_keyword("for") {
            self.next();
            let var = self.expect_ident()?;
            self.expect_keyword("in")?;
            let start = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let end = self.expr()?;
            let body = self.stmt_block(&["end"])?;
            self.expect_keyword("end")?;
            return Ok(AStmtKind::For {
                var,
                start,
                end,
                body,
            });
        }
        if self.at_keyword("print") {
            self.next();
            let e = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(AStmtKind::Print(e));
        }
        if self.at_keyword("delete") {
            self.next();
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(AStmtKind::Delete(name));
        }
        if self.at_keyword("break") {
            self.next();
            self.expect(&TokenKind::Semi)?;
            return Ok(AStmtKind::Break);
        }
        // Expression-leading statement: assignment, reduction or expr-stmt.
        let target = self.expr()?;
        let kind = match &self.peek().kind {
            TokenKind::Assign => {
                self.next();
                let value = self.expr()?;
                AStmtKind::Assign { target, value }
            }
            TokenKind::PlusAssign => {
                self.next();
                let value = self.expr()?;
                AStmtKind::Reduce {
                    target,
                    op: ReduceOp::Sum,
                    value,
                }
            }
            TokenKind::MinAssign => {
                self.next();
                let value = self.expr()?;
                AStmtKind::Reduce {
                    target,
                    op: ReduceOp::Min,
                    value,
                }
            }
            TokenKind::MaxAssign => {
                self.next();
                let value = self.expr()?;
                AStmtKind::Reduce {
                    target,
                    op: ReduceOp::Max,
                    value,
                }
            }
            TokenKind::OrAssign => {
                self.next();
                let value = self.expr()?;
                AStmtKind::Reduce {
                    target,
                    op: ReduceOp::Or,
                    value,
                }
            }
            _ => AStmtKind::ExprStmt(target),
        };
        self.expect(&TokenKind::Semi)?;
        Ok(kind)
    }

    fn expr(&mut self) -> Result<AExpr, ParseError> {
        self.binary_expr(0)
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let op = match &self.peek().kind {
            TokenKind::OrOr => (BinOp::Or, 1),
            TokenKind::AndAnd => (BinOp::And, 2),
            TokenKind::EqEq => (BinOp::Eq, 3),
            TokenKind::NotEq => (BinOp::Ne, 3),
            TokenKind::Lt => (BinOp::Lt, 4),
            TokenKind::Le => (BinOp::Le, 4),
            TokenKind::Gt => (BinOp::Gt, 4),
            TokenKind::Ge => (BinOp::Ge, 4),
            TokenKind::Plus => (BinOp::Add, 5),
            TokenKind::Minus => (BinOp::Sub, 5),
            TokenKind::StarTok => (BinOp::Mul, 6),
            TokenKind::Slash => (BinOp::Div, 6),
            TokenKind::Percent => (BinOp::Mod, 6),
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<AExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            let span = self.peek().span;
            self.next();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = AExpr {
                kind: AExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AExpr, ParseError> {
        let span = self.peek().span;
        match &self.peek().kind {
            TokenKind::Minus => {
                self.next();
                let operand = self.unary_expr()?;
                // Fold negation of literals so `-1` is a literal.
                let kind = match operand.kind {
                    AExprKind::Int(v) => AExprKind::Int(-v),
                    AExprKind::Float(v) => AExprKind::Float(-v),
                    other => AExprKind::Unary {
                        op: UnOp::Neg,
                        operand: Box::new(AExpr {
                            kind: other,
                            span: operand.span,
                        }),
                    },
                };
                Ok(AExpr { kind, span })
            }
            TokenKind::Bang => {
                self.next();
                let operand = self.unary_expr()?;
                Ok(AExpr {
                    kind: AExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<AExpr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match &self.peek().kind {
                TokenKind::Dot => {
                    let span = self.peek().span;
                    self.next();
                    let method = self.expect_ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.call_args()?;
                    e = AExpr {
                        kind: AExprKind::MethodCall {
                            receiver: Box::new(e),
                            method,
                            args,
                        },
                        span,
                    };
                }
                TokenKind::LBracket => {
                    let span = self.peek().span;
                    self.next();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    e = AExpr {
                        kind: AExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<AExpr>, ParseError> {
        let mut args = Vec::new();
        while self.peek().kind != TokenKind::RParen {
            if !args.is_empty() {
                self.expect(&TokenKind::Comma)?;
            }
            args.push(self.expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<AExpr, ParseError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.next();
                Ok(AExpr {
                    kind: AExprKind::Int(v),
                    span,
                })
            }
            TokenKind::Float(v) => {
                self.next();
                Ok(AExpr {
                    kind: AExprKind::Float(v),
                    span,
                })
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(AExpr {
                    kind: AExprKind::Str(s),
                    span,
                })
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name == "true" || name == "false" {
                    self.next();
                    return Ok(AExpr {
                        kind: AExprKind::Bool(name == "true"),
                        span,
                    });
                }
                if name == "new" {
                    self.next();
                    let ty = self.type_expr()?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.call_args()?;
                    return Ok(AExpr {
                        kind: AExprKind::New { ty, args },
                        span,
                    });
                }
                self.next();
                if self.peek().kind == TokenKind::LParen {
                    self.next();
                    let args = self.call_args()?;
                    return Ok(AExpr {
                        kind: AExprKind::Call { callee: name, args },
                        span,
                    });
                }
                Ok(AExpr {
                    kind: AExprKind::Ident(name),
                    span,
                })
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_element_and_const() {
        let p = parse("element Vertex end\nconst x : int = 3;").unwrap();
        assert_eq!(p.decls.len(), 2);
        assert!(matches!(&p.decls[0], Decl::Element { name } if name == "Vertex"));
    }

    #[test]
    fn parse_extern_const_without_init() {
        let p = parse("const start_vertex : Vertex;").unwrap();
        let c = p.constant("start_vertex").unwrap();
        assert!(c.init.is_none());
        assert_eq!(c.ty, TypeExpr::Vertex);
    }

    #[test]
    fn parse_edgeset_types() {
        let p = parse("const e : edgeset{Edge}(Vertex,Vertex) = load(\"x\");\nconst w : edgeset{Edge}(Vertex,Vertex,int);").unwrap();
        assert_eq!(
            p.constant("e").unwrap().ty,
            TypeExpr::EdgeSet { weighted: false }
        );
        assert_eq!(
            p.constant("w").unwrap().ty,
            TypeExpr::EdgeSet { weighted: true }
        );
    }

    #[test]
    fn parse_vector_type() {
        let p = parse("const parent : vector{Vertex}(int) = -1;").unwrap();
        let c = p.constant("parent").unwrap();
        assert_eq!(c.ty, TypeExpr::Vector(Box::new(TypeExpr::Int)));
        assert!(matches!(c.init.as_ref().unwrap().kind, AExprKind::Int(-1)));
    }

    #[test]
    fn parse_function_with_named_return() {
        let src = "func toFilter(v : Vertex) -> output : bool\noutput = (parent[v] == -1);\nend";
        let p = parse(src).unwrap();
        let f = p.func("toFilter").unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.ret.as_ref().unwrap().0, "output");
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parse_labeled_while_and_method_chain() {
        let src = r#"
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;
        let p = parse(src).unwrap();
        let main = p.func("main").unwrap();
        assert_eq!(main.body.len(), 2);
        let AStmtKind::While { body, .. } = &main.body[1].kind else {
            panic!("expected while");
        };
        assert_eq!(main.body[1].label.as_deref(), Some("s0"));
        assert_eq!(body[0].label.as_deref(), Some("s1"));
        let AStmtKind::VarDecl {
            init: Some(init), ..
        } = &body[0].kind
        else {
            panic!("expected var decl");
        };
        // Outermost is applyModified(...)
        let AExprKind::MethodCall {
            method,
            args,
            receiver,
        } = &init.kind
        else {
            panic!("expected method call");
        };
        assert_eq!(method, "applyModified");
        assert_eq!(args.len(), 3);
        let AExprKind::MethodCall { method: to, .. } = &receiver.kind else {
            panic!("expected chained call");
        };
        assert_eq!(to, "to");
    }

    #[test]
    fn parse_reduce_statements() {
        let src =
            "func f(src : Vertex, dst : Vertex)\nIDs[dst] min= IDs[src];\nranks[dst] += 0.5;\nend";
        let p = parse(src).unwrap();
        let f = p.func("f").unwrap();
        assert!(matches!(
            f.body[0].kind,
            AStmtKind::Reduce {
                op: ReduceOp::Min,
                ..
            }
        ));
        assert!(matches!(
            f.body[1].kind,
            AStmtKind::Reduce {
                op: ReduceOp::Sum,
                ..
            }
        ));
    }

    #[test]
    fn parse_if_else() {
        let src = "func f(v : Vertex)\nif num_paths[v] != 0\nx = 1;\nelse\nx = 0;\nend\nend";
        let p = parse(src).unwrap();
        let f = p.func("f").unwrap();
        let AStmtKind::If {
            then_body,
            else_body,
            ..
        } = &f.body[0].kind
        else {
            panic!("expected if");
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parse_for_loop() {
        let src = "func main()\nfor i in 0:20\nvertices.apply(f);\nend\nend";
        let p = parse(src).unwrap();
        let f = p.func("main").unwrap();
        assert!(matches!(f.body[0].kind, AStmtKind::For { .. }));
    }

    #[test]
    fn parse_new_priority_queue() {
        let src = "const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(dist, start_vertex);";
        let p = parse(src).unwrap();
        let c = p.constant("pq").unwrap();
        let AExprKind::New { ty, args } = &c.init.as_ref().unwrap().kind else {
            panic!("expected new");
        };
        assert_eq!(*ty, TypeExpr::PriorityQueue);
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parse_operator_precedence() {
        let src = "const x : float = 1.0 + 2.0 * 3.0;";
        let p = parse(src).unwrap();
        let AExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &p.constant("x").unwrap().init.as_ref().unwrap().kind
        else {
            panic!("expected add at top");
        };
        assert!(matches!(rhs.kind, AExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parse_unary_fold_negative_literals() {
        let p = parse("const x : int = -5;").unwrap();
        assert!(matches!(
            p.constant("x").unwrap().init.as_ref().unwrap().kind,
            AExprKind::Int(-5)
        ));
    }

    #[test]
    fn parse_list_type_and_calls() {
        let src = "func main()\nvar l : list{vertexset{Vertex}} = new list{vertexset{Vertex}}();\nl.append(frontier);\nend";
        let p = parse(src).unwrap();
        let f = p.func("main").unwrap();
        assert_eq!(f.body.len(), 2);
        assert!(matches!(&f.body[1].kind, AStmtKind::ExprStmt(e)
            if matches!(&e.kind, AExprKind::MethodCall { method, .. } if method == "append")));
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse("const x : int = ;").unwrap_err();
        assert!(err.to_string().contains("expected expression"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn parse_break_and_print() {
        let src = "func main()\nwhile true\nprint 3;\nbreak;\nend\nend";
        let p = parse(src).unwrap();
        let AStmtKind::While { body, .. } = &p.func("main").unwrap().body[0].kind else {
            panic!()
        };
        assert!(matches!(body[0].kind, AStmtKind::Print(_)));
        assert!(matches!(body[1].kind, AStmtKind::Break));
    }

    #[test]
    fn parse_modulo_and_logical() {
        let src = "const x : bool = (a %% 2 == 0) and not b;";
        let p = parse(src).unwrap();
        let AExprKind::Binary { op: BinOp::And, .. } =
            &p.constant("x").unwrap().init.as_ref().unwrap().kind
        else {
            panic!("expected and at top");
        };
    }
}
