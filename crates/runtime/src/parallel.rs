//! Work-distribution primitives for the CPU backend.
//!
//! The public entry points [`parallel_for`] and [`parallel_for_with_local`]
//! keep their original signatures but now dispatch to the persistent
//! work-stealing pool in [`crate::pool`] — one spawn per worker per
//! process instead of one spawn/join cycle per edge/vertex operator per
//! traversal iteration (the dynamic-scheduling discipline of GraphIt's
//! persistent OpenMP worker team). Using std keeps the workspace free of
//! external runtime dependencies, like the paper's self-contained GraphVM
//! runtime libraries.
//!
//! The original spawn-per-call implementations survive as
//! [`spawn_parallel_for`] / [`spawn_parallel_for_with_local`], used only by
//! the `pool_dispatch` microbenchmark as the comparison baseline.

use std::ops::Range;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use crate::pool::default_threads;

/// Runs `f(thread_id, start..end)` over chunks of `0..total` on up to
/// `num_threads` persistent pool workers, chunks handed out dynamically
/// with work stealing.
///
/// `f` must be safe to call concurrently. Chunk size is
/// `max(chunk_hint, 1)`. See [`crate::pool::parallel_for`].
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use ugc_runtime::parallel::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(4, 1000, 64, |_tid, range| {
///     sum.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(num_threads: usize, total: usize, chunk_hint: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    crate::pool::parallel_for(num_threads, total, chunk_hint, f);
}

/// Runs `f(thread_id, start..end, &mut local)` like [`parallel_for`] but
/// gives each worker a `T::default()` accumulator, returning all
/// accumulators (useful for building output frontiers without contention).
/// See [`crate::pool::parallel_for_with_local`].
pub fn parallel_for_with_local<T, F>(
    num_threads: usize,
    total: usize,
    chunk_hint: usize,
    f: F,
) -> Vec<T>
where
    T: Default + Send,
    F: Fn(usize, Range<usize>, &mut T) + Sync,
{
    crate::pool::parallel_for_with_local(num_threads, total, chunk_hint, f)
}

/// The pre-pool spawn-per-call [`parallel_for`]: `std::thread::scope` plus
/// a shared atomic cursor. Kept as the measured baseline for the
/// `pool_dispatch` microbenchmark — do not use on hot paths.
pub fn spawn_parallel_for<F>(num_threads: usize, total: usize, chunk_hint: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    spawn_parallel_for_with_local::<(), _>(num_threads, total, chunk_hint, |tid, range, _| {
        f(tid, range)
    });
}

/// The pre-pool spawn-per-call [`parallel_for_with_local`]. Kept as the
/// measured baseline for the `pool_dispatch` microbenchmark — do not use
/// on hot paths. Unlike the original, a worker panic re-raises the
/// original payload instead of a generic `.expect` message.
pub fn spawn_parallel_for_with_local<T, F>(
    num_threads: usize,
    total: usize,
    chunk_hint: usize,
    f: F,
) -> Vec<T>
where
    T: Default + Send,
    F: Fn(usize, Range<usize>, &mut T) + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let chunk = chunk_hint.max(1);
    let threads = num_threads.max(1).min(total.div_ceil(chunk));
    if threads <= 1 {
        let mut local = T::default();
        f(0, 0..total, &mut local);
        return vec![local];
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let f = &f;
            let cursor = &cursor;
            handles.push(s.spawn(move || {
                let mut local = T::default();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + chunk).min(total);
                    f(tid, start..end, &mut local);
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        parallel_for(8, 500, 7, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_total_is_noop() {
        parallel_for(4, 0, 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn local_accumulators_merge() {
        let locals = parallel_for_with_local::<Vec<usize>, _>(4, 100, 3, |_tid, range, local| {
            local.extend(range);
        });
        let mut all: Vec<usize> = locals.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let locals = parallel_for_with_local::<usize, _>(1, 10, 100, |tid, range, local| {
            assert_eq!(tid, 0);
            *local += range.len();
        });
        assert_eq!(locals, vec![10]);
    }

    #[test]
    fn spawn_baseline_covers_every_index() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        spawn_parallel_for(8, 500, 7, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn spawn_baseline_propagates_panic_payload() {
        let err = std::panic::catch_unwind(|| {
            spawn_parallel_for_with_local::<usize, _>(4, 100, 1, |_tid, range, _| {
                if range.contains(&42) {
                    panic!("spawn boom");
                }
            });
        })
        .expect_err("must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("original payload");
        assert!(msg.contains("spawn boom"), "got: {msg}");
    }
}
