//! The Swarm GraphVM (paper §III-C3).
//!
//! Swarm extracts parallelism by speculating across timestamped tasks, so
//! this GraphVM "focuses a great deal on eliminating false dependencies
//! between memory accesses". Its passes and execution strategies:
//!
//! * **From vertex sets to tasks** ([`executor`]'s loop conversion): the
//!   canonical `while (frontier not empty)` loop is replaced by task
//!   spawns — a vertex visited in round `r` spawns its neighbors at
//!   timestamp `r + 1`, letting rounds overlap speculatively instead of
//!   being separated by software work queues. Priority-driven loops
//!   (∆-stepping) become tasks timestamped by priority bucket.
//! * **Fine-grained splitting with spatial hints**: per-edge-chunk subtasks
//!   carrying the written cache line as a hint, so the hardware serializes
//!   same-line updates instead of aborting them (Fig. 5's
//!   `#pragma task hint(&(parent[dst]))`).
//! * **From shared to private state**: round counters are passed
//!   functionally instead of read from a shared location.
//! * **Edge shuffling** for topology-driven algorithms, trading locality
//!   for fewer same-line overlaps.
//!
//! The GraphVM executes program logic functionally (exact results) while
//! recording task footprints for the [`ugc_sim_swarm`] timing model, and
//! emits T4-flavored C++ ([`emitter`]).

pub mod emitter;
pub mod executor;
pub mod schedule;
pub mod vm;

pub use executor::SwarmExecutor;
pub use schedule::{Frontiers, SwarmSchedule, SwarmScheduleSpace, TaskGranularity};
pub use vm::{SwarmExecution, SwarmGraphVm};
