//! Blind vs guided autotuning: the budget-vs-quality comparison behind
//! the ROADMAP's telemetry-guided-search claim.
//!
//! For each (architecture, algorithm, graph-family) cell the bench runs
//! the same greedy search twice over the backend's declared schedule
//! space:
//!
//! * **blind** — cost model off, three cold random restarts (the search
//!   as it was before attribution-guided pruning existed);
//! * **guided** — cost model on (dominant attribution components prune
//!   declared axes) plus a fingerprint warm start: the winner point of a
//!   same-family *donor* dataset seeds the first restart, exactly like a
//!   nearest-fingerprint cache hit would.
//!
//! Both runs rank the pinned baseline/hand-tuned candidates alongside
//! the space's own points, so neither winner can lose to the hand-tuned
//! schedule. The interesting numbers are `measurements` (distinct space
//! points evaluated — the tuning budget actually spent) and `winner_ns`
//! (the winner's per-run time): guided must match the blind winner while
//! measuring several times fewer points.
//!
//! Output is one JSON line per run on stdout (consumed by
//! `scripts/bench_snapshot.sh`); timing is the simulator's own cycle
//! count (or wall clock on the CPU backend), not a harness loop — a
//! tuning run *is* the measurement.

use ugc::{Algorithm, Target};
use ugc_bench::{autotune, autotune_warm, Strategy, TuneOutcome, Tuner};
use ugc_graph::{Dataset, Scale};

/// Budget cap shared by both runs so the comparison is about how much of
/// the budget each strategy *needs*, not how much it is given.
const BUDGET: usize = 64;
const SEED: u64 = 0xF1_6813;

fn blind_tuner() -> Tuner {
    Tuner {
        seed: SEED,
        budget: BUDGET,
        strategy: Strategy::GreedyDescent,
        restarts: 3,
        cost_model: false,
    }
}

fn guided_tuner() -> Tuner {
    Tuner {
        seed: SEED,
        budget: BUDGET,
        strategy: Strategy::GreedyDescent,
        restarts: 1,
        cost_model: true,
    }
}

/// Best ranked entry that is an actual space point (pinned candidates
/// carry no level indices and cannot seed a warm start).
fn best_space_point(out: &TuneOutcome) -> Option<Vec<usize>> {
    out.ranked.iter().find_map(|r| r.point.clone())
}

fn json_line(group: &str, label: &str, out: &TuneOutcome, warm: bool) {
    println!(
        r#"{{"group":{group:?},"label":{label:?},"measurements":{},"pruned_saved":{},"winner_ns":{},"warm_start":{warm}}}"#,
        out.explored,
        out.saved(),
        out.winner().sample.time_ms * 1e6,
    );
}

fn bench_cell(
    filter: Option<&str>,
    target: Target,
    algo: Algorithm,
    donor: Dataset,
    probe: Dataset,
) {
    let group = format!(
        "guided_tuning/{}/{}/{}",
        target.name(),
        algo.name(),
        probe.abbrev()
    );
    if let Some(f) = filter {
        if !group.to_lowercase().contains(&f.to_lowercase()) {
            return;
        }
    }
    let donor_graph = donor.generate(Scale::Tiny);
    let probe_graph = probe.generate(Scale::Tiny);

    // The donor tune stands in for a prior session's cache entry; its
    // winner point is what `nearest()` would hand back for the probe.
    let donor_out =
        autotune(target, algo, &donor_graph, &guided_tuner()).expect("donor tuning failed");
    let warm = best_space_point(&donor_out);

    let blind = autotune(target, algo, &probe_graph, &blind_tuner()).expect("blind tuning failed");
    let guided = autotune_warm(target, algo, &probe_graph, &guided_tuner(), warm.as_deref())
        .expect("guided tuning failed");

    json_line(&group, "blind", &blind, false);
    json_line(&group, "guided", &guided, warm.is_some());
    eprintln!(
        "bench {group:<44} blind {:>3} meas ({:.3} ms) vs guided {:>3} meas ({:.3} ms, {} pruned-saved)",
        blind.explored,
        blind.winner().sample.time_ms,
        guided.explored,
        guided.winner().sample.time_ms,
        guided.saved(),
    );
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let f = filter.as_deref();
    // One road and one social family per architecture; the donor is the
    // probe's same-family neighbour, never the probe itself.
    for target in Target::ALL {
        bench_cell(
            f,
            target,
            Algorithm::Bfs,
            Dataset::RoadCentral,
            Dataset::RoadNetCa,
        );
        bench_cell(
            f,
            target,
            Algorithm::Sssp,
            Dataset::RoadCentral,
            Dataset::RoadNetCa,
        );
        bench_cell(
            f,
            target,
            Algorithm::PageRank,
            Dataset::LiveJournal,
            Dataset::Pokec,
        );
    }
}
