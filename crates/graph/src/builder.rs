//! Incremental graph construction.

use crate::{Csr, EdgeList, Graph, VertexId, Weight};

/// Builder for [`Graph`] values with optional cleanup steps.
///
/// A non-consuming builder: configuration methods take `&mut self`, and the
/// terminal methods [`GraphBuilder::into_graph`] / [`GraphBuilder::into_csr`]
/// consume the accumulated edges.
///
/// # Example
///
/// ```
/// use ugc_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).add_edge(1, 2).symmetric(true);
/// let g = b.into_graph();
/// assert_eq!(g.num_edges(), 4); // both directions
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: EdgeList,
    symmetric: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph of `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            edges: EdgeList::new(num_vertices),
            symmetric: false,
            dedup: false,
        }
    }

    /// Adds a directed, unweighted edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.edges.push(src, dst);
        self
    }

    /// Adds a directed, weighted edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) -> &mut Self {
        self.edges.push_weighted(src, dst, w);
        self
    }

    /// If `true`, the reverse of every edge is added at build time
    /// (undirected-graph convention: each edge counted once per direction).
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// If `true`, duplicate edges and self-loops are removed at build time.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Number of edges added so far (before symmetrization/dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn finish(mut self) -> EdgeList {
        if self.symmetric {
            self.edges.symmetrize();
        }
        if self.dedup {
            self.edges.dedup_and_strip_loops();
        }
        self.edges
    }

    /// Builds the final [`Csr`].
    pub fn into_csr(self) -> Csr {
        self.finish().into_csr()
    }

    /// Builds the final [`Graph`].
    pub fn into_graph(self) -> Graph {
        self.finish().into_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_plain() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.into_graph();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_symmetric_dedup() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(1, 1)
            .symmetric(true)
            .dedup(true);
        let g = b.into_graph();
        // 0->1 and 1->0 each symmetrized then deduped; self loop removed.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn builder_weighted() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 10).symmetric(true);
        let g = b.into_graph();
        assert_eq!(g.out_csr().neighbor_weights(1).unwrap(), &[10]);
    }

    #[test]
    fn builder_len_tracking() {
        let mut b = GraphBuilder::new(2);
        assert!(b.is_empty());
        b.add_edge(0, 1);
        assert_eq!(b.len(), 1);
    }
}
