#![warn(missing_docs)]

//! The hardware-independent compiler of UGC (paper §III-A).
//!
//! This crate contains everything between the frontend AST and the
//! GraphVMs:
//!
//! 1. [`lower::lower`] — lowering the GraphIt AST to GraphIR,
//! 2. the target-agnostic analysis/transformation passes of Table III,
//!    shared by all four backends:
//!    * [`passes::ordered`] — ordered-processing lowering (∆-stepping
//!      queues),
//!    * [`passes::direction`] — traversal-direction lowering, including
//!      hybrid schedules and [`CompositeSchedule`]s which become runtime
//!      conditions (Fig. 7),
//!    * [`passes::tracking`] — `applyModified` lowering: rewriting UDFs to
//!      produce output frontiers via compare-and-swap / change-tracking
//!      plus `EnqueueVertex` (Fig. 4),
//!    * [`passes::atomics`] — dependence analysis inserting atomics into
//!      UDFs based on direction and parallelization,
//!    * [`passes::frontier_reuse`] — liveness analysis marking frontier
//!      storage reuse opportunities.
//!
//! The intended flow is [`lower::lower`] → attach schedules with
//! [`ugc_schedule::apply_schedule`] → [`run_passes`] → hand the program to
//! a GraphVM.
//!
//! [`CompositeSchedule`]: ugc_schedule::CompositeSchedule
//!
//! # Example
//!
//! ```
//! use ugc_midend::{lower, run_passes};
//!
//! let src = r#"
//! element Vertex end
//! element Edge end
//! const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
//! const parent : vector{Vertex}(int) = -1;
//! const start_vertex : Vertex;
//! func updateEdge(src : Vertex, dst : Vertex)
//!     parent[dst] = src;
//! end
//! func main()
//!     var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
//!     frontier.addVertex(start_vertex);
//!     #s1# var out : vertexset{Vertex} = edges.from(frontier).applyModified(updateEdge, parent, true);
//! end
//! "#;
//! let ast = ugc_frontend::parse_and_check(src).unwrap();
//! let mut prog = lower::lower(&ast).unwrap();
//! run_passes(&mut prog).unwrap();
//! assert!(prog.function("updateEdge__trk_s1").is_some());
//! ```

pub mod lower;
pub mod passes;

use ugc_graphir::ir::Program;
use ugc_graphir::verify::verify;

/// Pipeline failure: lowering, verification, or a pass invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidendError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for MidendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "midend error: {}", self.message)
    }
}

impl std::error::Error for MidendError {}

impl MidendError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        MidendError {
            message: message.into(),
        }
    }
}

pub use lower::lower;

/// Number of statements in the program (all function bodies plus `main`),
/// counted pre-order so nested bodies are included. Used for per-pass IR
/// growth/shrink telemetry.
#[must_use]
pub fn ir_size(prog: &Program) -> u64 {
    let mut n = 0u64;
    let mut tally = |_: &ugc_graphir::ir::Stmt| n += 1;
    for f in &prog.functions {
        ugc_graphir::visit::walk_stmts(&f.body, &mut tally);
    }
    ugc_graphir::visit::walk_stmts(&prog.main, &mut tally);
    n
}

/// Runs one pass under a telemetry span, recording wall time per pass and
/// the statement-count delta it caused.
fn timed_pass(
    prog: &mut Program,
    name: &'static str,
    pass: fn(&mut Program) -> Result<(), MidendError>,
) -> Result<(), MidendError> {
    use std::sync::OnceLock;
    use ugc_telemetry::{Counter, Span};
    if !ugc_telemetry::enabled() {
        return pass(prog);
    }
    static SPANS: OnceLock<Vec<(&'static str, Span)>> = OnceLock::new();
    static DELTAS: OnceLock<(Counter, Counter)> = OnceLock::new();
    let spans = SPANS.get_or_init(|| {
        PASS_NAMES
            .iter()
            .map(|&n| (n, Span::new(&format!("midend.pass.{n}"))))
            .collect()
    });
    let (added, removed) = DELTAS.get_or_init(|| {
        (
            Counter::new("midend.nodes_added"),
            Counter::new("midend.nodes_removed"),
        )
    });
    let span = spans
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| s)
        .expect("pass name registered in PASS_NAMES");
    let before = ir_size(prog);
    let guard = span.start();
    let result = pass(prog);
    drop(guard);
    let after = ir_size(prog);
    added.add(after.saturating_sub(before));
    removed.add(before.saturating_sub(after));
    result
}

/// Names of the midend passes, in pipeline order.
pub const PASS_NAMES: [&str; 5] = [
    "ordered",
    "direction",
    "tracking",
    "atomics",
    "frontier_reuse",
];

/// Runs the full hardware-independent pass pipeline over a lowered program
/// (schedules should already be attached).
///
/// # Errors
///
/// Returns [`MidendError`] when a pass invariant fails or the resulting
/// program does not verify.
pub fn run_passes(prog: &mut Program) -> Result<(), MidendError> {
    timed_pass(prog, "ordered", passes::ordered::run)?;
    timed_pass(prog, "direction", passes::direction::run)?;
    timed_pass(prog, "tracking", passes::tracking::run)?;
    timed_pass(prog, "atomics", passes::atomics::run)?;
    timed_pass(prog, "frontier_reuse", passes::frontier_reuse::run)?;
    verify(prog).map_err(|errs| {
        MidendError::new(format!(
            "post-pass verification failed: {}",
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ))
    })
}

/// Convenience: parse + typecheck + lower in one call (schedules attach to
/// the result before [`run_passes`]).
///
/// # Errors
///
/// Returns the first frontend or lowering error, rendered.
pub fn frontend_to_ir(src: &str) -> Result<Program, MidendError> {
    use std::sync::OnceLock;
    use ugc_telemetry::Span;
    static SPANS: OnceLock<(Span, Span)> = OnceLock::new();
    let (parse, lower_span) =
        SPANS.get_or_init(|| (Span::new("frontend.parse"), Span::new("frontend.lower")));
    let guard = parse.start();
    let ast = ugc_frontend::parse_and_check(src).map_err(MidendError::new)?;
    drop(guard);
    let _guard = lower_span.start();
    lower::lower(&ast)
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    const SRC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const r : vector{Vertex}(float) = 0.0;
func update(src : Vertex, dst : Vertex)
    r[dst] += r[src];
end
func main()
    #s1# edges.apply(update);
end
"#;

    #[test]
    fn passes_record_spans_and_node_deltas() {
        let mut prog = frontend_to_ir(SRC).unwrap();
        let before = ir_size(&prog);
        assert!(before > 0);
        let snap_before = ugc_telemetry::snapshot();
        run_passes(&mut prog).unwrap();
        let snap_after = ugc_telemetry::snapshot();
        if ugc_telemetry::enabled() {
            let delta = snap_after.diff(&snap_before);
            for name in PASS_NAMES {
                assert_eq!(
                    delta.value(&format!("midend.pass.{name}.calls")),
                    1,
                    "pass {name} should record exactly one call"
                );
            }
        } else {
            assert!(snap_after.is_empty());
        }
    }
}
