//! The multicore-CPU GraphVM (paper §III-C1).
//!
//! Unlike the three simulated architectures, this backend runs GraphIR
//! programs on the *host* machine with real threads, matching how the
//! paper's CPU GraphVM emits OpenMP/Cilk C++. It supports the CPU
//! scheduling space of the original GraphIt compiler: push/pull/hybrid
//! traversal, vertex-based / edge-aware vertex-based / edge-based
//! parallelism, pull-frontier representations, output deduplication, and
//! ∆-stepping bucket widths.
//!
//! # Example
//!
//! ```no_run
//! use ugc_backend_cpu::{CpuGraphVm, CpuSchedule};
//! use ugc_schedule::{apply_schedule, ScheduleRef};
//!
//! let src = "...algorithm...";
//! let mut prog = ugc_midend::frontend_to_ir(src).unwrap();
//! let sched = CpuSchedule::new().with_direction(ugc_schedule::SchedDirection::Hybrid);
//! apply_schedule(&mut prog, "s1", ScheduleRef::simple(sched)).unwrap();
//! ugc_midend::run_passes(&mut prog).unwrap();
//! let graph = ugc_graph::generators::path(8);
//! let vm = CpuGraphVm::default();
//! let run = vm.execute(prog, &graph, &Default::default()).unwrap();
//! println!("took {:?}", run.elapsed);
//! ```

pub mod emitter;
pub mod executor;
pub mod kernels;
pub mod schedule;
pub mod vm;

pub use executor::{CpuAttribution, CpuExecutor};
pub use kernels::{EdgeKernel, KernelKey};
pub use schedule::{CpuSchedule, CpuScheduleSpace};
pub use vm::{CpuGraphVm, Execution};
