//! Failure-injection tests: malformed inputs and invalid configurations
//! must fail with actionable errors, never wrong answers or panics.

use ugc::{Algorithm, Compiler, Target};
use ugc_runtime::value::Value;

#[test]
fn start_vertex_out_of_range_errors_cleanly() {
    // Vertex 99 does not exist in a 4-vertex graph; the claim write used
    // to panic inside the runtime. The supervisor's containment boundary
    // must surface it as a typed error — it must NOT silently succeed and
    // must NOT unwind into the caller.
    let graph = ugc_graph::generators::path(4);
    let ok = Compiler::new(Algorithm::Bfs)
        .start_vertex(3)
        .run(Target::Cpu, &graph)
        .unwrap();
    assert_eq!(ok.property_ints("parent")[3], 3);
    let err = Compiler::new(Algorithm::Bfs)
        .start_vertex(99)
        .run(Target::Cpu, &graph)
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn wrong_extern_type_is_usable_or_rejected() {
    // Binding a float where a vertex is expected: the int coercion used to
    // panic; it must now come back as a classed error rather than a wrong
    // vertex id or an unwind.
    let graph = ugc_graph::generators::path(3);
    let mut c = Compiler::new(Algorithm::Bfs);
    c.bind("start_vertex", Value::Float(0.5));
    let err = c.run(Target::Cpu, &graph).unwrap_err();
    assert!(
        matches!(
            err.class,
            ugc::ErrorClass::Invariant | ugc::ErrorClass::Permanent
        ),
        "{err}"
    );
}

#[test]
fn empty_graph_runs_everywhere() {
    let graph = ugc_graph::Graph::from_edges(1, &[]);
    for target in Target::ALL {
        let r = Compiler::new(Algorithm::Bfs)
            .start_vertex(0)
            .run(target, &graph)
            .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        assert_eq!(r.property_ints("parent"), &[0]);
    }
}

#[test]
fn singleton_components_everywhere() {
    // A graph with isolated vertices: algorithms must terminate and leave
    // unreachables untouched.
    let graph = ugc_graph::Graph::from_edges(5, &[(0, 1), (1, 0)]);
    for target in Target::ALL {
        let r = Compiler::new(Algorithm::Sssp)
            .start_vertex(0)
            .run(target, &graph)
            .unwrap();
        let d = r.property_ints("dist");
        assert_eq!(d[1], 1);
        assert_eq!(d[4], i32::MAX as i64, "{}", target.name());
    }
}

#[test]
fn self_loops_are_harmless() {
    let graph = ugc_graph::Graph::from_edges(3, &[(0, 0), (0, 1), (1, 2), (2, 2)]);
    for target in Target::ALL {
        let r = Compiler::new(Algorithm::Bfs)
            .start_vertex(0)
            .run(target, &graph)
            .unwrap();
        assert!(r.property_ints("parent").iter().all(|&p| p != -1));
    }
}

#[test]
fn schedule_label_typo_reports_path() {
    let mut c = Compiler::new(Algorithm::Bfs);
    c.schedule(
        "s0:sZZ",
        ugc_schedule::ScheduleRef::simple(ugc_schedule::DefaultSchedule),
    );
    let err = c.compile().unwrap_err();
    assert!(err.to_string().contains("s0:sZZ"), "{err}");
}

#[test]
fn unparsable_source_never_reaches_execution() {
    let err = Compiler::from_source("func main( end")
        .run(Target::Gpu, &ugc_graph::generators::path(2))
        .unwrap_err();
    assert!(err.to_string().contains("parse error") || err.to_string().contains("expected"));
}

#[test]
fn type_violation_never_reaches_execution() {
    let src = "func main()\nvar s : vertexset{Vertex} = 3;\nend";
    let err = Compiler::from_source(src)
        .run(Target::Cpu, &ugc_graph::generators::path(2))
        .unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn division_by_zero_guarded_in_pagerank() {
    // Star graph: leaves have out-degree 1, hub high; add an isolated
    // vertex with out-degree 0 — the PR source guards the division.
    let mut b = ugc_graph::GraphBuilder::new(5);
    b.add_edge(0, 1)
        .add_edge(1, 0)
        .add_edge(0, 2)
        .add_edge(2, 0);
    let graph = b.into_graph(); // vertices 3,4 isolated
    for target in Target::ALL {
        let r = Compiler::new(Algorithm::PageRank)
            .run(target, &graph)
            .unwrap();
        let ranks = r.property_floats("old_rank");
        assert!(ranks.iter().all(|r| r.is_finite()), "{}", target.name());
    }
}

#[test]
fn duplicate_schedule_application_last_wins() {
    use ugc_backend_cpu::CpuSchedule;
    use ugc_schedule::{SchedDirection, ScheduleRef};
    let graph = ugc_graph::generators::two_communities();
    let mut c = Compiler::new(Algorithm::Bfs);
    c.start_vertex(0)
        .schedule(
            "s0:s1",
            ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Pull)),
        )
        .schedule("s0:s1", ScheduleRef::simple(CpuSchedule::new()));
    let r = c.run(Target::Cpu, &graph).unwrap();
    assert!(r.property_ints("parent").iter().all(|&p| p != -1));
}

/// The `repro` CLI must reject invalid invocations with a nonzero exit
/// and the usage string — never panic, never run a half-configured
/// experiment. These tests drive the real binary.
mod repro_cli {
    use std::path::PathBuf;
    use std::process::{Command, Output};
    use std::sync::OnceLock;

    /// Builds the `repro` binary once (offline, same profile as this test
    /// executable) and returns its path.
    fn repro_bin() -> &'static PathBuf {
        static BIN: OnceLock<PathBuf> = OnceLock::new();
        BIN.get_or_init(|| {
            let mut dir = std::env::current_exe().expect("test executable path");
            dir.pop();
            if dir.ends_with("deps") {
                dir.pop();
            }
            let release = dir.ends_with("release");
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
            let mut build = Command::new(cargo);
            build.args([
                "build",
                "-q",
                "--offline",
                "-p",
                "ugc-bench",
                "--bin",
                "repro",
            ]);
            if release {
                build.arg("--release");
            }
            let status = build.status().expect("spawn cargo to build repro");
            assert!(status.success(), "building the repro binary failed");
            let bin = dir.join(format!("repro{}", std::env::consts::EXE_SUFFIX));
            assert!(bin.exists(), "repro binary missing at {}", bin.display());
            bin
        })
    }

    fn run_repro(args: &[&str], envs: &[(&str, &str)]) -> Output {
        let mut cmd = Command::new(repro_bin());
        cmd.args(args);
        // Start from a clean supervisor environment so an outer harness
        // (e.g. a chaos CI job) can't leak into these assertions.
        for k in [
            "UGC_FAULTS",
            "UGC_BUDGET_MS",
            "UGC_BUDGET_CYCLES",
            "UGC_FALLBACK",
            "UGC_CACHE_BYTES",
        ] {
            cmd.env_remove(k);
        }
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.output().expect("run repro")
    }

    /// Asserts the invocation exits 2 and prints the usage string.
    /// Every case here fails during argument/environment validation,
    /// before any experiment starts, so this is mode-independent and fast.
    fn assert_usage_failure_env(args: &[&str], envs: &[(&str, &str)]) {
        let out = run_repro(args, envs);
        assert_eq!(
            out.status.code(),
            Some(2),
            "repro {args:?} (env {envs:?}) must exit 2"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage: repro"),
            "repro {args:?} stderr must show usage, got: {stderr}"
        );
    }

    fn assert_usage_failure(args: &[&str]) {
        assert_usage_failure_env(args, &[]);
    }

    #[test]
    fn unknown_dataset_name_exits_with_usage() {
        assert_usage_failure(&["tune", "cpu", "pr", "nosuchdataset"]);
    }

    #[test]
    fn unknown_experiment_exits_with_usage() {
        assert_usage_failure(&["fig99"]);
    }

    #[test]
    fn unknown_profile_value_exits_with_usage() {
        assert_usage_failure(&["--profile", "tpu"]);
    }

    #[test]
    fn profile_mixed_with_experiment_words_exits_with_usage() {
        assert_usage_failure(&["--profile", "all", "fig8"]);
    }

    #[test]
    fn flag_without_value_exits_with_usage() {
        assert_usage_failure(&["--scale"]);
        assert_usage_failure(&["--profile"]);
    }

    #[test]
    fn bad_scale_and_incomplete_tune_exit_with_usage() {
        assert_usage_failure(&["--scale", "galactic", "fig8"]);
        assert_usage_failure(&["tune", "cpu", "pr"]);
    }

    #[test]
    fn malformed_fault_specs_exit_with_usage() {
        // Not domain:kind:p=..:seed=.. shaped at all.
        assert_usage_failure_env(&["configs"], &[("UGC_FAULTS", "bogus")]);
        // Unknown fault kind for a valid domain.
        assert_usage_failure_env(
            &["configs"],
            &[("UGC_FAULTS", "gpu:flux_capacitor:p=0.1:seed=1")],
        );
        // Probability outside [0, 1].
        assert_usage_failure_env(
            &["configs"],
            &[("UGC_FAULTS", "gpu:kernel_launch_fail:p=1.5:seed=1")],
        );
        // Kind that exists but not for this domain.
        assert_usage_failure_env(
            &["configs"],
            &[("UGC_FAULTS", "hb:kernel_launch_fail:p=0.1:seed=1")],
        );
    }

    #[test]
    fn non_positive_budgets_exit_with_usage() {
        assert_usage_failure_env(&["configs"], &[("UGC_BUDGET_MS", "0")]);
        assert_usage_failure_env(&["configs"], &[("UGC_BUDGET_MS", "-5")]);
        assert_usage_failure_env(&["configs"], &[("UGC_BUDGET_CYCLES", "0")]);
        assert_usage_failure_env(&["configs"], &[("UGC_BUDGET_CYCLES", "not-a-number")]);
    }

    #[test]
    fn unknown_fallback_target_exits_with_usage() {
        assert_usage_failure_env(&["configs"], &[("UGC_FALLBACK", "tpu")]);
        assert_usage_failure_env(&["configs"], &[("UGC_FALLBACK", "cpu,quantum")]);
    }

    #[test]
    fn chaos_without_fault_spec_exits_with_usage() {
        assert_usage_failure(&["chaos"]);
    }

    #[test]
    fn tune_explain_with_unknown_backend_or_dataset_exits_with_usage() {
        assert_usage_failure(&["tune", "--explain", "zz", "pr", "RN"]);
        assert_usage_failure(&["tune", "--explain", "cpu", "pr", "nosuchdataset"]);
    }

    #[test]
    fn explain_without_tune_exits_with_usage() {
        // Alone (defaults to `all`) and next to a non-tune experiment.
        assert_usage_failure(&["--explain"]);
        assert_usage_failure(&["--explain", "fig8"]);
    }

    #[test]
    fn malformed_tuning_cache_lines_never_panic_the_tuner() {
        // A v1 entry (no schema version, no fingerprint shape), plain
        // garbage, and a truncated v2 line: `tune` must treat all three
        // as cache misses — rejected and counted, never a panic or a
        // silently reused stale winner.
        let dir = std::env::temp_dir().join(format!("ugc-bad-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tuning-cache.jsonl");
        std::fs::write(
            &path,
            concat!(
                r#"{"target":"gpu","algo":"bfs","fingerprint":"n=96;m=320;w=1","scale":"tiny","label":"eb=8","point":[1],"time_ms":1.0,"cycles":100,"profile":""}"#,
                "\n",
                "not json at all\n",
                r#"{"v":2,"target":"gpu","algo":"bfs""#,
                "\n",
            ),
        )
        .expect("write cache");
        let out = run_repro(
            &[
                "--scale", "tiny", "--budget", "6", "tune", "gpu", "bfs", "RN",
            ],
            &[("UGC_TUNE_CACHE", path.to_str().expect("utf8 path"))],
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "tune over a corrupt cache must still succeed, stderr: {stderr}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_with_telemetry_disabled_exits_nonzero() {
        let out = run_repro(&["--profile", "cpu"], &[("UGC_TELEMETRY", "0")]);
        assert!(
            !out.status.success(),
            "--profile under UGC_TELEMETRY=0 must fail, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("UGC_TELEMETRY"),
            "error must name the telemetry switch, got: {stderr}"
        );
    }

    // ---- algorithm spelling and per-algorithm arguments ------------------

    #[test]
    fn unknown_algorithm_suggests_a_spelling() {
        // A near-miss gets a did-you-mean hint alongside the usage text;
        // gibberish gets the plain unknown-algorithm error.
        let out = run_repro(&["tune", "cpu", "kcoer", "RN"], &[]);
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("did you mean `kcore`?"),
            "near-miss must be suggested, got: {stderr}"
        );
        let out = run_repro(&["run", "cpu", "pagernak", "RN"], &[]);
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("did you mean `pagerank`?"),
            "near-miss must be suggested, got: {stderr}"
        );
        let out = run_repro(&["run", "cpu", "zzzzzzzz", "RN"], &[]);
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown algorithm") && !stderr.contains("did you mean"),
            "gibberish must not get a bogus suggestion, got: {stderr}"
        );
    }

    #[test]
    fn non_positive_algorithm_arguments_exit_with_usage() {
        assert_usage_failure(&["--k", "0", "run", "cpu", "kcore", "RN"]);
        assert_usage_failure(&["--k", "-3", "run", "cpu", "kcore", "RN"]);
        assert_usage_failure(&["--max-iters", "0", "run", "cpu", "lp", "RN"]);
        assert_usage_failure(&["--max-iters", "nope", "run", "cpu", "lp", "RN"]);
        assert_usage_failure(&["--k"]);
        assert_usage_failure(&["--max-iters"]);
    }

    #[test]
    fn algorithm_arguments_only_apply_to_their_algorithm() {
        // --k is a k-core argument, --max-iters a label-propagation one;
        // attaching either to a different algorithm is a usage error, not
        // a silently ignored flag.
        assert_usage_failure(&["--k", "2", "run", "cpu", "tc", "RN"]);
        assert_usage_failure(&["--max-iters", "5", "run", "cpu", "bfs", "RN"]);
    }

    // ---- `serve` / `client` argument validation --------------------------
    // All of these fail before a listener is bound, so no daemon is ever
    // left behind.

    #[test]
    fn serve_bad_port_exits_with_usage() {
        assert_usage_failure(&["serve", "--port", "notaport"]);
        assert_usage_failure(&["serve", "--port", "70000"]);
    }

    #[test]
    fn serve_non_positive_admission_limit_exits_with_usage() {
        assert_usage_failure(&["serve", "--admit", "0"]);
        assert_usage_failure(&["serve", "--admit", "-3"]);
        assert_usage_failure(&["serve", "--queue", "0"]);
        assert_usage_failure(&["serve", "--batch-max", "0"]);
    }

    #[test]
    fn serve_unknown_socket_directory_exits_with_usage() {
        assert_usage_failure(&["serve", "--socket", "/no/such/dir/ugc.sock"]);
    }

    #[test]
    fn serve_invalid_deadline_or_drain_exits_with_usage() {
        // A zero default deadline would expire every query on arrival.
        assert_usage_failure(&["serve", "--deadline-ms", "0"]);
        assert_usage_failure(&["serve", "--deadline-ms", "soon"]);
        assert_usage_failure(&["serve", "--deadline-ms"]);
        assert_usage_failure(&["serve", "--drain-ms", "nope"]);
        // A ten-minute-plus "drain" is a hang with extra steps.
        assert_usage_failure(&["serve", "--drain-ms", "999999999"]);
    }

    #[test]
    fn serve_invalid_cache_bytes_env_exits_with_usage() {
        // The cap is validated before any listener binds, so a typo'd
        // deployment fails loudly instead of serving unbounded.
        for bad in ["banana", "0", "-5", "1.5e9"] {
            assert_usage_failure_env(&["serve", "--port", "0"], &[("UGC_CACHE_BYTES", bad)]);
        }
    }

    #[test]
    fn chaos_serve_without_fault_spec_exits_with_usage() {
        assert_usage_failure(&["chaos-serve"]);
    }

    #[test]
    fn serve_unknown_flag_exits_with_usage() {
        assert_usage_failure(&["serve", "--frobnicate"]);
    }

    #[test]
    fn client_without_request_exits_with_usage() {
        assert_usage_failure(&["client"]);
        assert_usage_failure(&["client", "unix:/tmp/nowhere.sock"]);
    }
}
