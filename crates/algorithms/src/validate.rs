//! Validators: check backend outputs against the reference implementations.
//!
//! Each validator returns `Err` with a human-readable explanation naming
//! the first offending vertex, so backend test failures are actionable.

use ugc_graph::{Graph, VertexId};

use crate::reference;

/// Validates a BFS parent array from `src`: reachability must match the
/// reference levels, parent edges must exist, and each parent must sit one
/// level above its child.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check_bfs_parents(g: &Graph, src: VertexId, parents: &[i64]) -> Result<(), String> {
    let levels = reference::bfs_levels(g, src);
    if parents.len() != levels.len() {
        return Err(format!(
            "parent array has {} entries for {} vertices",
            parents.len(),
            levels.len()
        ));
    }
    for v in 0..parents.len() {
        let reached = parents[v] != -1;
        let ref_reached = levels[v] != -1;
        if reached != ref_reached {
            return Err(format!(
                "vertex {v}: reachability mismatch (parent {}, reference level {})",
                parents[v], levels[v]
            ));
        }
        if !reached || v as VertexId == src {
            continue;
        }
        let p = parents[v];
        if p < 0 || p as usize >= parents.len() {
            return Err(format!("vertex {v}: parent {p} out of range"));
        }
        if !g.out_neighbors(p as VertexId).contains(&(v as VertexId)) {
            return Err(format!("vertex {v}: parent edge {p}->{v} not in graph"));
        }
        if levels[p as usize] + 1 != levels[v] {
            return Err(format!(
                "vertex {v}: parent {p} at level {} but child at level {}",
                levels[p as usize], levels[v]
            ));
        }
    }
    if parents[src as usize] == -1 {
        return Err("source vertex not marked".to_string());
    }
    Ok(())
}

/// Validates SSSP distances from `src` against Dijkstra.
///
/// # Errors
///
/// Returns the first mismatching vertex.
pub fn check_sssp_distances(g: &Graph, src: VertexId, dist: &[i64]) -> Result<(), String> {
    let expect = reference::dijkstra(g, src);
    for v in 0..expect.len() {
        if dist[v] != expect[v] {
            return Err(format!(
                "vertex {v}: distance {} but Dijkstra says {}",
                dist[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates CC labels: must equal the minimum vertex id per component.
///
/// # Errors
///
/// Returns the first mismatching vertex.
pub fn check_cc_labels(g: &Graph, labels: &[i64]) -> Result<(), String> {
    let expect = reference::cc_labels(g);
    for v in 0..expect.len() {
        if labels[v] != expect[v] {
            return Err(format!(
                "vertex {v}: label {} but component minimum is {}",
                labels[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates PageRank values against the sequential reference within
/// `tol` (absolute, per-vertex).
///
/// # Errors
///
/// Returns the first out-of-tolerance vertex.
pub fn check_pagerank(g: &Graph, ranks: &[f64], tol: f64) -> Result<(), String> {
    let expect = reference::pagerank(g, 20, 0.85);
    for v in 0..expect.len() {
        if (ranks[v] - expect[v]).abs() > tol {
            return Err(format!(
                "vertex {v}: rank {} but reference {} (tol {tol})",
                ranks[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates BC dependency scores from `src` within `tol`.
///
/// # Errors
///
/// Returns the first out-of-tolerance vertex.
pub fn check_bc(g: &Graph, src: VertexId, scores: &[f64], tol: f64) -> Result<(), String> {
    let expect = reference::bc_dependencies(g, src);
    for v in 0..expect.len() {
        if (scores[v] - expect[v]).abs() > tol {
            return Err(format!(
                "vertex {v}: dependency {} but reference {} (tol {tol})",
                scores[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates per-vertex triangle counts: must match the reference
/// intersection-count accumulation exactly (integer arithmetic).
///
/// # Errors
///
/// Returns the first mismatching vertex.
pub fn check_triangle_counts(g: &Graph, tri: &[i64]) -> Result<(), String> {
    let expect = reference::triangle_counts(g);
    for v in 0..expect.len() {
        if tri[v] != expect[v] {
            return Err(format!(
                "vertex {v}: triangle count {} but reference says {}",
                tri[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates a coreness vector against the reference peeling.
///
/// # Errors
///
/// Returns the first mismatching vertex.
pub fn check_coreness(g: &Graph, core: &[i64]) -> Result<(), String> {
    let expect = reference::coreness(g);
    for v in 0..expect.len() {
        if core[v] != expect[v] {
            return Err(format!(
                "vertex {v}: coreness {} but reference peeling says {}",
                core[v], expect[v]
            ));
        }
    }
    Ok(())
}

/// Validates LP labels up to *label-partition equivalence*: two labelings
/// agree when they induce the same partition of the vertices (same-label
/// pairs coincide), regardless of which representative each class uses.
///
/// # Errors
///
/// Returns the first vertex pair grouped differently from the reference.
pub fn check_lp_labels(g: &Graph, labels: &[i64], max_iters: i64, seed: i64) -> Result<(), String> {
    let expect = reference::label_propagation(g, max_iters, seed);
    if labels.len() != expect.len() {
        return Err(format!(
            "label array has {} entries for {} vertices",
            labels.len(),
            expect.len()
        ));
    }
    // Map each reference label to the first observed label of its class;
    // a second observation with a different label breaks the partition.
    let mut seen: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    let mut rev: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    for v in 0..expect.len() {
        match seen.get(&expect[v]) {
            Some(&l) if l != labels[v] => {
                return Err(format!(
                    "vertex {v}: label {} splits reference class {} (expected label {l})",
                    labels[v], expect[v]
                ));
            }
            Some(_) => {}
            None => {
                if let Some(&other) = rev.get(&labels[v]) {
                    return Err(format!(
                        "vertex {v}: label {} merges reference classes {other} and {}",
                        labels[v], expect[v]
                    ));
                }
                seen.insert(expect[v], labels[v]);
                rev.insert(labels[v], expect[v]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graph::generators;

    #[test]
    fn bfs_validator_accepts_reference_tree() {
        let g = generators::two_communities();
        // Build parents from reference levels greedily.
        let levels = reference::bfs_levels(&g, 0);
        let mut parents = vec![-1i64; g.num_vertices()];
        parents[0] = 0;
        for v in 0..g.num_vertices() as u32 {
            if v != 0 && levels[v as usize] > 0 {
                for &u in g.in_neighbors(v) {
                    if levels[u as usize] + 1 == levels[v as usize] {
                        parents[v as usize] = u as i64;
                        break;
                    }
                }
            }
        }
        check_bfs_parents(&g, 0, &parents).unwrap();
    }

    #[test]
    fn bfs_validator_rejects_wrong_level_parent() {
        let g = generators::path(4);
        // Claim 3's parent is 1 (level 1, but 3 is level 3).
        let parents = vec![0, 0, 1, 1];
        assert!(check_bfs_parents(&g, 0, &parents).is_err());
    }

    #[test]
    fn sssp_validator_matches_dijkstra() {
        let g = generators::two_communities();
        let d = reference::dijkstra(&g, 0);
        check_sssp_distances(&g, 0, &d).unwrap();
        let mut bad = d.clone();
        bad[3] += 1;
        assert!(check_sssp_distances(&g, 0, &bad).is_err());
    }

    #[test]
    fn cc_validator() {
        let g = generators::two_communities();
        let l = reference::cc_labels(&g);
        check_cc_labels(&g, &l).unwrap();
    }

    #[test]
    fn tc_and_kcore_validators_exact() {
        let g = generators::clique_batch(2, 4);
        check_triangle_counts(&g, &reference::triangle_counts(&g)).unwrap();
        let mut bad = reference::triangle_counts(&g);
        bad[0] += 1;
        assert!(check_triangle_counts(&g, &bad).is_err());
        let b = generators::barbell(4, 2);
        check_coreness(&b, &reference::coreness(&b)).unwrap();
        let mut badc = reference::coreness(&b);
        badc[0] -= 1;
        assert!(check_coreness(&b, &badc).is_err());
    }

    #[test]
    fn lp_validator_is_partition_equivalence() {
        // Two components plus an isolated vertex: three label classes.
        let g = ugc_graph::Graph::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let l = reference::label_propagation(&g, 50, 1);
        check_lp_labels(&g, &l, 50, 1).unwrap();
        // Any consistent relabeling of the classes is accepted...
        let relabeled: Vec<i64> = l.iter().map(|&x| x * 10 + 7).collect();
        check_lp_labels(&g, &relabeled, 50, 1).unwrap();
        // ...but splitting a class is rejected,
        let mut split = l.clone();
        split[1] = 999;
        assert!(check_lp_labels(&g, &split, 50, 1).is_err());
        // ...and merging all classes is rejected.
        let merged = vec![0i64; l.len()];
        assert!(check_lp_labels(&g, &merged, 50, 1).is_err());
    }

    #[test]
    fn pr_and_bc_validators_tolerance() {
        let g = generators::two_communities();
        let pr = reference::pagerank(&g, 20, 0.85);
        check_pagerank(&g, &pr, 1e-9).unwrap();
        let mut off = pr.clone();
        off[0] += 0.1;
        assert!(check_pagerank(&g, &off, 1e-9).is_err());
        let bc = reference::bc_dependencies(&g, 0);
        check_bc(&g, 0, &bc, 1e-9).unwrap();
    }
}
