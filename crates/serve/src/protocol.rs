//! The line-oriented wire protocol.
//!
//! Requests, one per line:
//!
//! ```text
//! query <algo> <dataset> [source=N] [scale=tiny|small|medium] [k=N] [max_iters=N] [deadline_ms=N]
//! stats
//! shutdown
//! ```
//!
//! `<algo>` is one of `pr bfs sssp cc bc tc kcore lp`, `<dataset>` a
//! Table-8 abbreviation (`RN RC RU PK HW LJ OK IC TW SW`); both are
//! case-insensitive. `source` defaults to 0 and `scale` to `tiny`.
//! `k=` (kcore only, ≥1) asks for the k-core size at that level;
//! `max_iters=` (lp only, ≥1) overrides LP's round bound.
//! `deadline_ms=` (any algo, ≥1) bounds the request end-to-end: requests
//! still queued when their deadline passes are shed with `err deadline`
//! instead of executed, and the remaining allowance tightens the
//! execution wall budget. Argument validation failures are
//! `err protocol:` replies — the connection stays open.
//!
//! Responses, one line per request: `ok key=value ...` on success, or
//! `err <kind>: <message>` where `<kind>` is:
//!
//! * `protocol` — unparsable request (also called `err parse` in older
//!   docs); the connection stays open.
//! * `busy` — admission queue full; retry later.
//! * `draining` — the daemon is shutting down and no longer admits work.
//! * `deadline` — the request's `deadline_ms=` expired before execution.
//! * `overloaded` — building the graph would exceed `UGC_CACHE_BYTES`
//!   while the cache is pinned by in-flight work; retry later.
//! * `circuit_open` — the (algo, dataset, scale) circuit breaker is open
//!   after repeated permanent/invariant failures; fail-fast without
//!   executing.
//! * a workspace [`ErrorClass`](ugc_resilience::ErrorClass) label
//!   (`permanent`, `transient`, `budget`, `invariant`) for execution
//!   failures.

use ugc::Algorithm;
use ugc_graph::{Dataset, Scale};

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a query.
    Query(QuerySpec),
    /// Report server counters.
    Stats,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

/// A fully-resolved query: what to run, on which cached graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Algorithm to run.
    pub algo: Algorithm,
    /// Dataset (graph is built once per (dataset, scale) and cached).
    pub dataset: Dataset,
    /// Generation scale.
    pub scale: Scale,
    /// Source vertex for BFS/SSSP/BC (ignored by PR/CC).
    pub source: u32,
    /// K-core membership threshold (`k=` — KCORE only): the reply reports
    /// the size of the k-core at this level alongside the coreness
    /// checksum.
    pub k: Option<i64>,
    /// Round bound override (`max_iters=` — LP only).
    pub max_iters: Option<i64>,
    /// End-to-end deadline in milliseconds (`deadline_ms=` — any algo).
    /// Measured from admission; `None` means infinitely patient.
    pub deadline_ms: Option<u64>,
}

impl QuerySpec {
    /// Whether queries of this algorithm can ride a shared multi-source
    /// traversal (their canonical answers — levels/distances — are
    /// batch-order independent).
    pub fn batchable(&self) -> bool {
        matches!(self.algo, Algorithm::Bfs | Algorithm::Sssp)
    }

    /// Whether `other` may join this query's batch: same traversal kind
    /// over the identical cached graph.
    pub fn coalesces_with(&self, other: &QuerySpec) -> bool {
        self.batchable()
            && self.algo == other.algo
            && self.dataset == other.dataset
            && self.scale == other.scale
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing the first offending token.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty request")?;
    match verb.to_ascii_lowercase().as_str() {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "query" => {
            let algo = parse_algo(words.next().ok_or("query needs <algo> <dataset>")?)?;
            let dataset = parse_dataset(words.next().ok_or("query needs <algo> <dataset>")?)?;
            let mut spec = QuerySpec {
                algo,
                dataset,
                scale: Scale::Tiny,
                source: 0,
                k: None,
                max_iters: None,
                deadline_ms: None,
            };
            for kv in words {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got `{kv}`"))?;
                match key {
                    "source" => {
                        spec.source = value.parse().map_err(|_| {
                            format!("source must be a non-negative integer, got `{value}`")
                        })?;
                    }
                    "scale" => spec.scale = parse_scale(value)?,
                    "k" => {
                        if algo != Algorithm::KCore {
                            return Err(format!("k= only applies to kcore, not {}", algo.name()));
                        }
                        let k: i64 = value
                            .parse()
                            .map_err(|_| format!("k must be an integer, got `{value}`"))?;
                        if k < 1 {
                            return Err(format!("k must be at least 1, got {k}"));
                        }
                        spec.k = Some(k);
                    }
                    "max_iters" => {
                        if algo != Algorithm::Lp {
                            return Err(format!(
                                "max_iters= only applies to lp, not {}",
                                algo.name()
                            ));
                        }
                        let mi: i64 = value
                            .parse()
                            .map_err(|_| format!("max_iters must be an integer, got `{value}`"))?;
                        if mi < 1 {
                            return Err(format!("max_iters must be at least 1, got {mi}"));
                        }
                        spec.max_iters = Some(mi);
                    }
                    "deadline_ms" => {
                        let d: u64 = value.parse().map_err(|_| {
                            format!("deadline_ms must be a positive integer, got `{value}`")
                        })?;
                        if d < 1 {
                            return Err(format!("deadline_ms must be at least 1, got {d}"));
                        }
                        spec.deadline_ms = Some(d);
                    }
                    other => return Err(format!("unknown query argument `{other}`")),
                }
            }
            Ok(Request::Query(spec))
        }
        other => Err(format!(
            "unknown command `{other}` (expected query/stats/shutdown)"
        )),
    }
}

/// Parses an algorithm short name (`pr bfs sssp cc bc tc kcore lp`), with
/// a did-you-mean hint on near-miss spellings.
///
/// # Errors
///
/// Names the unknown algorithm.
pub fn parse_algo(s: &str) -> Result<Algorithm, String> {
    Algorithm::from_cli_name(s).ok_or_else(|| {
        let mut msg = format!("unknown algorithm `{s}` (expected pr/bfs/sssp/cc/bc/tc/kcore/lp)");
        if let Some(hint) = Algorithm::suggest_cli_name(s) {
            msg.push_str(&format!("; did you mean `{hint}`?"));
        }
        msg
    })
}

/// Parses a dataset abbreviation (`RN RC RU PK HW LJ OK IC TW SW`).
///
/// # Errors
///
/// Names the unknown dataset.
pub fn parse_dataset(s: &str) -> Result<Dataset, String> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.abbrev().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown dataset `{s}` (expected a Table-8 abbreviation)"))
}

/// Parses a scale name.
///
/// # Errors
///
/// Names the unknown scale.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    [Scale::Tiny, Scale::Small, Scale::Medium]
        .into_iter()
        .find(|sc| sc.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown scale `{s}` (expected tiny/small/medium)"))
}

/// Formats an error response line.
pub fn err_line(kind: &str, msg: &str) -> String {
    format!("err {kind}: {msg}")
}

/// FNV-1a over 64-bit words (little-endian bytes): the result checksum
/// clients compare against locally-computed references.
pub fn fnv1a64(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Checksum of an integer result vector (bit-exact).
pub fn checksum_ints(vals: &[i64]) -> u64 {
    fnv1a64(vals.iter().map(|&v| v as u64))
}

/// Checksum of a float result vector (bit-exact, not epsilon).
pub fn checksum_floats(vals: &[f64]) -> u64 {
    fnv1a64(vals.iter().map(|&v| v.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_with_defaults() {
        let r = parse_request("query bfs RN").unwrap();
        let Request::Query(spec) = r else {
            panic!("expected query")
        };
        assert_eq!(spec.algo, Algorithm::Bfs);
        assert_eq!(spec.dataset, Dataset::RoadNetCa);
        assert_eq!(spec.scale, Scale::Tiny);
        assert_eq!(spec.source, 0);
    }

    #[test]
    fn parses_query_arguments_case_insensitively() {
        let r = parse_request("QUERY sssp pk source=7 scale=small").unwrap();
        let Request::Query(spec) = r else {
            panic!("expected query")
        };
        assert_eq!(spec.algo, Algorithm::Sssp);
        assert_eq!(spec.dataset, Dataset::Pokec);
        assert_eq!(spec.scale, Scale::Small);
        assert_eq!(spec.source, 7);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "flarp",
            "query",
            "query bfs",
            "query nosuch RN",
            "query bfs ZZ",
            "query bfs RN source=minus",
            "query bfs RN scale=galactic",
            "query bfs RN bogus=1",
            // Per-algorithm arguments: wrong algorithm or out-of-range.
            "query bfs RN k=2",
            "query kcore RN k=0",
            "query kcore RN k=-3",
            "query kcore RN k=two",
            "query lp RN max_iters=0",
            "query lp RN max_iters=-1",
            "query tc RN max_iters=5",
            "query bfs RN deadline_ms=0",
            "query bfs RN deadline_ms=-5",
            "query bfs RN deadline_ms=soon",
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn parses_per_algorithm_arguments() {
        let Request::Query(kc) = parse_request("query kcore PK k=3").unwrap() else {
            panic!("expected query");
        };
        assert_eq!(kc.algo, Algorithm::KCore);
        assert_eq!(kc.k, Some(3));
        let Request::Query(lp) = parse_request("query lp PK max_iters=7").unwrap() else {
            panic!("expected query");
        };
        assert_eq!(lp.algo, Algorithm::Lp);
        assert_eq!(lp.max_iters, Some(7));
        // deadline_ms applies to every algorithm.
        let Request::Query(dl) = parse_request("query pr PK deadline_ms=250").unwrap() else {
            panic!("expected query");
        };
        assert_eq!(dl.deadline_ms, Some(250));
        // New algorithms never coalesce into traversal batches.
        assert!(!kc.batchable());
        assert!(!lp.batchable());
    }

    #[test]
    fn unknown_algorithm_gets_a_suggestion() {
        let e = parse_request("query kcoer PK").unwrap_err();
        assert!(e.contains("did you mean `kcore`?"), "{e}");
    }

    #[test]
    fn coalescing_rules() {
        let spec = |algo, dataset| QuerySpec {
            algo,
            dataset,
            scale: Scale::Tiny,
            source: 0,
            k: None,
            max_iters: None,
            deadline_ms: None,
        };
        let bfs = spec(Algorithm::Bfs, Dataset::RoadNetCa);
        assert!(bfs.coalesces_with(&QuerySpec { source: 9, ..bfs }));
        assert!(!bfs.coalesces_with(&spec(Algorithm::Bfs, Dataset::Pokec)));
        assert!(!bfs.coalesces_with(&spec(Algorithm::Sssp, Dataset::RoadNetCa)));
        assert!(!spec(Algorithm::PageRank, Dataset::RoadNetCa)
            .coalesces_with(&spec(Algorithm::PageRank, Dataset::RoadNetCa)));
    }

    #[test]
    fn checksums_are_bit_sensitive() {
        assert_ne!(checksum_ints(&[1, 2, 3]), checksum_ints(&[1, 2, 4]));
        assert_ne!(checksum_floats(&[0.0]), checksum_floats(&[-0.0]));
        assert_eq!(checksum_ints(&[]), checksum_floats(&[]));
    }
}
