//! Traversal-direction lowering, including hybrid and composite schedules.
//!
//! Every `EdgeSetIterator` ends up with a concrete
//! [`ugc_graphir::types::Direction`] in its metadata. Schedules
//! requesting `Hybrid` direction, and [`CompositeSchedule`]s, are lowered
//! into host-side runtime conditions exactly as the paper's Fig. 7: the
//! statement is cloned per branch, each clone carrying its leaf schedule.
//!
//! [`CompositeSchedule`]: ugc_schedule::CompositeSchedule

use std::sync::Arc;

use ugc_graphir::ir::{Expr, Program, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::{BinOp, Direction, Intrinsic, VertexSetRepr};
use ugc_schedule::{
    schedule_of, CompositeCriteria, Parallelization, PullFrontierRepr, SchedDirection, ScheduleRef,
    SimpleSchedule,
};

use crate::MidendError;

/// Runs the pass. See the module docs.
///
/// # Errors
///
/// Currently infallible in practice; returns `Result` for pipeline
/// uniformity.
pub fn run(prog: &mut Program) -> Result<(), MidendError> {
    let main = std::mem::take(&mut prog.main);
    prog.main = rewrite_block(main);
    Ok(())
}

fn rewrite_block(stmts: Vec<Stmt>) -> Vec<Stmt> {
    stmts
        .into_iter()
        .map(|mut s| match &mut s.kind {
            StmtKind::EdgeSetIterator(_) => expand(s),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                *then_body = rewrite_block(std::mem::take(then_body));
                *else_body = rewrite_block(std::mem::take(else_body));
                s
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                *body = rewrite_block(std::mem::take(body));
                s
            }
            _ => s,
        })
        .collect()
}

fn expand(stmt: Stmt) -> Stmt {
    let Some(sched) = schedule_of(&stmt) else {
        let mut s = stmt;
        configure(&mut s, None);
        return s;
    };
    let label = stmt.label.clone();
    let mut out = resolve(&stmt, &sched);
    out.label = label;
    out
}

fn resolve(base: &Stmt, sched: &ScheduleRef) -> Stmt {
    match sched {
        ScheduleRef::Simple(s) if s.direction() != SchedDirection::Hybrid => {
            concrete(base, sched, s)
        }
        ScheduleRef::Simple(s) => {
            // Hybrid: push while sparse, pull when dense.
            let push = concrete_with_direction(base, sched, s, Direction::Push);
            let pull = concrete_with_direction(base, sched, s, Direction::Pull);
            branch(base, s.hybrid_threshold(), push, pull)
        }
        ScheduleRef::Composite(c) => {
            let CompositeCriteria::InputSetSize { threshold } = c.criteria();
            let first = resolve(base, c.first_schedule());
            let second = resolve(base, c.second_schedule());
            branch(base, threshold, first, second)
        }
    }
}

/// Builds `if |input| < threshold * |V| { first } else { second }`.
/// Degenerates to `first` for all-edges operators (no input frontier).
fn branch(base: &Stmt, threshold: f64, first: Stmt, second: Stmt) -> Stmt {
    let StmtKind::EdgeSetIterator(d) = &base.kind else {
        unreachable!("direction lowering only branches on EdgeSetIterator");
    };
    let Some(input) = &d.input else {
        return first;
    };
    let cond = Expr::bin(
        BinOp::Lt,
        Expr::intrinsic(Intrinsic::VertexSetSize, vec![Expr::var(input.clone())]),
        Expr::bin(
            BinOp::Mul,
            Expr::float(threshold),
            Expr::intrinsic(Intrinsic::NumVertices, vec![Expr::var(d.graph.clone())]),
        ),
    );
    Stmt::new(StmtKind::If {
        cond,
        then_body: vec![first],
        else_body: vec![second],
    })
}

fn concrete(base: &Stmt, sref: &ScheduleRef, s: &Arc<dyn SimpleSchedule>) -> Stmt {
    let dir = match s.direction() {
        SchedDirection::Pull => Direction::Pull,
        _ => Direction::Push,
    };
    concrete_with_direction(base, sref, s, dir)
}

fn concrete_with_direction(
    base: &Stmt,
    sref: &ScheduleRef,
    s: &Arc<dyn SimpleSchedule>,
    dir: Direction,
) -> Stmt {
    let mut out = base.clone();
    out.label = None;
    // Re-attach the leaf schedule so backends see concrete options.
    out.meta
        .set_any(keys::SCHEDULE, Arc::new(clone_leaf(sref, s)));
    configure_leaf(&mut out, s, dir);
    out
}

fn clone_leaf(_sref: &ScheduleRef, s: &Arc<dyn SimpleSchedule>) -> ScheduleRef {
    ScheduleRef::Simple(Arc::clone(s))
}

fn configure(stmt: &mut Stmt, sched: Option<&Arc<dyn SimpleSchedule>>) {
    match sched {
        Some(s) => {
            let dir = match s.direction() {
                SchedDirection::Pull => Direction::Pull,
                _ => Direction::Push,
            };
            configure_leaf(stmt, s, dir)
        }
        None => {
            stmt.meta.set(keys::DIRECTION, Direction::Push);
            stmt.meta.set(keys::IS_EDGE_PARALLEL, false);
        }
    }
}

fn configure_leaf(stmt: &mut Stmt, s: &Arc<dyn SimpleSchedule>, dir: Direction) {
    stmt.meta.set(keys::DIRECTION, dir);
    stmt.meta.set(
        keys::IS_EDGE_PARALLEL,
        s.parallelization() == Parallelization::EdgeBased,
    );
    stmt.meta.set(
        "parallelization",
        match s.parallelization() {
            Parallelization::VertexBased => "VERTEX_BASED",
            Parallelization::EdgeBased => "EDGE_BASED",
            Parallelization::EdgeAwareVertexBased => "EDGE_AWARE_VERTEX_BASED",
        },
    );
    if dir == Direction::Pull {
        stmt.meta.set(
            keys::PULL_INPUT_FRONTIER,
            match s.pull_frontier() {
                PullFrontierRepr::Bitmap => VertexSetRepr::Bitmap,
                PullFrontierRepr::Boolmap => VertexSetRepr::Boolmap,
            },
        );
    }
    if s.deduplication() {
        stmt.meta.set(keys::APPLY_DEDUPLICATION, true);
    }
    if !stmt.meta.contains(keys::OUTPUT_REPRESENTATION) {
        stmt.meta
            .set(keys::OUTPUT_REPRESENTATION, VertexSetRepr::Sparse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ugc_graphir::visit::{find_labeled, walk_stmts};
    use ugc_schedule::{apply_schedule, CompositeSchedule, DefaultSchedule};

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    #[derive(Debug)]
    struct Sched(SchedDirection);
    impl SimpleSchedule for Sched {
        fn direction(&self) -> SchedDirection {
            self.0
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn lowered() -> Program {
        let ast = ugc_frontend::parse_and_check(BFS).unwrap();
        lower(&ast).unwrap()
    }

    fn count_iterators(p: &Program) -> (usize, Vec<Direction>) {
        let mut n = 0;
        let mut dirs = Vec::new();
        walk_stmts(&p.main, &mut |s| {
            if matches!(s.kind, StmtKind::EdgeSetIterator(_)) {
                n += 1;
                dirs.push(s.meta.get_direction(keys::DIRECTION).unwrap());
            }
        });
        (n, dirs)
    }

    #[test]
    fn default_gets_push() {
        let mut p = lowered();
        run(&mut p).unwrap();
        let (n, dirs) = count_iterators(&p);
        assert_eq!(n, 1);
        assert_eq!(dirs, vec![Direction::Push]);
    }

    #[test]
    fn simple_pull_schedule() {
        let mut p = lowered();
        apply_schedule(
            &mut p,
            "s0:s1",
            ScheduleRef::simple(Sched(SchedDirection::Pull)),
        )
        .unwrap();
        run(&mut p).unwrap();
        let (n, dirs) = count_iterators(&p);
        assert_eq!(n, 1);
        assert_eq!(dirs, vec![Direction::Pull]);
        // Pull input frontier representation recorded.
        let mut found = false;
        walk_stmts(&p.main, &mut |s| {
            if matches!(s.kind, StmtKind::EdgeSetIterator(_)) {
                found = s.meta.get_repr(keys::PULL_INPUT_FRONTIER).is_some();
            }
        });
        assert!(found);
    }

    #[test]
    fn hybrid_becomes_runtime_branch() {
        let mut p = lowered();
        apply_schedule(
            &mut p,
            "s0:s1",
            ScheduleRef::simple(Sched(SchedDirection::Hybrid)),
        )
        .unwrap();
        run(&mut p).unwrap();
        let (n, dirs) = count_iterators(&p);
        assert_eq!(n, 2);
        assert_eq!(dirs, vec![Direction::Push, Direction::Pull]);
        // The branch keeps the original label on the If.
        let s1 = find_labeled(&p, "s1").unwrap();
        assert!(matches!(s1.kind, StmtKind::If { .. }));
    }

    #[test]
    fn composite_becomes_nested_condition() {
        let mut p = lowered();
        let comp = CompositeSchedule::new(
            CompositeCriteria::InputSetSize { threshold: 0.15 },
            ScheduleRef::simple(Sched(SchedDirection::Push)),
            ScheduleRef::simple(Sched(SchedDirection::Pull)),
        );
        apply_schedule(&mut p, "s0:s1", ScheduleRef::composite(comp)).unwrap();
        run(&mut p).unwrap();
        let (n, dirs) = count_iterators(&p);
        assert_eq!(n, 2);
        assert_eq!(dirs, vec![Direction::Push, Direction::Pull]);
        // Condition references VertexSetSize and NumVertices.
        let text = ugc_graphir::printer::print_program(&p);
        assert!(text.contains("VertexSetSize(frontier)"), "{text}");
        assert!(text.contains("NumVertices(edges)"), "{text}");
        assert!(text.contains("0.15"), "{text}");
    }

    #[test]
    fn all_edges_composite_degenerates_to_first() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const r : vector{Vertex}(float) = 0.0;
func f(src : Vertex, dst : Vertex)
    r[dst] += 1.0;
end
func main()
    #s1# edges.apply(f);
end
"#;
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        let comp = CompositeSchedule::new(
            CompositeCriteria::InputSetSize { threshold: 0.5 },
            ScheduleRef::simple(DefaultSchedule),
            ScheduleRef::simple(Sched(SchedDirection::Pull)),
        );
        apply_schedule(&mut p, "s1", ScheduleRef::composite(comp)).unwrap();
        run(&mut p).unwrap();
        let (n, dirs) = count_iterators(&p);
        assert_eq!(n, 1);
        assert_eq!(dirs, vec![Direction::Push]);
    }
}
