//! The load-balancing runtime library (paper §III-C2).
//!
//! "Since the logic of assigning edges to threads is largely independent of
//! the actual computation to be performed, load-balancing implementations
//! can be cleanly moved to a set of template library functions." This
//! module is that library: each strategy maps the active vertices (and
//! their adjacency lists) onto warps of lane assignments, which the
//! executor then turns into timing traces.

use ugc_graph::Csr;

/// A contiguous run of edges of one source vertex assigned to a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneWork {
    /// Source vertex.
    pub src: u32,
    /// Range into the CSR's flat edge arrays.
    pub edges: std::ops::Range<usize>,
    /// Extra per-lane scalar instructions charged by the strategy (e.g.
    /// STRICT's binary search for the owning vertex).
    pub overhead: u32,
}

/// One warp: up to 32 lanes, each with a list of work items.
pub type WarpAssignment = Vec<Vec<LaneWork>>;

/// GPU load-balancing strategies (the GraphIt GPU set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadBalance {
    /// One thread per active vertex.
    #[default]
    VertexBased,
    /// Thread/warp/CTA buckets by degree (Merrill et al.).
    Twc,
    /// CTA-cooperative: a 256-thread block walks each vertex's edges.
    Cm,
    /// Warp-cooperative: a 32-thread warp walks each vertex's edges.
    Wm,
    /// Perfect edge balance via binary search over the prefix array.
    Strict,
    /// One thread per edge, source found per edge.
    EdgeOnly,
    /// TWC refined to fixed-size edge chunks.
    Etwc,
}

impl LoadBalance {
    /// All strategies (for sweeps).
    pub const ALL: [LoadBalance; 7] = [
        LoadBalance::VertexBased,
        LoadBalance::Twc,
        LoadBalance::Cm,
        LoadBalance::Wm,
        LoadBalance::Strict,
        LoadBalance::EdgeOnly,
        LoadBalance::Etwc,
    ];
}

const WARP: usize = 32;

/// Maps active vertices to warps under a strategy.
pub fn assign(csr: &Csr, members: &[u32], lb: LoadBalance) -> Vec<WarpAssignment> {
    match lb {
        LoadBalance::VertexBased => vertex_based(csr, members),
        LoadBalance::Wm => cooperative(csr, members, WARP),
        LoadBalance::Cm => cooperative(csr, members, 256),
        LoadBalance::Strict => chunked_edges(csr, members, 1, 6),
        LoadBalance::EdgeOnly => chunked_edges(csr, members, 1, 1),
        LoadBalance::Etwc => chunked_edges(csr, members, WARP, 2),
        LoadBalance::Twc => twc(csr, members),
    }
}

/// One lane per vertex; lanes grouped into warps in member order.
fn vertex_based(csr: &Csr, members: &[u32]) -> Vec<WarpAssignment> {
    members
        .chunks(WARP)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&v| {
                    let lo = csr.edge_offset(v);
                    vec![LaneWork {
                        src: v,
                        edges: lo..lo + csr.degree(v),
                        overhead: 0,
                    }]
                })
                .collect()
        })
        .collect()
}

/// Each vertex's edge list strided across `group` lanes (`group`/32 warps
/// work together); vertices handled one after another by the same group.
fn cooperative(csr: &Csr, members: &[u32], group: usize) -> Vec<WarpAssignment> {
    let mut warps = Vec::new();
    for group_members in members.chunks(group.max(1)) {
        // `group` lanes cooperate over each member's edges in turn.
        let mut lanes: Vec<Vec<LaneWork>> = vec![Vec::new(); group];
        for &v in group_members {
            let lo = csr.edge_offset(v);
            let deg = csr.degree(v);
            // Contiguous slices per lane keep adjacent lanes on adjacent
            // edges (coalesced).
            let per_lane = deg.div_ceil(group).max(1);
            for (l, lane) in lanes.iter_mut().enumerate() {
                let s = l * per_lane;
                if s >= deg {
                    continue;
                }
                let e = ((l + 1) * per_lane).min(deg);
                lane.push(LaneWork {
                    src: v,
                    edges: lo + s..lo + e,
                    overhead: 2,
                });
            }
        }
        for w in lanes.chunks(WARP) {
            let warp: WarpAssignment = w.to_vec();
            if warp.iter().any(|l| !l.is_empty()) {
                warps.push(warp);
            }
        }
    }
    warps
}

/// One chunk of at most `chunk` edges per lane, dealt in edge order;
/// `overhead` models the per-lane cost of locating the source vertex.
fn chunked_edges(csr: &Csr, members: &[u32], chunk: usize, overhead: u32) -> Vec<WarpAssignment> {
    let mut works = Vec::new();
    for &v in members {
        let lo = csr.edge_offset(v);
        let deg = csr.degree(v);
        let mut s = 0usize;
        while s < deg {
            let e = (s + chunk).min(deg);
            works.push(LaneWork {
                src: v,
                edges: lo + s..lo + e,
                overhead,
            });
            s = e;
        }
    }
    works
        .chunks(WARP)
        .map(|w| w.iter().map(|lw| vec![lw.clone()]).collect())
        .collect()
}

/// TWC: small-degree vertices thread-mapped, medium warp-mapped, large
/// CTA-mapped.
fn twc(csr: &Csr, members: &[u32]) -> Vec<WarpAssignment> {
    let mut small = Vec::new();
    let mut medium = Vec::new();
    let mut large = Vec::new();
    for &v in members {
        match csr.degree(v) {
            0..=31 => small.push(v),
            32..=255 => medium.push(v),
            _ => large.push(v),
        }
    }
    let mut warps = vertex_based(csr, &small);
    warps.extend(cooperative(csr, &medium, WARP));
    warps.extend(cooperative(csr, &large, 256));
    warps
}

/// Total edges covered by an assignment (sanity checks / tests).
pub fn covered_edges(warps: &[WarpAssignment]) -> usize {
    warps
        .iter()
        .flat_map(|w| w.iter())
        .flat_map(|lane| lane.iter())
        .map(|lw| lw.edges.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graph::generators;

    fn total_degree(csr: &Csr, members: &[u32]) -> usize {
        members.iter().map(|&v| csr.degree(v)).sum()
    }

    #[test]
    fn every_strategy_covers_all_edges() {
        let g = generators::rmat(8, 4, 3, false);
        let csr = g.out_csr();
        let members: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let expect = total_degree(csr, &members);
        for lb in LoadBalance::ALL {
            let warps = assign(csr, &members, lb);
            assert_eq!(covered_edges(&warps), expect, "{lb:?}");
        }
    }

    #[test]
    fn strategies_cover_subset_frontiers() {
        let g = generators::star(100);
        let csr = g.out_csr();
        let members = vec![0u32, 5, 17];
        let expect = total_degree(csr, &members);
        for lb in LoadBalance::ALL {
            assert_eq!(covered_edges(&assign(csr, &members, lb)), expect, "{lb:?}");
        }
    }

    #[test]
    fn strict_bounds_max_lane_work() {
        let g = generators::star(1000);
        let csr = g.out_csr();
        let members = vec![0u32]; // hub with 999 edges
        let warps = assign(csr, &members, LoadBalance::Strict);
        for w in &warps {
            for lane in w {
                for lw in lane {
                    assert!(lw.edges.len() <= 1);
                }
            }
        }
        // Vertex-based puts all 999 edges on one lane.
        let vb = assign(csr, &members, LoadBalance::VertexBased);
        assert_eq!(vb.len(), 1);
        assert_eq!(vb[0][0][0].edges.len(), 999);
    }

    #[test]
    fn wm_spreads_hub_across_warp() {
        let g = generators::star(330);
        let csr = g.out_csr();
        let warps = assign(csr, &[0u32], LoadBalance::Wm);
        assert_eq!(warps.len(), 1);
        let lanes_with_work = warps[0].iter().filter(|l| !l.is_empty()).count();
        assert!(lanes_with_work >= 30, "{lanes_with_work}");
        // Roughly 329/32 ≈ 11 edges per lane.
        let max_lane: usize = warps[0]
            .iter()
            .map(|l| l.iter().map(|lw| lw.edges.len()).sum())
            .max()
            .unwrap();
        assert!(max_lane <= 11, "{max_lane}");
    }

    #[test]
    fn twc_buckets_by_degree() {
        // Mix of small and hub vertices.
        let mut b = ugc_graph::GraphBuilder::new(400);
        for i in 1..400 {
            b.add_edge(0, i as u32); // vertex 0: degree 399 (large)
        }
        b.add_edge(1, 2).add_edge(2, 3); // small
        let g = b.into_graph();
        let warps = assign(g.out_csr(), &[0, 1, 2, 3], LoadBalance::Twc);
        assert_eq!(covered_edges(&warps), 401);
    }

    #[test]
    fn empty_frontier_yields_no_warps() {
        let g = generators::path(4);
        for lb in LoadBalance::ALL {
            assert!(assign(g.out_csr(), &[], lb).is_empty(), "{lb:?}");
        }
    }
}
