//! Pretty printer producing the paper's Fig. 4 textual style.
//!
//! GraphIR is an in-memory structure; this printer exists for debugging,
//! golden tests, and documentation. Metadata is rendered inside `<...>`
//! after the node name, exactly like the figure.

use std::fmt::Write;

use crate::ir::{Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use crate::meta::Metadata;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for prop in &p.properties {
        let _ = writeln!(
            out,
            "VertexData{} {} : {} = {}",
            meta_str(&prop.meta),
            prop.name,
            prop.ty,
            print_expr(&prop.init)
        );
    }
    for g in &p.globals {
        match &g.init {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "Global{} {} : {} = {}",
                    meta_str(&g.meta),
                    g.name,
                    g.ty,
                    print_expr(e)
                );
            }
            None => {
                let _ = writeln!(out, "Global{} {} : {}", meta_str(&g.meta), g.name, g.ty);
            }
        }
    }
    for q in &p.queues {
        let _ = writeln!(
            out,
            "PrioQueue{} {} tracking {} from {}",
            meta_str(&q.meta),
            q.name,
            q.tracked_property,
            print_expr(&q.source)
        );
    }
    for f in &p.functions {
        out.push_str(&print_function(f));
    }
    out.push_str("Function main ( {\n");
    for s in &p.main {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("})\n");
    out
}

/// Renders one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect();
    let ret = f
        .ret
        .as_ref()
        .map(|r| format!(" -> {} {}", r.ty, r.name))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "Function{} {} ({}{}, {{",
        meta_str(&f.meta),
        f.name,
        params.join(", "),
        ret
    );
    for s in &f.body {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("})\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn meta_str(m: &Metadata) -> String {
    if m.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    format!("<{}>", inner.join(", "))
}

fn label_str(s: &Stmt) -> String {
    s.label
        .as_ref()
        .map(|l| format!("#{l}# "))
        .unwrap_or_default()
}

/// Renders one statement (with nested bodies) at `level` indentation.
pub fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    out.push_str(&label_str(s));
    let m = meta_str(&s.meta);
    match &s.kind {
        StmtKind::VarDecl { name, ty, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "VarDecl{m} {name} : {ty} = {}", print_expr(e));
            }
            None => {
                let _ = writeln!(out, "VarDecl{m} {name} : {ty}");
            }
        },
        StmtKind::Assign { target, value } => {
            let _ = writeln!(
                out,
                "AssignStmt{m}({}, {})",
                print_lvalue(target),
                print_expr(value)
            );
        }
        StmtKind::Reduce {
            target,
            op,
            value,
            tracking,
        } => {
            let t = tracking
                .as_ref()
                .map(|t| format!(", tracking={t}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "ReductionOp{m}({} {op} {}{t})",
                print_lvalue(target),
                print_expr(value)
            );
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "If{m} ({}, {{", print_expr(cond));
            for st in then_body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}, {\n");
            for st in else_body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("})\n");
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "WhileLoopStmt{m}({}, {{", print_expr(cond));
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("})\n");
        }
        StmtKind::For {
            var,
            start,
            end,
            body,
        } => {
            let _ = writeln!(
                out,
                "ForStmt{m}({var}, {}, {}, {{",
                print_expr(start),
                print_expr(end)
            );
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("})\n");
        }
        StmtKind::ExprStmt(e) => {
            let _ = writeln!(out, "ExprStmt{m}({})", print_expr(e));
        }
        StmtKind::Return(e) => {
            let _ = writeln!(out, "Return{m}({})", print_expr(e));
        }
        StmtKind::Break => {
            let _ = writeln!(out, "Break{m}");
        }
        StmtKind::EdgeSetIterator(d) => {
            let mut args = vec![d.graph.clone()];
            args.push(d.input.clone().unwrap_or_else(|| "ALL".into()));
            args.push(d.output.clone().unwrap_or_else(|| "NONE".into()));
            args.push(d.apply.clone());
            if let Some(f) = &d.src_filter {
                args.push(format!("from={f}"));
            }
            if let Some(f) = &d.dst_filter {
                args.push(format!("to={f}"));
            }
            if let Some(p) = &d.tracked_prop {
                args.push(format!("tracked={p}"));
            }
            if d.transposed {
                args.push("transposed".into());
            }
            let _ = writeln!(out, "EdgeSetIterator{m}({})", args.join(", "));
        }
        StmtKind::VertexSetIterator { set, apply } => {
            let _ = writeln!(
                out,
                "VertexSetIterator{m}({}, {apply})",
                set.clone().unwrap_or_else(|| "ALL".into())
            );
        }
        StmtKind::VertexSetFilter {
            input,
            out: o,
            filter,
        } => {
            let _ = writeln!(
                out,
                "VertexSetFilter{m}({}, {o}, {filter})",
                input.clone().unwrap_or_else(|| "ALL".into())
            );
        }
        StmtKind::EnqueueVertex { set, vertex } => {
            let _ = writeln!(
                out,
                "EnqueueVertex{m}({}, {})",
                set.clone().unwrap_or_else(|| "output_frontier".into()),
                print_expr(vertex)
            );
        }
        StmtKind::VertexSetDedup { set } => {
            let _ = writeln!(out, "VertexSetDedup{m}({set})");
        }
        StmtKind::UpdatePriority {
            queue,
            vertex,
            op,
            value,
        } => {
            let name = match op {
                crate::types::ReduceOp::Sum => "UpdatePrioritySum",
                _ => "UpdatePriorityMin",
            };
            let _ = writeln!(
                out,
                "{name}{m}({queue}, {}, {})",
                print_expr(vertex),
                print_expr(value)
            );
        }
        StmtKind::ListAppend { list, set } => {
            let _ = writeln!(out, "ListAppend{m}({list}, {set})");
        }
        StmtKind::ListRetrieve {
            list,
            index,
            out: o,
        } => {
            let _ = writeln!(out, "ListRetrieve{m}({list}, {}, {o})", print_expr(index));
        }
        StmtKind::ListPopBack { list, out: o } => {
            let _ = writeln!(out, "ListPopBack{m}({list}, {o})");
        }
        StmtKind::Delete { name } => {
            let _ = writeln!(out, "Delete{m}({name})");
        }
        StmtKind::Print(e) => {
            let _ = writeln!(out, "Print{m}({})", print_expr(e));
        }
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Prop { prop, index } => format!("{prop}[{}]", print_expr(index)),
    }
}

/// Renders one expression.
pub fn print_expr(e: &Expr) -> String {
    let m = meta_str(&e.meta);
    match &e.kind {
        ExprKind::Int(v) => format!("{v}"),
        ExprKind::Float(v) => format!("{v}"),
        ExprKind::Bool(v) => format!("{v}"),
        ExprKind::Var(n) => n.clone(),
        ExprKind::PropRead { prop, index } => format!("{prop}[{}]", print_expr(index)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", print_expr(lhs), print_expr(rhs))
        }
        ExprKind::Unary { op, operand } => format!("{op}{}", print_expr(operand)),
        ExprKind::Intrinsic { kind, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{kind}({})", args.join(", "))
        }
        ExprKind::Call { func, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{func}({})", args.join(", "))
        }
        ExprKind::CompareAndSwap {
            prop,
            index,
            expected,
            new,
        } => format!(
            "CompareAndSwap{m}({prop}[{}], {}, {})",
            print_expr(index),
            print_expr(expected),
            print_expr(new)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EdgeSetIteratorData, Param, Program};
    use crate::keys;
    use crate::types::{BinOp, Direction, Type};

    #[test]
    fn prints_bfs_like_ir() {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "updateEdge",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut cas = Expr::cas("parent", Expr::var("dst"), Expr::int(-1), Expr::var("src"));
        cas.meta.set(keys::IS_ATOMIC, true);
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "enqueue".into(),
            ty: Type::Bool,
            init: Some(cas),
        }));
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("enqueue"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        p.add_function(f);
        let mut it = Stmt::labeled(
            "s1",
            StmtKind::EdgeSetIterator(EdgeSetIteratorData {
                graph: "edges".into(),
                input: Some("frontier".into()),
                output: Some("output".into()),
                apply: "updateEdge".into(),
                src_filter: None,
                dst_filter: Some("toFilter".into()),
                tracked_prop: Some("parent".into()),
                transposed: false,
            }),
        );
        it.meta.set(keys::DIRECTION, Direction::Push);
        it.meta.set(keys::REQUIRES_OUTPUT, true);
        p.main.push(Stmt::new(StmtKind::While {
            cond: Expr::bin(
                BinOp::Ne,
                Expr::intrinsic(
                    crate::types::Intrinsic::VertexSetSize,
                    vec![Expr::var("frontier")],
                ),
                Expr::int(0),
            ),
            body: vec![it],
        }));

        let text = print_program(&p);
        assert!(text.contains("CompareAndSwap<is_atomic=true>"), "{text}");
        assert!(
            text.contains("EdgeSetIterator<direction=PUSH, requires_output=true>"),
            "{text}"
        );
        assert!(text.contains("#s1#"), "{text}");
        assert!(text.contains("WhileLoopStmt"), "{text}");
        assert!(text.contains("EnqueueVertex"), "{text}");
    }

    #[test]
    fn expr_precedence_is_parenthesized() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::int(1),
            Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3)),
        );
        assert_eq!(print_expr(&e), "(1 + (2 * 3))");
    }

    #[test]
    fn empty_program_prints_main() {
        let text = print_program(&Program::new());
        assert!(text.contains("Function main"));
    }
}
