//! SIGTERM → graceful drain, with zero dependencies.
//!
//! `std` exposes no signal API, but the C runtime the workspace already
//! links does. The classic self-pipe trick keeps the handler
//! async-signal-safe: the handler does exactly one `write(2)` of one
//! byte into a socketpair; a monitor thread blocks on the read end and
//! runs the ordinary [`Shared::begin_shutdown`] drain when the byte
//! arrives. Everything non-trivial happens on the monitor thread, never
//! in signal context.
//!
//! Installation is opt-in ([`crate::ServeConfig::install_sigterm`]) and
//! only `repro serve` opts in: an in-process test server must never trap
//! its host process's signals. Install-once is enforced here — a second
//! server in the same process with the flag set gets an error, not a
//! silently re-pointed handler.

use std::io::Read;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

use crate::Shared;

const SIGTERM: i32 = 15;

extern "C" {
    /// C89 `signal(2)` — present in every libc the workspace links.
    fn signal(signum: i32, handler: usize) -> usize;
    /// Raw `write(2)`, the only async-signal-safe thing the handler does.
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Write end of the self-pipe; < 0 until installed.
static PIPE_WR: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_sigterm(_signum: i32) {
    let fd = PIPE_WR.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = 1u8;
        // A full pipe or racing close is fine — one delivered byte is
        // all the monitor needs, and it is already draining if this one
        // is lost.
        unsafe {
            let _ = write(fd, &byte, 1);
        }
    }
}

/// Installs the process-wide SIGTERM handler (once) and spawns the
/// monitor thread that turns the signal into `shared.begin_shutdown()`.
///
/// The monitor thread is deliberately detached: on a non-signal shutdown
/// it stays parked on the read end until the process exits, which is
/// exactly the lifetime a process-wide signal watcher should have.
///
/// # Errors
///
/// When a handler was already installed by an earlier server in this
/// process, or the socketpair/thread cannot be created.
pub(crate) fn spawn_sigterm_drain(shared: Arc<Shared>) -> Result<(), String> {
    let (mut rd, wr) = UnixStream::pair().map_err(|e| format!("sigterm self-pipe: {e}"))?;
    if PIPE_WR
        .compare_exchange(-1, wr.as_raw_fd(), Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err("SIGTERM drain handler already installed in this process".into());
    }
    // Keep the write end alive for the life of the process: the handler
    // holds only the raw fd.
    std::mem::forget(wr);
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    std::thread::Builder::new()
        .name("ugc-serve-sigterm".into())
        .spawn(move || {
            let mut byte = [0u8; 1];
            loop {
                match rd.read(&mut byte) {
                    // A delivered byte: SIGTERM fired.
                    Ok(n) if n > 0 => break,
                    // EOF cannot happen (the write end is forgotten, not
                    // dropped); treat it as "nothing to watch" and park.
                    Ok(_) => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
            shared.begin_shutdown();
        })
        .map_err(|e| format!("cannot spawn sigterm monitor: {e}"))?;
    Ok(())
}
