//! The five algorithm specifications in the GraphIt DSL.
//!
//! These are the *single portable sources* of the evaluation: UGC compiles
//! exactly the same text for CPUs, GPUs, Swarm, and the HammerBlade
//! manycore — only the schedules differ (§IV-A: "we tune the schedules for
//! each application and graph pair, but always compile from exactly the
//! same algorithm specification").

/// PageRank, 20 damped iterations (paper's topology-driven baseline).
pub const PAGERANK: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const damp : float = 0.85;
const beta_score : float = (1.0 - damp) / to_float(vertices.size());
const old_rank : vector{Vertex}(float) = 1.0 / to_float(vertices.size());
const new_rank : vector{Vertex}(float) = 0.0;
const contrib : vector{Vertex}(float) = 0.0;
const error : vector{Vertex}(float) = 0.0;

func computeContrib(v : Vertex)
    var d : int = out_degree(v);
    if d != 0
        contrib[v] = old_rank[v] / to_float(d);
    else
        contrib[v] = 0.0;
    end
end

func updateEdge(src : Vertex, dst : Vertex)
    new_rank[dst] += contrib[src];
end

func updateVertex(v : Vertex)
    var nr : float = beta_score + damp * new_rank[v];
    error[v] = fabs(nr - old_rank[v]);
    old_rank[v] = nr;
    new_rank[v] = 0.0;
end

func main()
    for i in 0:20
        vertices.apply(computeContrib);
        #s1# edges.apply(updateEdge);
        vertices.apply(updateVertex);
    end
end
"#;

/// Breadth-first search (the paper's Fig. 2).
pub const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;

func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end

func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end

func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
    delete frontier;
end
"#;

/// Single-source shortest paths with ∆-stepping (priority-driven).
pub const SSSP_DELTA: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex,int) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const dist : vector{Vertex}(int) = 2147483647;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(dist, start_vertex);

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    pq.updatePriorityMin(dst, new_dist);
end

func main()
    dist[start_vertex] = 0;
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(updateEdge);
        delete frontier;
    end
end
"#;

/// Connected components by min-label propagation (topology-driven until
/// the frontier drains).
pub const CC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const IDs : vector{Vertex}(int) = 0;

func init(v : Vertex)
    IDs[v] = v;
end

func updateEdge(src : Vertex, dst : Vertex)
    IDs[dst] min= IDs[src];
end

func main()
    var n : int = vertices.size();
    vertices.apply(init);
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(n);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).applyModified(updateEdge, IDs, true);
        delete frontier;
        frontier = output;
    end
    delete frontier;
end
"#;

/// Betweenness centrality from a single source (forward sigma counting,
/// backward dependency accumulation over the transposed edges).
pub const BC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const t_edges : edgeset{Edge}(Vertex,Vertex) = edges.transpose();
const vertices : vertexset{Vertex} = edges.getVertices();
const start_vertex : Vertex;
const num_paths : vector{Vertex}(int) = 0;
const deps : vector{Vertex}(float) = 0.0;
const visited : vector{Vertex}(bool) = false;
const centrality : vector{Vertex}(float) = 0.0;

func num_paths_update(src : Vertex, dst : Vertex)
    num_paths[dst] += num_paths[src];
end

func visited_filter(v : Vertex) -> output : bool
    output = (visited[v] == false);
end

func mark_visited(v : Vertex)
    visited[v] = true;
end

func clear_visited(v : Vertex)
    visited[v] = false;
end

func backward_vertex_f(v : Vertex)
    visited[v] = true;
    deps[v] += 1.0 / to_float(num_paths[v]);
end

func backward_update(src : Vertex, dst : Vertex)
    deps[dst] += deps[src];
end

func final_vertex_f(v : Vertex)
    if num_paths[v] != 0
        centrality[v] = (deps[v] - 1.0 / to_float(num_paths[v])) * to_float(num_paths[v]);
    else
        centrality[v] = 0.0;
    end
end

func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    num_paths[start_vertex] = 1;
    visited[start_vertex] = true;
    var trees : list{vertexset{Vertex}} = new list{vertexset{Vertex}}();
    trees.append(frontier);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} =
            edges.from(frontier).to(visited_filter).applyModified(num_paths_update, num_paths, true);
        output.apply(mark_visited);
        trees.append(output);
        delete frontier;
        frontier = output;
    end
    delete frontier;
    vertices.apply(clear_visited);
    var empty_set : vertexset{Vertex} = trees.pop();
    delete empty_set;
    #s2# while (trees.getSize() > 0)
        var level : vertexset{Vertex} = trees.pop();
        level.apply(backward_vertex_f);
        #s3# t_edges.from(level).to(visited_filter).apply(backward_update);
        delete level;
    end
    vertices.apply(final_vertex_f);
end
"#;

/// Triangle counting by sorted-neighbor intersection: every directed edge
/// `(src, dst)` contributes `|N(src) ∩ N(dst)|` to `tri[dst]`. On a
/// symmetric graph the vector sums to 6× the triangle count (each triangle
/// is seen from both directions of its three edges).
pub const TC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const tri : vector{Vertex}(int) = 0;

func countEdge(src : Vertex, dst : Vertex)
    tri[dst] += intersect_count(src, dst);
end

func main()
    #s1# edges.apply(countEdge);
end
"#;

/// K-core decomposition by iterative peeling: at stage `cur_k`, vertices
/// whose remaining degree is below `cur_k` are stripped (coreness
/// `cur_k - 1`) and their neighbors' degrees decremented, cascading until
/// the stage drains; then `cur_k` advances.
pub const KCORE: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const deg : vector{Vertex}(int) = 0;
const core : vector{Vertex}(int) = 0;
const alive : vector{Vertex}(bool) = true;
const cur_k : int = 0;

func initDeg(v : Vertex)
    deg[v] = out_degree(v);
end

func belowK(v : Vertex) -> output : bool
    output = false;
    if alive[v] == true
        if deg[v] < cur_k
            output = true;
        end
    end
end

func killVertex(v : Vertex)
    alive[v] = false;
    core[v] = cur_k - 1;
end

func decDeg(src : Vertex, dst : Vertex)
    deg[dst] += -1;
end

func main()
    vertices.apply(initDeg);
    var remaining : int = vertices.size();
    cur_k = 1;
    #s0# while (remaining > 0)
        var peel : vertexset{Vertex} = vertices.filter(belowK);
        if peel.getVertexSetSize() == 0
            cur_k = cur_k + 1;
        else
            peel.apply(killVertex);
            #s1# edges.from(peel).apply(decDeg);
            remaining = remaining - peel.getVertexSetSize();
        end
        delete peel;
    end
end
"#;

/// Synchronous min-label propagation with double buffering and explicit
/// convergence counting. Unlike CC's monotone in-place `min=`, each round
/// resets the scratch buffer from the current labels, so a vertex's
/// working label is *not* monotone across rounds — convergence must be
/// detected by the `num_changed` global reduction, not modified-tracking.
/// `lp_seed` rotates the initial labeling (extern, default 1); `max_iters`
/// bounds the rounds (extern, default 20).
pub const LP: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(argv_1);
const vertices : vertexset{Vertex} = edges.getVertices();
const nv : int = vertices.size();
const labels : vector{Vertex}(int) = 0;
const next_label : vector{Vertex}(int) = 0;
const max_iters : int;
const lp_seed : int;
const num_changed : int = 0;

func initLabel(v : Vertex)
    labels[v] = (v + lp_seed) %% nv;
end

func resetNext(v : Vertex)
    next_label[v] = labels[v];
end

func propagate(src : Vertex, dst : Vertex)
    next_label[dst] min= labels[src];
end

func adopt(v : Vertex)
    if next_label[v] != labels[v]
        labels[v] = next_label[v];
        num_changed += 1;
    end
end

func main()
    vertices.apply(initLabel);
    var iter : int = 0;
    num_changed = 1;
    #s0# while (num_changed != 0)
        if iter >= max_iters
            break;
        end
        num_changed = 0;
        vertices.apply(resetNext);
        #s1# edges.apply(propagate);
        vertices.apply(adopt);
        iter = iter + 1;
    end
end
"#;

#[cfg(test)]
mod tests {
    #[test]
    fn sources_are_nonempty_and_labeled() {
        for (name, src) in [
            ("PR", super::PAGERANK),
            ("BFS", super::BFS),
            ("SSSP", super::SSSP_DELTA),
            ("CC", super::CC),
            ("BC", super::BC),
            ("TC", super::TC),
            ("KCORE", super::KCORE),
            ("LP", super::LP),
        ] {
            assert!(src.contains("#s1#"), "{name} missing schedule label");
            assert!(src.contains("func main()"), "{name} missing main");
        }
    }
}
