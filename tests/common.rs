//! Shared helpers for the cross-crate integration tests.

use std::collections::HashMap;

use ugc_algorithms::Algorithm;
use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::value::Value;
use ugc_schedule::ScheduleRef;

/// Compiles an algorithm through the full hardware-independent pipeline,
/// attaching `sched` at the algorithm's canonical schedule path when given.
///
/// # Panics
///
/// Panics on frontend/midend failures (test programs must compile).
pub fn compile(algo: Algorithm, sched: Option<ScheduleRef>) -> Program {
    compile_with(
        algo,
        &match sched {
            Some(s) => vec![(algo.schedule_path().to_string(), s)],
            None => vec![],
        },
    )
}

/// Compiles with explicit `(label path, schedule)` pairs.
///
/// # Panics
///
/// Panics on frontend/midend failures.
pub fn compile_with(algo: Algorithm, scheds: &[(String, ScheduleRef)]) -> Program {
    let mut prog = ugc_midend::frontend_to_ir(algo.source())
        .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
    for (path, s) in scheds {
        ugc_schedule::apply_schedule(&mut prog, path, s.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
    }
    ugc_midend::run_passes(&mut prog).unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
    prog
}

/// The extern bindings an algorithm needs: `start_vertex` when required,
/// plus the algorithm's default extern consts (e.g. LP's
/// `max_iters`/`lp_seed`).
pub fn externs_for(algo: Algorithm, start: u32) -> HashMap<String, Value> {
    let mut m = HashMap::new();
    for (name, v) in algo.default_externs() {
        m.insert((*name).to_string(), Value::Int(*v));
    }
    if algo.needs_start_vertex() {
        m.insert("start_vertex".to_string(), Value::Int(start as i64));
    }
    m
}

/// A symmetric path graph (both directions of each chain edge) — unlike
/// `generators::path`, which is directed. Entirely coreness 1.
pub fn sym_path(n: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 0..n.saturating_sub(1) as u32 {
        edges.push((v, v + 1));
        edges.push((v + 1, v));
    }
    Graph::from_edges(n, &edges)
}

/// The small graph menagerie used across backend correctness tests.
/// All are symmetric (CC-safe) and weighted where relevant. The last four
/// are adversarial shapes for the scenario suite: disjoint cliques
/// (maximum triangle density), a long path (coreness 1 everywhere), a
/// barbell (k-core peeling cascade across the bridge), and a complete
/// bipartite graph (zero triangles; LP two-coloring oscillation bait).
pub fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("two_communities", ugc_graph::generators::two_communities()),
        (
            "road_16x16",
            ugc_graph::generators::road_grid(16, 16, 0.05, 3, true),
        ),
        ("rmat_8", ugc_graph::generators::rmat(8, 4, 7, true)),
        (
            "uniform_200",
            ugc_graph::generators::uniform_random(200, 600, 5, true),
        ),
        ("clique_batch", ugc_graph::generators::clique_batch(3, 5)),
        ("long_path", sym_path(24)),
        ("barbell", ugc_graph::generators::barbell(5, 3)),
        ("bipartite", ugc_graph::generators::bipartite(4, 5)),
    ]
}

/// Validates an algorithm's result properties read from snapshots.
///
/// # Panics
///
/// Panics with the validator's explanation on mismatch.
pub fn validate(
    algo: Algorithm,
    graph: &Graph,
    start: u32,
    ints: &dyn Fn(&str) -> Vec<i64>,
    floats: &dyn Fn(&str) -> Vec<f64>,
) {
    match algo {
        Algorithm::Bfs => {
            ugc_algorithms::validate::check_bfs_parents(graph, start, &ints("parent")).unwrap()
        }
        Algorithm::Sssp => {
            ugc_algorithms::validate::check_sssp_distances(graph, start, &ints("dist")).unwrap()
        }
        Algorithm::Cc => ugc_algorithms::validate::check_cc_labels(graph, &ints("IDs")).unwrap(),
        Algorithm::PageRank => {
            ugc_algorithms::validate::check_pagerank(graph, &floats("old_rank"), 1e-7).unwrap()
        }
        Algorithm::Bc => {
            ugc_algorithms::validate::check_bc(graph, start, &floats("centrality"), 1e-6).unwrap()
        }
        Algorithm::Tc => {
            ugc_algorithms::validate::check_triangle_counts(graph, &ints("tri")).unwrap()
        }
        Algorithm::KCore => ugc_algorithms::validate::check_coreness(graph, &ints("core")).unwrap(),
        // Matches the default externs seeded by `externs_for` /
        // `Compiler::new`: labels are compared up to partition equivalence.
        Algorithm::Lp => {
            ugc_algorithms::validate::check_lp_labels(graph, &ints("labels"), 20, 1).unwrap()
        }
    }
}
