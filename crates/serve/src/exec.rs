//! Batch execution: turns a [`Pending`] batch into response lines.
//!
//! Batchable queries (BFS/SSSP) run on the multi-source engine
//! ([`ugc_algorithms::multi_source`]) — one traversal, one answer lane per
//! query — inside a containment boundary with the per-request watchdog
//! budget. Transient failures retry with the supervisor's deterministic
//! backoff; a failing multi-query batch **degrades to singles** (so one
//! poisoned query cannot take its batch-mates down), and a failing single
//! falls through to [`Compiler::run_with_policy`], whose fallback chain
//! (CPU backend, then sequential reference) is the same supervisor every
//! other entry point of the workspace uses. Non-batchable queries
//! (PR/CC/BC) take that supervised path directly, exercising the shared
//! thread pool.

use std::sync::Arc;
use std::time::Instant;

use ugc::{Algorithm, Compiler, Policy, Target};
use ugc_algorithms::multi_source::{self as ms, TraversalStats};
use ugc_algorithms::reference::INF;
use ugc_graph::Graph;
use ugc_resilience::{backoff_ms, budget, count_fallback, count_retry, ErrorClass};
use ugc_runtime::{contain, ExecError};

use crate::cache::GraphCache;
use crate::gate::Pending;
use crate::protocol::{checksum_floats, checksum_ints, err_line, QuerySpec};
use crate::tuned::{TuneJob, TunedSchedules};
use crate::ServeCounters;

/// Shared execution context handed to every worker thread.
pub struct Executor {
    /// The build-once graph store.
    pub cache: Arc<GraphCache>,
    /// Per-request supervisor policy (budgets, retries, fallback chain).
    pub policy: Policy,
    /// The server's counters.
    pub counters: Arc<ServeCounters>,
    /// Background-tuned schedules per (dataset, scale, algorithm).
    pub tuned: Arc<TunedSchedules>,
    /// Where first-touch tuning jobs go (the background tuner thread).
    pub tuner_tx: std::sync::mpsc::Sender<TuneJob>,
}

impl Executor {
    /// Runs one batch to completion, answering every member.
    pub fn run_batch(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let spec0 = batch[0].spec;
        let graph = self.cache.get(spec0.dataset, spec0.scale);
        // First query of a (dataset, scale, algorithm) triple: enqueue a
        // background tuning job on the now-resident graph. A dead tuner
        // (send error) is fine — the triple just stays untuned.
        let key = (spec0.dataset, spec0.scale, spec0.algo);
        if self.tuned.mark_pending(key) {
            self.counters.tuned_pending.incr();
            let job = TuneJob {
                dataset: spec0.dataset,
                scale: spec0.scale,
                algo: spec0.algo,
                graph: graph.clone(),
            };
            if self.tuner_tx.send(job).is_err() {
                self.tuned.store(key, None);
                self.counters.tuned_pending.dec();
            }
        }
        let n = graph.num_vertices();
        let mut valid = Vec::with_capacity(batch.len());
        for p in batch {
            if p.spec.algo.needs_start_vertex() && p.spec.source as usize >= n {
                let msg = format!(
                    "source {} out of range (graph has {n} vertices)",
                    p.spec.source
                );
                self.respond(p, err_line(ErrorClass::Permanent.label(), &msg));
            } else {
                valid.push(p);
            }
        }
        if valid.is_empty() {
            return;
        }
        if spec0.batchable() {
            self.counters.batch_size.record(valid.len() as u64);
            self.run_traversal(&graph, valid);
        } else {
            for p in valid {
                self.counters.batch_size.record(1);
                self.run_supervised(&graph, p);
            }
        }
    }

    /// Multi-source (or single fast-path) traversal for a BFS/SSSP batch.
    fn run_traversal(&self, graph: &Arc<Graph>, batch: Vec<Pending>) {
        if batch.len() > 1 {
            self.counters.batches.incr();
            self.counters.coalesced.add(batch.len() as u64 - 1);
        }
        let spec0 = batch[0].spec;
        let sources: Vec<u32> = batch.iter().map(|p| p.spec.source).collect();
        let started = Instant::now();
        let mut attempt = 0u32;
        let outcome = loop {
            let result = {
                let _watchdog = budget::scope(self.policy.wall_budget, self.policy.cycle_budget);
                let g = graph.clone();
                let srcs = sources.clone();
                contain(std::panic::AssertUnwindSafe(move || {
                    let out = traverse(&g, spec0.algo, &srcs);
                    if let Some(msg) = budget::wall_exceeded() {
                        return Err(ExecError::classified(ErrorClass::Budget, msg));
                    }
                    Ok(out)
                }))
            };
            match result {
                Ok(out) => break Ok(out),
                Err(e) if e.class == ErrorClass::Transient && attempt < self.policy.max_retries => {
                    attempt += 1;
                    count_retry();
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt)));
                }
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok((lanes, stats)) => {
                let ms_elapsed = started.elapsed().as_secs_f64() * 1e3;
                self.counters.work.add(stats.edge_scans);
                let batch_len = batch.len();
                for (lane, p) in batch.into_iter().enumerate() {
                    let line =
                        traversal_ok_line(&p.spec, &lanes[lane], batch_len, &stats, ms_elapsed);
                    self.respond(p, line);
                }
            }
            Err(_) if batch.len() > 1 => {
                // Degrade: split the batch and give every member its own
                // (still supervised) run.
                count_fallback();
                self.counters.degraded.incr();
                for p in batch {
                    self.run_traversal(graph, vec![p]);
                }
            }
            Err(_) => {
                // Single query: hand it to the full supervisor chain (CPU
                // backend, then the sequential reference).
                count_fallback();
                let p = batch.into_iter().next().expect("single");
                self.run_supervised(graph, p);
            }
        }
    }

    /// One query through the workspace supervisor ([`Compiler::run_with_policy`]),
    /// under the background-tuned schedule when one has resolved.
    fn run_supervised(&self, graph: &Arc<Graph>, p: Pending) {
        let spec = p.spec;
        let mut c = Compiler::new(spec.algo);
        if let Some(sched) = self.tuned.lookup((spec.dataset, spec.scale, spec.algo)) {
            c.schedule(spec.algo.schedule_path(), sched);
            self.counters.tuned_hits.incr();
        }
        if spec.algo.needs_start_vertex() {
            c.start_vertex(spec.source);
        }
        if let Some(mi) = spec.max_iters {
            c.bind("max_iters", ugc_runtime::value::Value::Int(mi));
        }
        let line = match c.run_with_policy(Target::Cpu, graph, &self.policy) {
            Ok(r) => {
                let checksum = match spec.algo {
                    Algorithm::Bfs => checksum_ints(r.property_ints("parent")),
                    Algorithm::Sssp => checksum_ints(r.property_ints("dist")),
                    Algorithm::Cc => checksum_ints(r.property_ints("IDs")),
                    Algorithm::PageRank => checksum_floats(r.property_floats("old_rank")),
                    Algorithm::Bc => checksum_floats(r.property_floats("centrality")),
                    Algorithm::Tc => checksum_ints(r.property_ints("tri")),
                    Algorithm::KCore => checksum_ints(r.property_ints("core")),
                    Algorithm::Lp => checksum_ints(r.property_ints("labels")),
                };
                let mut line = format!(
                    "ok algo={} dataset={} scale={} source={} n={} checksum={checksum:#018x} \
                     batch=1 attempts={} ms={:.3}",
                    spec.algo.name(),
                    spec.dataset.abbrev(),
                    spec.scale.name(),
                    spec.source,
                    graph.num_vertices(),
                    r.attempts,
                    r.time_ms,
                );
                if let Some(d) = &r.degraded_to {
                    line.push_str(&format!(" degraded={d}"));
                }
                // The k= argument reports the membership count at level k
                // on top of the full coreness checksum.
                if let (Algorithm::KCore, Some(k)) = (spec.algo, spec.k) {
                    let size = r.property_ints("core").iter().filter(|&&c| c >= k).count();
                    line.push_str(&format!(" kcore_size={size}"));
                }
                line
            }
            Err(e) => err_line(e.class.label(), &e.message),
        };
        self.respond(p, line);
    }

    /// Sends the response, settling the ok/error counters and the
    /// end-to-end latency histogram.
    fn respond(&self, p: Pending, line: String) {
        if line.starts_with("ok") {
            self.counters.ok.incr();
        } else {
            self.counters.errors.incr();
        }
        self.counters
            .latency
            .record(p.enqueued.elapsed().as_micros() as u64);
        // A handler that gave up (dropped connection) is not an error.
        let _ = p.reply.send(line);
    }
}

/// The traversal itself: single-query fast path or multi-source lanes.
fn traverse(g: &Graph, algo: Algorithm, sources: &[u32]) -> (Vec<Vec<i64>>, TraversalStats) {
    match (algo, sources) {
        (Algorithm::Bfs, [s]) => {
            let (levels, stats) = ms::bfs_levels_counted(g, *s);
            (vec![levels], stats)
        }
        (Algorithm::Bfs, _) => ms::ms_bfs_levels(g, sources),
        (Algorithm::Sssp, [s]) => {
            let (dist, stats) = ms::sssp_distances_counted(g, *s);
            (vec![dist], stats)
        }
        (Algorithm::Sssp, _) => ms::ms_sssp_distances(g, sources),
        (other, _) => unreachable!("{} is not batchable", other.name()),
    }
}

fn traversal_ok_line(
    spec: &QuerySpec,
    lane: &[i64],
    batch: usize,
    stats: &TraversalStats,
    ms_elapsed: f64,
) -> String {
    let reached = match spec.algo {
        Algorithm::Bfs => lane.iter().filter(|&&l| l >= 0).count(),
        _ => lane.iter().filter(|&&d| d < INF).count(),
    };
    format!(
        "ok algo={} dataset={} scale={} source={} n={} reached={reached} \
         checksum={:#018x} batch={batch} work={} rounds={} ms={ms_elapsed:.3}",
        spec.algo.name(),
        spec.dataset.abbrev(),
        spec.scale.name(),
        spec.source,
        lane.len(),
        checksum_ints(lane),
        stats.edge_scans,
        stats.rounds,
    )
}
