//! Soundness of the backend-declared schedule search spaces: EVERY point a
//! GraphVM's [`ScheduleSpace`] materializes must compile and produce
//! validator-correct results. The autotuner explores these spaces blindly,
//! so an unsound point here would silently corrupt tuning runs.
//!
//! One property per target; each case draws a fresh tiny weighted graph
//! and sweeps the full space for BFS (data-driven), SSSP (ordered, with ∆
//! sweeps), PageRank (topology-driven), and the expanded suite — TC
//! (intersection sweeps), k-core (filter-driven peeling), and LP
//! (min-reduction exchange) — all three pruned like PR but exercising
//! different operators under every schedule point.

use ugc::{Algorithm, Compiler, Target};
use ugc_autotune::{space_for, space_params};
use ugc_integration::validate;
use ugc_schedule::space::PointIter;
use ugc_testkit::{check, Config, Prng};

const START: u32 = 0;
const ALGOS: [Algorithm; 6] = [
    Algorithm::Bfs,
    Algorithm::Sssp,
    Algorithm::PageRank,
    Algorithm::Tc,
    Algorithm::KCore,
    Algorithm::Lp,
];

fn tiny_graph(seed: u64) -> ugc_graph::Graph {
    // Symmetric-ish random graph, weighted so SSSP is runnable.
    ugc_graph::generators::uniform_random(96, 320, seed, true)
}

/// Runs every materialized point of `target`'s space for `algo` on `graph`
/// and validates the results. Returns how many points ran.
fn sweep(target: Target, algo: Algorithm, graph: &ugc_graph::Graph) -> usize {
    let space = space_for(target);
    let params = space_params(algo, graph);
    let dims = space.dimensions(&params);
    let mut ran = 0usize;
    for pt in PointIter::new(&dims) {
        let Some(sched) = space.materialize(&params, &pt) else {
            continue;
        };
        let label = ugc_schedule::space::point_label(&dims, &pt);
        let mut c = Compiler::new(algo);
        c.schedule(algo.schedule_path(), sched);
        if algo.needs_start_vertex() {
            c.start_vertex(START);
        }
        let run = c.run(target, graph).unwrap_or_else(|e| {
            panic!(
                "{}/{} point `{label}` failed: {e}",
                space.target_name(),
                algo.name()
            )
        });
        validate(
            algo,
            graph,
            START,
            &|name| run.property_ints(name).to_vec(),
            &|name| run.property_floats(name).to_vec(),
        );
        ran += 1;
    }
    assert!(
        ran >= 2,
        "{}/{}: space degenerate ({ran} points)",
        space.target_name(),
        algo.name()
    );
    ran
}

fn check_target(target: Target, cases: u32) {
    check(
        &format!("schedule_space_sound_{}", space_for(target).target_name()),
        Config::with_cases(cases),
        |rng: &mut Prng| rng.gen_range(0..1_000_000u64),
        |&seed| {
            let graph = tiny_graph(seed);
            for algo in ALGOS {
                sweep(target, algo, &graph);
            }
        },
    );
}

#[test]
fn cpu_space_points_are_all_sound() {
    check_target(Target::Cpu, 2);
}

#[test]
fn gpu_space_points_are_all_sound() {
    check_target(Target::Gpu, 2);
}

#[test]
fn swarm_space_points_are_all_sound() {
    check_target(Target::Swarm, 2);
}

#[test]
fn hb_space_points_are_all_sound() {
    check_target(Target::HammerBlade, 2);
}

/// The acceptance floor from the issue: the GPU space must offer a real
/// search space (≥20 distinct candidates), not the old 3-candidate list.
#[test]
fn gpu_space_enumerates_at_least_twenty_candidates() {
    let graph = tiny_graph(7);
    let space = space_for(Target::Gpu);
    let params = space_params(Algorithm::Bfs, &graph);
    let dims = space.dimensions(&params);
    let n = PointIter::new(&dims)
        .filter(|pt| space.materialize(&params, pt).is_some())
        .count();
    assert!(n >= 20, "only {n} GPU candidates");
}
