//! Backend-declared schedule search spaces — the substrate of the
//! `ugc-autotune` subsystem.
//!
//! The paper's §IV-A notes that "techniques like autotuning can find
//! high-performance schedules in relatively little time", and the GPU
//! follow-up work shows the GPU schedule space (load balancer × kernel
//! fusion × traversal direction × frontier creation) is too large to tune
//! by hand. This module gives every GraphVM a uniform way to *declare*
//! that space: a [`ScheduleSpace`] names its tunable [`Dimension`]s (each
//! a small set of labeled levels) and materializes any point of the
//! cross-product into a concrete [`ScheduleRef`].
//!
//! The trait lives here — in the hardware-independent scheduling language —
//! so each backend can implement its space next to its schedule type
//! without new dependency edges; the search strategies and the persistent
//! tuning cache live in the `ugc-autotune` crate.
//!
//! # Example
//!
//! ```
//! use ugc_schedule::space::{cardinality, point_label, Dimension};
//!
//! let dims = vec![
//!     Dimension::new("direction", vec!["push", "pull"]),
//!     Dimension::new("dedup", vec!["off", "on"]),
//! ];
//! assert_eq!(cardinality(&dims), 4);
//! assert_eq!(point_label(&dims, &[1, 0]), "direction=pull,dedup=off");
//! ```

use crate::ScheduleRef;

/// Algorithm/graph facts a space may condition its dimensions on.
///
/// Spaces never see the algorithm itself — only the structural traits the
/// scheduling language already keys on: whether the loop is priority-driven
/// (∆ sweeps apply) or frontier-driven (direction choices apply), and the
/// graph size (levels that cannot pay off at a size may be dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceParams {
    /// Priority-driven (ordered) algorithm: the ∆ sweep applies and the
    /// traversal direction is pinned to push (ordered pull traversal is
    /// not part of any GraphVM's space).
    pub ordered: bool,
    /// Frontier-driven algorithm: direction choices (pull/hybrid) apply.
    pub data_driven: bool,
    /// `|V|` of the graph being tuned.
    pub num_vertices: usize,
}

/// One tunable axis of a schedule space: a name plus its labeled levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Axis name, e.g. `"lb"` or `"delta"`.
    pub name: &'static str,
    /// Level labels, e.g. `["vertex", "twc", …]`. Never empty.
    pub levels: Vec<&'static str>,
}

impl Dimension {
    /// Creates a dimension. Panics if `levels` is empty (a zero-level axis
    /// would make the whole space empty by accident).
    pub fn new(name: &'static str, levels: Vec<&'static str>) -> Self {
        assert!(!levels.is_empty(), "dimension `{name}` has no levels");
        Dimension { name, levels }
    }
}

/// One row of a backend's cost-model pruning table: when a candidate's
/// dominant attribution component is `component`, sweeping `axis` cannot
/// move that component, so a guided search may skip it.
///
/// Rules are declarative and live next to each backend's
/// [`ScheduleSpace`] (the backend knows which knobs touch which hardware
/// resource); the search engine in `ugc-autotune` consults them after
/// every measured candidate. `reason` is the human-readable justification
/// `repro tune --explain` prints — every pruned axis must be explainable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneRule {
    /// Dominant attribution component (a key of the backend's attribution
    /// table, e.g. `"mem_stall"`) that triggers this rule.
    pub component: &'static str,
    /// The [`Dimension::name`] whose sweep cannot move that component.
    pub axis: &'static str,
    /// Why the axis cannot help, for the `--explain` report.
    pub reason: &'static str,
}

/// A backend-declared schedule search space.
///
/// Implementations declare their tunable [`Dimension`]s for a given
/// [`SpaceParams`] and build the schedule at any point of the
/// cross-product. The contract the autotuner (and the soundness property
/// test) relies on:
///
/// * `materialize` returns `None` **only** for points that are redundant
///   aliases of another point (e.g. a block-size level while blocking is
///   off), never for unsound ones — every `Some` schedule must compile and
///   produce validator-correct results.
/// * `dimensions` and `materialize` are pure functions of their inputs, so
///   search is deterministic and cached points can be re-materialized.
/// * `prune_rules` only names axes that genuinely cannot move their
///   component: pruning must change search *cost*, not winner *quality*
///   (beyond noise) — the guided-vs-blind property test enforces this.
pub trait ScheduleSpace: Send + Sync {
    /// Display name of the backend, e.g. `"gpu"`.
    fn target_name(&self) -> &'static str;

    /// The tunable dimensions for these parameters, in a fixed order.
    fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension>;

    /// Builds the schedule at `point` (one level index per dimension, same
    /// order as [`ScheduleSpace::dimensions`]). Returns `None` for
    /// redundant-alias points.
    fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef>;

    /// The backend's cost-model pruning table. Empty by default: a space
    /// without rules is searched blind.
    fn prune_rules(&self) -> &'static [PruneRule] {
        &[]
    }
}

/// Number of raw points in the cross-product (before alias removal),
/// saturating at `u64::MAX`.
pub fn cardinality(dims: &[Dimension]) -> u64 {
    dims.iter()
        .map(|d| d.levels.len() as u64)
        .fold(1u64, |a, b| a.saturating_mul(b))
}

/// Human-readable name of a point: `dim=level` pairs joined by commas.
///
/// # Panics
///
/// Panics if `point` does not index `dims` (wrong length or out-of-range
/// level).
pub fn point_label(dims: &[Dimension], point: &[usize]) -> String {
    assert_eq!(dims.len(), point.len(), "point does not match dimensions");
    dims.iter()
        .zip(point)
        .map(|(d, &l)| format!("{}={}", d.name, d.levels[l]))
        .collect::<Vec<_>>()
        .join(",")
}

/// Odometer iterator over every point of a dimension list, in
/// lexicographic order (last dimension fastest). Deterministic, so
/// exhaustive search visits candidates in a stable order.
#[derive(Debug, Clone)]
pub struct PointIter {
    sizes: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl PointIter {
    /// Iterates the cross-product of `dims`.
    pub fn new(dims: &[Dimension]) -> Self {
        let sizes: Vec<usize> = dims.iter().map(|d| d.levels.len()).collect();
        let next = if sizes.is_empty() || sizes.iter().any(|&s| s == 0) {
            None
        } else {
            Some(vec![0; sizes.len()])
        };
        PointIter { sizes, next }
    }
}

impl Iterator for PointIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance the odometer.
        let mut n = cur.clone();
        let mut i = n.len();
        loop {
            if i == 0 {
                self.next = None;
                break;
            }
            i -= 1;
            n[i] += 1;
            if n[i] < self.sizes[i] {
                self.next = Some(n);
                break;
            }
            n[i] = 0;
        }
        Some(cur)
    }
}

/// The shared ∆ sweep for priority-driven algorithms: covers every value
/// the paper's hand-tuned schedules use across the four architectures
/// (1, 4, 8, 16, 32, 64).
pub const DELTA_SWEEP: [(&str, i64); 6] = [
    ("1", 1),
    ("4", 4),
    ("8", 8),
    ("16", 16),
    ("32", 32),
    ("64", 64),
];

/// The ∆ dimension: the full sweep for ordered algorithms, a single fixed
/// level otherwise (so point shapes stay uniform per parameter set).
pub fn delta_dimension(p: &SpaceParams) -> Dimension {
    if p.ordered {
        Dimension::new("delta", DELTA_SWEEP.iter().map(|(l, _)| *l).collect())
    } else {
        Dimension::new("delta", vec!["1"])
    }
}

/// The ∆ value at a level index of [`delta_dimension`].
pub fn delta_value(level: usize) -> i64 {
    DELTA_SWEEP[level].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefaultSchedule;

    struct ToySpace;

    impl ScheduleSpace for ToySpace {
        fn target_name(&self) -> &'static str {
            "toy"
        }
        fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
            let mut dims = vec![Dimension::new("a", vec!["x", "y", "z"])];
            dims.push(delta_dimension(p));
            dims
        }
        fn materialize(&self, _p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
            // Level "z" aliases "y" in this toy space.
            if point[0] == 2 {
                return None;
            }
            Some(ScheduleRef::simple(DefaultSchedule::new()))
        }
    }

    fn params(ordered: bool) -> SpaceParams {
        SpaceParams {
            ordered,
            data_driven: true,
            num_vertices: 100,
        }
    }

    #[test]
    fn cardinality_is_product() {
        let dims = ToySpace.dimensions(&params(true));
        assert_eq!(cardinality(&dims), 3 * DELTA_SWEEP.len() as u64);
        let dims = ToySpace.dimensions(&params(false));
        assert_eq!(cardinality(&dims), 3);
    }

    #[test]
    fn point_iter_visits_every_point_once() {
        let dims = ToySpace.dimensions(&params(true));
        let pts: Vec<_> = PointIter::new(&dims).collect();
        assert_eq!(pts.len() as u64, cardinality(&dims));
        let mut uniq = pts.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), pts.len());
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[1], vec![0, 1], "last dimension advances fastest");
    }

    #[test]
    fn point_iter_on_no_dimensions_is_empty() {
        assert_eq!(PointIter::new(&[]).count(), 0);
    }

    #[test]
    fn labels_are_readable() {
        let dims = ToySpace.dimensions(&params(true));
        assert_eq!(point_label(&dims, &[1, 3]), "a=y,delta=16");
    }

    #[test]
    fn delta_sweep_is_fixed_when_unordered() {
        let d = delta_dimension(&params(false));
        assert_eq!(d.levels, vec!["1"]);
        let d = delta_dimension(&params(true));
        assert_eq!(d.levels.len(), DELTA_SWEEP.len());
        assert_eq!(delta_value(5), 64);
    }

    #[test]
    fn alias_points_materialize_to_none() {
        let p = params(false);
        assert!(ToySpace.materialize(&p, &[2, 0]).is_none());
        assert!(ToySpace.materialize(&p, &[0, 0]).is_some());
    }

    #[test]
    #[should_panic(expected = "no levels")]
    fn empty_dimension_rejected() {
        let _ = Dimension::new("bad", vec![]);
    }
}
