//! Lexer for the GraphIt algorithm language.
//!
//! Comments start with `%` and run to end of line (GraphIt convention).
//! Scheduling labels (`#s0#`) are lexed as [`TokenKind::Label`] tokens.

use std::fmt;

/// A source position: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Kinds of tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (used by `load("path")`).
    Str(String),
    /// A scheduling label `#name#`.
    Label(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `min=`
    MinAssign,
    /// `max=`
    MaxAssign,
    /// `|=`
    OrAssign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    StarTok,
    /// `/`
    Slash,
    /// `%%` — modulo (plain `%` starts a comment)
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` / `&&`
    AndAnd,
    /// `or` / `||`
    OrOr,
    /// `!` / `not`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Label(l) => write!(f, "#{l}#"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Assign => f.write_str("="),
            TokenKind::PlusAssign => f.write_str("+="),
            TokenKind::MinAssign => f.write_str("min="),
            TokenKind::MaxAssign => f.write_str("max="),
            TokenKind::OrAssign => f.write_str("|="),
            TokenKind::Arrow => f.write_str("->"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::StarTok => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%%"),
            TokenKind::EqEq => f.write_str("=="),
            TokenKind::NotEq => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::AndAnd => f.write_str("and"),
            TokenKind::OrOr => f.write_str("or"),
            TokenKind::Bang => f.write_str("!"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Offending position.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes GraphIt source.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings, malformed numbers, or
/// unexpected characters.
///
/// # Example
///
/// ```
/// use ugc_frontend::lexer::{lex, TokenKind};
///
/// let toks = lex("parent[v] = -1;").unwrap();
/// assert!(matches!(toks[0].kind, TokenKind::Ident(_)));
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '%' => {
                // `%%` is modulo; single `%` starts a comment.
                if i + 1 < bytes.len() && bytes[i + 1] == b'%' {
                    bump!();
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Percent,
                        span,
                    });
                } else {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        bump!();
                    }
                }
            }
            '#' => {
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'\n' {
                    bump!();
                }
                if i >= bytes.len() || bytes[i] != b'#' {
                    return Err(LexError {
                        span,
                        message: "unterminated label (expected closing `#`)".into(),
                    });
                }
                let name = src[start..i].trim().to_string();
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Label(name),
                    span,
                });
            }
            '"' => {
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    bump!();
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        span,
                        message: "unterminated string literal".into(),
                    });
                }
                let s = src[start..i].to_string();
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    span,
                });
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit()) {
                    bump!();
                }
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|e| LexError {
                        span,
                        message: format!("bad float literal: {e}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|e| LexError {
                        span,
                        message: format!("bad int literal: {e}"),
                    })?)
                };
                tokens.push(Token { kind, span });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = &src[start..i];
                // `min=` / `max=` reduction tokens.
                let kind = if (word == "min" || word == "max")
                    && i < bytes.len()
                    && bytes[i] == b'='
                    && !(i + 1 < bytes.len() && bytes[i + 1] == b'=')
                {
                    bump!();
                    if word == "min" {
                        TokenKind::MinAssign
                    } else {
                        TokenKind::MaxAssign
                    }
                } else {
                    match word {
                        "and" => TokenKind::AndAnd,
                        "or" => TokenKind::OrOr,
                        "not" => TokenKind::Bang,
                        _ => TokenKind::Ident(word.to_string()),
                    }
                };
                tokens.push(Token { kind, span });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (kind, len) = match two {
                    "+=" => (TokenKind::PlusAssign, 2),
                    "|=" => (TokenKind::OrAssign, 2),
                    "->" => (TokenKind::Arrow, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::NotEq, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    _ => {
                        let k = match c {
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            '{' => TokenKind::LBrace,
                            '}' => TokenKind::RBrace,
                            '[' => TokenKind::LBracket,
                            ']' => TokenKind::RBracket,
                            ',' => TokenKind::Comma,
                            ';' => TokenKind::Semi,
                            ':' => TokenKind::Colon,
                            '.' => TokenKind::Dot,
                            '=' => TokenKind::Assign,
                            '+' => TokenKind::Plus,
                            '-' => TokenKind::Minus,
                            '*' => TokenKind::StarTok,
                            '/' => TokenKind::Slash,
                            '<' => TokenKind::Lt,
                            '>' => TokenKind::Gt,
                            '!' => TokenKind::Bang,
                            other => {
                                return Err(LexError {
                                    span,
                                    message: format!("unexpected character `{other}`"),
                                })
                            }
                        };
                        (k, 1)
                    }
                };
                for _ in 0..len {
                    bump!();
                }
                tokens.push(Token { kind, span });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_identifiers_and_ints() {
        assert_eq!(
            kinds("foo 42"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_floats() {
        assert_eq!(kinds("0.85")[0], TokenKind::Float(0.85));
    }

    #[test]
    fn lex_labels() {
        assert_eq!(kinds("#s0# while")[0], TokenKind::Label("s0".into()));
    }

    #[test]
    fn lex_comments_skipped() {
        assert_eq!(kinds("x % comment\ny").len(), 3); // x, y, eof
    }

    #[test]
    fn lex_modulo_double_percent() {
        assert_eq!(kinds("a %% b")[1], TokenKind::Percent);
    }

    #[test]
    fn lex_reduce_operators() {
        assert_eq!(kinds("a min= b")[1], TokenKind::MinAssign);
        assert_eq!(kinds("a max= b")[1], TokenKind::MaxAssign);
        assert_eq!(kinds("a += b")[1], TokenKind::PlusAssign);
        assert_eq!(kinds("a |= b")[1], TokenKind::OrAssign);
    }

    #[test]
    fn min_eq_eq_is_comparison_not_reduction() {
        // `min == b` must not lex `min=` then `= b`.
        let k = kinds("min == b");
        assert_eq!(k[0], TokenKind::Ident("min".into()));
        assert_eq!(k[1], TokenKind::EqEq);
    }

    #[test]
    fn lex_compound_operators() {
        assert_eq!(kinds("a != b")[1], TokenKind::NotEq);
        assert_eq!(kinds("a -> b")[1], TokenKind::Arrow);
        assert_eq!(kinds("a <= b")[1], TokenKind::Le);
    }

    #[test]
    fn lex_string_literal() {
        assert_eq!(kinds("load(\"g.el\")")[2], TokenKind::Str("g.el".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unterminated_label_is_error() {
        assert!(lex("#s0 while").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn keywords_and_or_not() {
        assert_eq!(kinds("a and b")[1], TokenKind::AndAnd);
        assert_eq!(kinds("a or b")[1], TokenKind::OrOr);
        assert_eq!(kinds("not a")[0], TokenKind::Bang);
    }
}
