//! Criterion bench regenerating representative cells of the paper's Fig. 8
//! heatmap: baseline vs tuned schedule per architecture.
//!
//! Simulated targets report simulated time (1 cycle = 1 ns) through
//! `iter_custom`; the CPU target reports wall-clock time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ugc::{Algorithm, Target};
use ugc_bench::{baseline_schedule, measure, tuned_schedule_for};
use ugc_graph::{Dataset, Scale};

fn bench_cell(c: &mut Criterion, target: Target, algo: Algorithm, dataset: Dataset) {
    let graph = dataset.generate(Scale::Tiny);
    let mut group = c.benchmark_group(format!(
        "fig8/{}/{}/{}",
        target.name(),
        algo.name(),
        dataset.abbrev()
    ));
    group.sample_size(10);
    for (label, sched) in [
        ("baseline", baseline_schedule(target, algo)),
        ("tuned", tuned_schedule_for(target, algo, &graph)),
    ] {
        let sched = sched.clone();
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let m = measure(target, algo, &graph, sched.clone(), 1);
                    total += Duration::from_secs_f64(m.time_ms / 1e3);
                }
                total
            })
        });
    }
    group.finish();
}

fn fig8(c: &mut Criterion) {
    // One road and one social representative per architecture.
    for target in Target::ALL {
        bench_cell(c, target, Algorithm::Bfs, Dataset::RoadNetCa);
        bench_cell(c, target, Algorithm::Bfs, Dataset::Pokec);
        bench_cell(c, target, Algorithm::Sssp, Dataset::RoadNetCa);
        bench_cell(c, target, Algorithm::PageRank, Dataset::Pokec);
        bench_cell(c, target, Algorithm::Cc, Dataset::Pokec);
        bench_cell(c, target, Algorithm::Bc, Dataset::Pokec);
    }
}

fn config() -> Criterion {
    // Deterministic simulated timings have zero variance, which the
    // plotting backend cannot render.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig8
}
criterion_main!(benches);
