//! Host-side variable environment shared by backend interpreters.
//!
//! Every GraphVM walks the program's `main` body on the "host" (sequential
//! coordination code in the paper's generated C++); this module provides the
//! variable store those walkers share: scalars, vertex sets, frontier
//! lists.

use std::collections::HashMap;

use crate::frontier_list::FrontierList;
use crate::value::Value;
use crate::vertexset::VertexSet;

/// A host-level variable value.
#[derive(Debug, Clone, PartialEq)]
pub enum HostValue {
    /// A scalar.
    Scalar(Value),
    /// A vertex set (frontier).
    Set(VertexSet),
    /// A list of frontiers.
    List(FrontierList),
    /// A deleted/moved-out set (GraphIt's `delete` leaves the name bound).
    Deleted,
}

/// Host variable environment with lexical shadowing.
///
/// # Example
///
/// ```
/// use ugc_runtime::host::{HostEnv, HostValue};
/// use ugc_runtime::Value;
///
/// let mut env = HostEnv::new();
/// env.declare("round", HostValue::Scalar(Value::Int(0)));
/// env.assign("round", HostValue::Scalar(Value::Int(1))).unwrap();
/// assert_eq!(env.scalar("round").unwrap(), Value::Int(1));
/// ```
#[derive(Debug, Default, Clone)]
pub struct HostEnv {
    scopes: Vec<HashMap<String, HostValue>>,
}

impl HostEnv {
    /// Creates an environment with one root scope.
    pub fn new() -> Self {
        HostEnv {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enters a nested scope (loop/branch bodies).
    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`HostEnv::push_scope`].
    pub fn pop_scope(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the root scope");
        self.scopes.pop();
    }

    /// Declares a variable in the innermost scope.
    pub fn declare(&mut self, name: impl Into<String>, v: HostValue) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.into(), v);
    }

    /// Assigns to the nearest declaration of `name`.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the name when it is not declared anywhere.
    pub fn assign(&mut self, name: &str, v: HostValue) -> Result<(), String> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        Err(name.to_string())
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&HostValue> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut HostValue> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    /// Reads a scalar variable.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        match self.get(name) {
            Some(HostValue::Scalar(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a set variable (shared view).
    pub fn set(&self, name: &str) -> Option<&VertexSet> {
        match self.get(name) {
            Some(HostValue::Set(s)) => Some(s),
            _ => None,
        }
    }

    /// Takes a set out of the environment, leaving `Deleted` behind
    /// (GraphIt `delete` / move-on-assign semantics).
    pub fn take_set(&mut self, name: &str) -> Option<VertexSet> {
        match self.get_mut(name) {
            Some(slot @ HostValue::Set(_)) => {
                let HostValue::Set(s) = std::mem::replace(slot, HostValue::Deleted) else {
                    unreachable!()
                };
                Some(s)
            }
            _ => None,
        }
    }

    /// Mutable access to a list variable.
    pub fn list_mut(&mut self, name: &str) -> Option<&mut FrontierList> {
        match self.get_mut(name) {
            Some(HostValue::List(l)) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_shadowing() {
        let mut env = HostEnv::new();
        env.declare("x", HostValue::Scalar(Value::Int(1)));
        env.push_scope();
        env.declare("x", HostValue::Scalar(Value::Int(2)));
        assert_eq!(env.scalar("x").unwrap(), Value::Int(2));
        env.pop_scope();
        assert_eq!(env.scalar("x").unwrap(), Value::Int(1));
    }

    #[test]
    fn assign_reaches_outer_scope() {
        let mut env = HostEnv::new();
        env.declare("x", HostValue::Scalar(Value::Int(1)));
        env.push_scope();
        env.assign("x", HostValue::Scalar(Value::Int(9))).unwrap();
        env.pop_scope();
        assert_eq!(env.scalar("x").unwrap(), Value::Int(9));
    }

    #[test]
    fn assign_unknown_errors() {
        let mut env = HostEnv::new();
        assert!(env
            .assign("ghost", HostValue::Scalar(Value::Int(0)))
            .is_err());
    }

    #[test]
    fn take_set_leaves_deleted() {
        let mut env = HostEnv::new();
        env.declare("f", HostValue::Set(VertexSet::all(3)));
        let s = env.take_set("f").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(env.get("f"), Some(&HostValue::Deleted));
        assert!(env.take_set("f").is_none());
    }

    #[test]
    fn list_round_trip() {
        let mut env = HostEnv::new();
        env.declare("l", HostValue::List(FrontierList::new()));
        env.list_mut("l").unwrap().append(VertexSet::all(2));
        assert_eq!(env.list_mut("l").unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot pop the root scope")]
    fn popping_root_panics() {
        let mut env = HostEnv::new();
        env.pop_scope();
    }
}
