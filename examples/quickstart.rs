//! Quickstart: compile one algorithm, run it on all four architectures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ugc::{Algorithm, Compiler, Target};

fn main() {
    // A small road-network-like graph (weighted, symmetric).
    let graph = ugc_graph::generators::road_grid(32, 32, 0.05, 7, true);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // One BFS source file (the paper's Fig. 2), four architectures.
    for target in Target::ALL {
        let result = Compiler::new(Algorithm::Bfs)
            .start_vertex(0)
            .run(target, &graph)
            .expect("bfs runs");
        let reached = result
            .property_ints("parent")
            .iter()
            .filter(|&&p| p != -1)
            .count();
        match target {
            Target::Cpu => println!(
                "{:>12}: reached {reached} vertices in {:.3} ms (wall clock)",
                target.name(),
                result.time_ms
            ),
            _ => println!(
                "{:>12}: reached {reached} vertices in {} simulated cycles",
                target.name(),
                result.cycles
            ),
        }
    }
}
