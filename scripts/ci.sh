#!/usr/bin/env bash
# Tier-1 verification gate (referenced from README.md).
#
# The workspace is hermetic — zero crates-io dependencies — so everything
# here runs with --offline and must pass with no network access. Any
# nonzero exit fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== autotuner smoke (tiny scale, fixed seed, capped budget)"
# A deterministic end-to-end tune of one triple per simulator target; the
# second GPU invocation must hit the persistent cache without re-measuring.
export UGC_TUNE_CACHE="target/ci-tuning-cache.jsonl"
rm -f "$UGC_TUNE_CACHE"
tune() {
  cargo run --release --offline -q -p ugc-bench --bin repro -- \
    --scale tiny --seed 7 --budget 10 tune "$@"
}
tune gpu bfs PK
tune swarm sssp RN
tune hb pr PK
tune gpu bfs PK | grep -q "cache hit" || {
  echo "autotuner smoke: expected a cache hit on the second GPU tune" >&2
  exit 1
}

echo "tier-1 gate: OK"
