//! Criterion bench regenerating Fig. 10: BFS strong scaling on the
//! HammerBlade manycore (32→256 cores) and on Swarm (1→64 cores).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ugc::{Algorithm, Compiler, Target};
use ugc_backend_hb::HbGraphVm;
use ugc_backend_swarm::SwarmGraphVm;
use ugc_bench::tuned_schedule_for;
use ugc_graph::{Dataset, Scale};

fn externs() -> std::collections::HashMap<String, ugc_runtime::value::Value> {
    let mut m = std::collections::HashMap::new();
    m.insert(
        "start_vertex".to_string(),
        ugc_runtime::value::Value::Int(0),
    );
    m
}

fn fig10a(c: &mut Criterion) {
    let dataset = Dataset::RoadCentral;
    let graph = dataset.generate(Scale::Tiny);
    let mut group = c.benchmark_group("fig10a/hammerblade_bfs");
    group.sample_size(10);
    for rows in [2usize, 4, 8, 16] {
        group.bench_function(format!("{}cores", rows * 16), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut comp = Compiler::new(Algorithm::Bfs);
                    comp.start_vertex(0).schedule(
                        Algorithm::Bfs.schedule_path(),
                        tuned_schedule_for(Target::HammerBlade, Algorithm::Bfs, &graph),
                    );
                    let prog = comp.compile().expect("compiles");
                    let run = HbGraphVm::with_rows(rows)
                        .execute(prog, &graph, &externs())
                        .expect("runs");
                    total += Duration::from_nanos(run.cycles);
                }
                total
            })
        });
    }
    group.finish();
}

fn fig10b(c: &mut Criterion) {
    let dataset = Dataset::RoadCentral;
    let graph = dataset.generate(Scale::Tiny);
    let mut group = c.benchmark_group("fig10b/swarm_bfs");
    group.sample_size(10);
    for cores in [1usize, 4, 16, 64] {
        group.bench_function(format!("{cores}cores"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut comp = Compiler::new(Algorithm::Bfs);
                    comp.start_vertex(0).schedule(
                        Algorithm::Bfs.schedule_path(),
                        tuned_schedule_for(Target::Swarm, Algorithm::Bfs, &graph),
                    );
                    let prog = comp.compile().expect("compiles");
                    let run = SwarmGraphVm::with_cores(cores)
                        .execute(prog, &graph, &externs())
                        .expect("runs");
                    total += Duration::from_nanos(run.cycles);
                }
                total
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    // Deterministic simulated timings have zero variance, which the
    // plotting backend cannot render.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig10a, fig10b
}
criterion_main!(benches);
