//! Persistent tuning cache.
//!
//! Winners are stored as JSON lines in a plain text file, one entry per
//! (target, algorithm, dataset fingerprint, scale) key. The workspace is
//! hermetic, so the (de)serializer is hand-rolled for exactly the flat
//! record shape below — it is not a general JSON parser.
//!
//! Schema version 2 adds the structural [`GraphShape`] (degree-histogram
//! shares + density + weightedness) to every entry, which
//! [`TuningCache::nearest`] uses to warm-start greedy descent on graphs
//! the cache has never seen exactly. Version-1 lines lack the shape and
//! are rejected as malformed (counted under `autotune.cache.malformed`),
//! degrading to a re-tune — never silently reused with a missing shape.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ugc_graph::prng::SplitMix64;
use ugc_graph::Graph;
use ugc_telemetry::Counter;

/// Counts cache lines dropped as malformed. Registered lazily so clean
/// caches leave no trace in telemetry snapshots.
fn malformed_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Counter::new("autotune.cache.malformed"))
}

/// A structural fingerprint of a graph: folds the shape (vertex/edge
/// counts, weightedness) and strided samples of the CSR arrays through
/// SplitMix64. Deterministic for a given graph, cheap on large ones, and
/// sensitive enough that different generated datasets don't collide.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut fold = |x: u64| {
        acc = SplitMix64::new(acc ^ x).next_u64();
    };
    fold(g.num_vertices() as u64);
    fold(g.num_edges() as u64);
    fold(u64::from(g.is_weighted()));
    let csr = g.out_csr();
    let sample = |len: usize| -> Vec<usize> {
        if len == 0 {
            return Vec::new();
        }
        let stride = (len / 64).max(1);
        (0..len).step_by(stride).collect()
    };
    for i in sample(csr.offsets().len()) {
        fold(csr.offsets()[i] as u64);
    }
    for i in sample(csr.targets().len()) {
        fold(u64::from(csr.targets()[i]));
    }
    if let Some(w) = csr.weights() {
        for i in sample(w.len()) {
            fold(w[i] as u64);
        }
    }
    acc
}

/// A coarse structural description of a graph, used to find the *nearest*
/// cached tuning problem when the exact [`graph_fingerprint`] misses.
/// Unlike the fingerprint (which is content-exact by design), the shape
/// only keeps what correlates with schedule choice: the log2
/// out-degree-distribution profile, average degree, and weightedness.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphShape {
    /// Per-mille share of vertices in each power-of-two out-degree bucket
    /// (bucket 0 = degrees 0–1, bucket *i* = degrees in `[2^i, 2^(i+1))`),
    /// trailing zero buckets trimmed. Normalizing by |V| makes same-family
    /// graphs of different sizes near neighbours.
    pub hist: Vec<u16>,
    /// Average out-degree in thousandths (`1000 * |E| / |V|`).
    pub avg_degree_millis: u64,
    /// Whether the graph carries edge weights.
    pub weighted: bool,
}

impl GraphShape {
    /// Computes the shape of `g`.
    pub fn of(g: &Graph) -> GraphShape {
        let n = g.num_vertices().max(1);
        let mut hist: Vec<u16> = ugc_graph::stats::degree_histogram(g)
            .iter()
            .map(|&count| ((count * 1000) / n) as u16)
            .collect();
        while hist.last() == Some(&0) {
            hist.pop();
        }
        GraphShape {
            hist,
            avg_degree_millis: (g.num_edges() as u64 * 1000) / n as u64,
            weighted: g.is_weighted(),
        }
    }

    /// Structural distance to `other`: the L1 distance between the
    /// (zero-padded) histogram profiles plus a relative average-degree
    /// term. Weighted and unweighted graphs are never neighbours — their
    /// winners tune different algorithms' ∆ axes.
    pub fn distance(&self, other: &GraphShape) -> u64 {
        if self.weighted != other.weighted {
            return u64::MAX;
        }
        let buckets = self.hist.len().max(other.hist.len());
        let at = |h: &[u16], i: usize| *h.get(i).unwrap_or(&0) as i64;
        let l1: u64 = (0..buckets)
            .map(|i| (at(&self.hist, i) - at(&other.hist, i)).unsigned_abs())
            .sum();
        let (a, b) = (self.avg_degree_millis, other.avg_degree_millis);
        l1 + (a.abs_diff(b) * 1000) / (a + b).max(1)
    }
}

/// Identifies one tuning problem instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Target name (`cpu`, `gpu`, `swarm`, `hb`).
    pub target: String,
    /// Algorithm name (`BFS`, `SSSP`, ...).
    pub algo: String,
    /// [`graph_fingerprint`] of the dataset instance.
    pub fingerprint: u64,
    /// Scale name (`tiny`, `small`, `medium`).
    pub scale: String,
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{:016x}/{}",
            self.target, self.algo, self.fingerprint, self.scale
        )
    }
}

/// A cached tuning winner.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The problem instance this winner was tuned for.
    pub key: CacheKey,
    /// The winner's label (a `dim=level` point label or a pinned name).
    pub winner: String,
    /// The winner's point indices; empty for pinned candidates.
    pub point: Vec<usize>,
    /// Measured time of the winner.
    pub time_ms: f64,
    /// Measured cycles of the winner.
    pub cycles: u64,
    /// Distinct space points measured in the producing run.
    pub explored: usize,
    /// Seed the producing run used.
    pub seed: u64,
    /// Attribution summary of the winner's measurement (why it won);
    /// empty for entries written before profiles existed or with
    /// telemetry disabled.
    pub profile: String,
    /// Structural shape of the tuned graph, for nearest-neighbour
    /// warm-start lookups.
    pub shape: GraphShape,
}

impl CacheEntry {
    fn to_json_line(&self) -> String {
        let point = self
            .point
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let hist = self
            .shape
            .hist
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"v\":2,\"target\":\"{}\",\"algo\":\"{}\",\"fingerprint\":\"{:016x}\",",
                "\"scale\":\"{}\",\"winner\":\"{}\",\"point\":[{}],\"time_ms\":{},",
                "\"cycles\":{},\"explored\":{},\"seed\":{},\"profile\":\"{}\",",
                "\"fphist\":[{}],\"fpdeg\":{},\"fpw\":{}}}"
            ),
            escape(&self.key.target),
            escape(&self.key.algo),
            self.key.fingerprint,
            escape(&self.key.scale),
            escape(&self.winner),
            point,
            self.time_ms,
            self.cycles,
            self.explored,
            self.seed,
            escape(&self.profile),
            hist,
            self.shape.avg_degree_millis,
            u8::from(self.shape.weighted),
        )
    }

    fn from_json_line(line: &str) -> Option<CacheEntry> {
        // Version gate: v1 lines carry no graph shape, so reusing them
        // would silently disable warm-starts — reject instead.
        if field_raw(line, "v")? != "2" {
            return None;
        }
        let target = field_str(line, "target")?;
        let algo = field_str(line, "algo")?;
        let fingerprint = u64::from_str_radix(&field_str(line, "fingerprint")?, 16).ok()?;
        let scale = field_str(line, "scale")?;
        let winner = field_str(line, "winner")?;
        let point = field_usize_array(line, "point")?;
        let time_ms = field_raw(line, "time_ms")?.parse().ok()?;
        let cycles = field_raw(line, "cycles")?.parse().ok()?;
        let explored = field_raw(line, "explored")?.parse().ok()?;
        let seed = field_raw(line, "seed")?.parse().ok()?;
        let profile = field_str(line, "profile")?;
        let hist = field_usize_array(line, "fphist")?
            .into_iter()
            .map(|h| u16::try_from(h).ok())
            .collect::<Option<Vec<u16>>>()?;
        let avg_degree_millis = field_raw(line, "fpdeg")?.parse().ok()?;
        let weighted = match field_raw(line, "fpw")? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        Some(CacheEntry {
            key: CacheKey {
                target,
                algo,
                fingerprint,
                scale,
            },
            winner,
            point,
            time_ms,
            cycles,
            explored,
            seed,
            profile,
            shape: GraphShape {
                hist,
                avg_degree_millis,
                weighted,
            },
        })
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The raw text after `"name":` up to the next unquoted `,` or `}`.
fn field_raw<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut in_str = false;
    let mut esc = false;
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' | '}' if !in_str && depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim())
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let raw = field_raw(line, name)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(unescape(inner))
}

fn field_usize_array(line: &str, name: &str) -> Option<Vec<usize>> {
    let raw = field_raw(line, name)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<usize>>>()
}

/// An append-only JSONL store of tuning winners, loaded fully at open.
/// Later lines for the same key win, so re-tuning simply appends.
#[derive(Debug)]
pub struct TuningCache {
    path: PathBuf,
    entries: HashMap<CacheKey, CacheEntry>,
}

impl TuningCache {
    /// Opens (or lazily creates on first [`put`](Self::put)) a cache file.
    /// Malformed lines are skipped, not fatal: a corrupt cache degrades to
    /// re-tuning.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if an existing file cannot be read.
    pub fn open(path: impl AsRef<Path>) -> Result<TuningCache, String> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        if path.exists() {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(entry) = CacheEntry::from_json_line(line) {
                    entries.insert(entry.key.clone(), entry);
                } else {
                    malformed_counter().incr();
                }
            }
        }
        Ok(TuningCache { path, entries })
    }

    /// The cached winner for `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Records `entry` in memory and appends it to the file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the line cannot be appended.
    pub fn put(&mut self, entry: CacheEntry) -> Result<(), String> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() && !dir.exists() {
                fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("cannot open {}: {e}", self.path.display()))?;
        writeln!(file, "{}", entry.to_json_line())
            .map_err(|e| format!("cannot write {}: {e}", self.path.display()))?;
        self.entries.insert(entry.key.clone(), entry);
        Ok(())
    }

    /// The cached entry (same target and algorithm) whose graph shape is
    /// structurally nearest to `shape` — the warm-start donor for a graph
    /// the cache has never seen exactly. Entries at [`u64::MAX`] distance
    /// (weightedness mismatch) never qualify. Ties break on the smaller
    /// key string so the choice is deterministic across runs.
    pub fn nearest(&self, target: &str, algo: &str, shape: &GraphShape) -> Option<&CacheEntry> {
        self.entries
            .values()
            .filter(|e| e.key.target == target && e.key.algo == algo)
            .filter_map(|e| {
                let d = shape.distance(&e.shape);
                (d != u64::MAX).then_some((d, e))
            })
            .min_by(|(da, ea), (db, eb)| {
                da.cmp(db)
                    .then_with(|| ea.key.to_string().cmp(&eb.key.to_string()))
            })
            .map(|(_, e)| e)
    }

    /// Number of distinct cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(target: &str, fp: u64) -> CacheEntry {
        CacheEntry {
            key: CacheKey {
                target: target.to_string(),
                algo: "BFS".to_string(),
                fingerprint: fp,
                scale: "tiny".to_string(),
            },
            winner: "dir=push,lb=twc".to_string(),
            point: vec![0, 1, 0],
            time_ms: 1.25,
            cycles: 4096,
            explored: 17,
            seed: 7,
            profile: "mem_stall 60% of 4096 cycles".to_string(),
            shape: GraphShape {
                hist: vec![120, 400, 300, 180],
                avg_degree_millis: 3300,
                weighted: false,
            },
        }
    }

    #[test]
    fn json_line_round_trips() {
        let e = entry("gpu", 0xDEAD_BEEF);
        let line = e.to_json_line();
        assert_eq!(CacheEntry::from_json_line(&line), Some(e));
    }

    #[test]
    fn v1_lines_without_shape_are_rejected_as_malformed() {
        // A v1 line is a v2 line without the version tag and shape
        // fields. Reusing it would silently disable warm-starts, so the
        // parser must reject it (the open path counts it as malformed).
        let e = entry("gpu", 9);
        let line = e.to_json_line();
        let v1 = line.replace("\"v\":2,", "").replace(
            &format!(
                ",\"fphist\":[120,400,300,180],\"fpdeg\":{},\"fpw\":0",
                e.shape.avg_degree_millis
            ),
            "",
        );
        assert!(!v1.contains("\"v\":"), "{v1}");
        assert!(!v1.contains("fphist"), "{v1}");
        assert_eq!(CacheEntry::from_json_line(&v1), None);
        // The current schema still parses, so the gate is version-driven.
        assert_eq!(CacheEntry::from_json_line(&line), Some(e));
    }

    #[test]
    fn v1_lines_in_a_file_are_skipped_and_counted() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning-cache-v1.jsonl");
        let good = entry("hb", 4).to_json_line();
        let v1 = good.replace("\"v\":2,", "");
        fs::write(&path, format!("{v1}\n{good}\n")).unwrap();
        let before = malformed_counter().get();
        let cache = TuningCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        if ugc_telemetry::enabled() {
            assert_eq!(malformed_counter().get() - before, 1);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_point_round_trips() {
        let mut e = entry("cpu", 3);
        e.point = Vec::new();
        e.winner = "hand_tuned".to_string();
        let line = e.to_json_line();
        assert_eq!(CacheEntry::from_json_line(&line), Some(e));
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut e = entry("cpu", 9);
        e.winner = "odd \"name\" with \\ backslash".to_string();
        assert_eq!(CacheEntry::from_json_line(&e.to_json_line()), Some(e));
    }

    #[test]
    fn persists_and_reloads() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        let path = dir.join("tuning-cache.jsonl");
        let _ = fs::remove_file(&path);
        {
            let mut cache = TuningCache::open(&path).unwrap();
            assert!(cache.is_empty());
            cache.put(entry("gpu", 1)).unwrap();
            cache.put(entry("swarm", 2)).unwrap();
            // Re-tuning the same key overwrites in memory and appends.
            let mut updated = entry("gpu", 1);
            updated.time_ms = 0.5;
            cache.put(updated).unwrap();
            assert_eq!(cache.len(), 2);
        }
        let cache = TuningCache::open(&path).unwrap();
        assert_eq!(cache.len(), 2);
        let got = cache.get(&entry("gpu", 1).key).unwrap();
        assert_eq!(got.time_ms, 0.5);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning-cache-malformed.jsonl");
        let good = entry("hb", 4).to_json_line();
        // A record cut off mid-write (e.g. a crashed tuning run).
        let truncated = &good[..good.len() / 2];
        fs::write(
            &path,
            format!("not json at all\n{good}\n{{\"target\":\"gpu\"}}\n{truncated}\n"),
        )
        .unwrap();
        let before = malformed_counter().get();
        let cache = TuningCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&entry("hb", 4).key).is_some());
        if ugc_telemetry::enabled() {
            assert_eq!(malformed_counter().get() - before, 3);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn shape_normalizes_and_measures_distance() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let shape = GraphShape::of(&path);
        // All four vertices have out-degree ≤ 1: one bucket, 1000‰.
        assert_eq!(shape.hist, vec![1000]);
        assert_eq!(shape.avg_degree_millis, 750);
        assert!(!shape.weighted);
        assert_eq!(shape.distance(&shape), 0);

        // A same-family graph (twice the size, same structure) is much
        // nearer than a dense clique.
        let path2 = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let mut clique_edges = Vec::new();
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v {
                    clique_edges.push((u, v));
                }
            }
        }
        let clique = Graph::from_edges(8, &clique_edges);
        assert!(shape.distance(&GraphShape::of(&path2)) < shape.distance(&GraphShape::of(&clique)));

        // Weightedness is a hard wall.
        let weighted = Graph::from_weighted_edges(4, &[(0, 1, 5), (1, 2, 9), (2, 3, 1)]);
        assert_eq!(shape.distance(&GraphShape::of(&weighted)), u64::MAX);
    }

    #[test]
    fn nearest_picks_the_structural_neighbour() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        let path = dir.join("tuning-cache-nearest.jsonl");
        let _ = fs::remove_file(&path);
        let mut cache = TuningCache::open(&path).unwrap();

        let mut sparse = entry("gpu", 1);
        sparse.winner = "sparse_winner".to_string();
        sparse.shape = GraphShape {
            hist: vec![900, 100],
            avg_degree_millis: 1500,
            weighted: false,
        };
        let mut dense = entry("gpu", 2);
        dense.key.scale = "small".to_string();
        dense.winner = "dense_winner".to_string();
        dense.shape = GraphShape {
            hist: vec![50, 100, 250, 600],
            avg_degree_millis: 9000,
            weighted: false,
        };
        cache.put(sparse).unwrap();
        cache.put(dense).unwrap();

        let probe = GraphShape {
            hist: vec![850, 150],
            avg_degree_millis: 1800,
            weighted: false,
        };
        let hit = cache.nearest("gpu", "BFS", &probe).unwrap();
        assert_eq!(hit.winner, "sparse_winner");
        // Wrong target or algorithm: no donor.
        assert!(cache.nearest("cpu", "BFS", &probe).is_none());
        assert!(cache.nearest("gpu", "PR", &probe).is_none());
        // A weighted probe cannot borrow unweighted winners.
        let weighted_probe = GraphShape {
            weighted: true,
            ..probe
        };
        assert!(cache.nearest("gpu", "BFS", &weighted_probe).is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_is_stable() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let w = Graph::from_weighted_edges(4, &[(0, 1, 5), (1, 2, 9)]);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&w));
    }
}
