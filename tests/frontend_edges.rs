//! Frontend and pipeline edge cases: error reporting quality, grammar
//! corners, and host-interpreter features exercised end-to-end.

use ugc::{Compiler, Target};
use ugc_runtime::value::Value;

fn run_cpu(src: &str) -> Result<ugc::RunResult, ugc::UgcError> {
    Compiler::from_source(src).run(Target::Cpu, &ugc_graph::generators::path(4))
}

#[test]
fn parse_error_names_position_and_token() {
    let err = Compiler::from_source("func main()\nx = = 3;\nend")
        .compile()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("2:"), "{msg}");
    assert!(msg.contains("expected expression"), "{msg}");
}

#[test]
fn type_error_explains_mismatch() {
    let err = Compiler::from_source("func main()\nvar x : int = 1.5;\nend")
        .compile()
        .unwrap_err();
    assert!(err.to_string().contains("cannot initialize"), "{err}");
}

#[test]
fn unknown_schedule_label_is_reported() {
    let mut c = Compiler::from_source("func main()\nend");
    c.schedule(
        "sX",
        ugc_schedule::ScheduleRef::simple(ugc_schedule::DefaultSchedule),
    );
    let err = c.compile().unwrap_err();
    assert!(err.to_string().contains("sX"), "{err}");
}

#[test]
fn missing_extern_reported_at_run_time() {
    let src =
        "element Vertex end\nconst start_vertex : Vertex;\nfunc main()\nprint start_vertex;\nend";
    let err = run_cpu(src).unwrap_err();
    assert!(err.to_string().contains("start_vertex"), "{err}");
}

#[test]
fn nested_loops_and_arithmetic() {
    let src = r#"
func main()
    var total : int = 0;
    for i in 0:5
        for j in 0:5
            if (i + j) %% 2 == 0
                total = total + i * j;
            end
        end
    end
    print total;
end
"#;
    let r = run_cpu(src).unwrap();
    // Sum of i*j over i,j in 0..5 with (i+j) even: pairs (0,0),(0,2),(0,4),
    // (1,1),(1,3),(2,0),(2,2),(2,4),(3,1),(3,3),(4,0),(4,2),(4,4)
    // = 0+0+0+1+3+0+4+8+3+9+0+8+16 = 52
    assert_eq!(r.prints, vec!["52"]);
}

#[test]
fn while_with_break_and_logical_ops() {
    let src = r#"
func main()
    var n : int = 0;
    while true
        n = n + 1;
        if (n >= 7) or (n < 0)
            break;
        end
    end
    print n;
end
"#;
    assert_eq!(run_cpu(src).unwrap().prints, vec!["7"]);
}

#[test]
fn float_arithmetic_and_casts() {
    let src = r#"
func main()
    var x : float = 7.0 / 2.0;
    var y : int = to_int(x);
    print y;
    print to_int(fabs(0.0 - 3.0));
end
"#;
    assert_eq!(run_cpu(src).unwrap().prints, vec!["3", "3"]);
}

#[test]
fn extern_ints_and_host_reductions() {
    let src = r#"
const bias : int;
func main()
    var acc : int = bias;
    acc += 5;
    acc min= 100;
    acc max= 7;
    print acc;
end
"#;
    let mut c = Compiler::from_source(src);
    c.bind("bias", Value::Int(10));
    let r = c.run(Target::Cpu, &ugc_graph::generators::path(2)).unwrap();
    assert_eq!(r.prints, vec!["15"]);
}

#[test]
fn comments_are_ignored_everywhere() {
    let src = r#"
% header comment
func main()  % trailing
    % body comment
    print 1; % after statement
end
"#;
    assert_eq!(run_cpu(src).unwrap().prints, vec!["1"]);
}

#[test]
fn vertex_property_read_on_host() {
    let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(x);
const depth : vector{Vertex}(int) = 9;
func main()
    depth[2] = 4;
    print depth[2];
    print depth[0];
end
"#;
    assert_eq!(run_cpu(src).unwrap().prints, vec!["4", "9"]);
}

#[test]
fn same_program_same_results_on_all_targets() {
    let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(x);
const vertices : vertexset{Vertex} = edges.getVertices();
const touched : vector{Vertex}(int) = 0;
func bump(src : Vertex, dst : Vertex)
    touched[dst] += 1;
end
func main()
    #s1# edges.apply(bump);
end
"#;
    let graph = ugc_graph::generators::two_communities();
    let mut expected: Option<Vec<i64>> = None;
    for target in Target::ALL {
        let r = Compiler::from_source(src).run(target, &graph).unwrap();
        let got = r.property_ints("touched").to_vec();
        match &expected {
            None => expected = Some(got),
            Some(e) => assert_eq!(&got, e, "{} differs", target.name()),
        }
    }
    // touched[v] == in-degree(v)
    let e = expected.unwrap();
    for v in 0..graph.num_vertices() as u32 {
        assert_eq!(e[v as usize] as usize, graph.in_degree(v));
    }
}

#[test]
fn src_filter_limits_traversal_sources() {
    // from(filter) — a function-valued `from` becomes a source filter.
    let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load(x);
const vertices : vertexset{Vertex} = edges.getVertices();
const out_count : vector{Vertex}(int) = 0;
func even(v : Vertex) -> output : bool
    output = (v %% 2 == 0);
end
func bump(src : Vertex, dst : Vertex)
    out_count[src] += 1;
end
func main()
    #s1# edges.from(even).apply(bump);
end
"#;
    let graph = ugc_graph::generators::two_communities();
    for target in Target::ALL {
        let r = Compiler::from_source(src).run(target, &graph).unwrap();
        let counts = r.property_ints("out_count");
        for v in 0..graph.num_vertices() as u32 {
            let expect = if v % 2 == 0 {
                graph.out_degree(v) as i64
            } else {
                0
            };
            assert_eq!(counts[v as usize], expect, "{} vertex {v}", target.name());
        }
    }
}
