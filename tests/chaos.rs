//! Chaos differential suite: under any injected fault schedule, every
//! (algorithm × backend) run must either produce results that match the
//! sequential reference — possibly after supervisor retries or a
//! fallback — or fail with a typed, classed [`UgcError`]. Never a hang,
//! never an escaped panic, never a silent wrong answer.
//!
//! The fault injector is process-global, so every test here serializes on
//! [`injector`]; specs are installed programmatically (no environment
//! dependence) and cleared before the lock drops.

use std::sync::{Mutex, MutexGuard};

use ugc::{Algorithm, Compiler, ErrorClass, Fallback, Policy, RunResult, Target, UgcError};
use ugc_algorithms::validate;
use ugc_graph::Graph;
use ugc_resilience::fault::{self, Domain, FaultKind, FaultSpec};

/// Serializes access to the process-global fault injector and clears any
/// installed specs when dropped, so a panicking test can't leak faults
/// into the next one.
struct InjectorGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for InjectorGuard {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn injector() -> InjectorGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    InjectorGuard(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

fn spec(domain: Domain, kind: FaultKind, p: f64, seed: u64) -> FaultSpec {
    FaultSpec {
        domain,
        kind,
        p,
        seed,
    }
}

/// A policy with no budgets and the default fallback chain.
fn default_policy() -> Policy {
    Policy::default()
}

/// A policy whose fallback chain is empty: failures surface instead of
/// degrading, which is how the tests observe error classes.
fn no_fallback_policy() -> Policy {
    Policy {
        fallback: Some(Vec::new()),
        ..Policy::default()
    }
}

fn compiler_for(algo: Algorithm) -> Compiler {
    let mut c = Compiler::new(algo);
    if algo.needs_start_vertex() {
        c.start_vertex(0);
    }
    c
}

/// Checks `r` against the sequential reference for `algo` from source 0.
fn check_against_reference(algo: Algorithm, graph: &Graph, r: &RunResult) -> Result<(), String> {
    match algo {
        Algorithm::Bfs => validate::check_bfs_parents(graph, 0, r.property_ints("parent")),
        Algorithm::Sssp => validate::check_sssp_distances(graph, 0, r.property_ints("dist")),
        Algorithm::Cc => validate::check_cc_labels(graph, r.property_ints("IDs")),
        Algorithm::PageRank => validate::check_pagerank(graph, r.property_floats("old_rank"), 1e-6),
        Algorithm::Bc => validate::check_bc(graph, 0, r.property_floats("centrality"), 1e-6),
        Algorithm::Tc => validate::check_triangle_counts(graph, r.property_ints("tri")),
        Algorithm::KCore => validate::check_coreness(graph, r.property_ints("core")),
        // Default externs (max_iters 20, seed 1) — what `Compiler::new`
        // seeds when the caller doesn't override them.
        Algorithm::Lp => validate::check_lp_labels(graph, r.property_ints("labels"), 20, 1),
    }
}

/// The core chaos invariant for one run outcome.
fn assert_reference_equal_or_typed(
    algo: Algorithm,
    target: Target,
    graph: &Graph,
    outcome: Result<RunResult, UgcError>,
) {
    match outcome {
        Ok(r) => {
            if let Err(e) = check_against_reference(algo, graph, &r) {
                panic!(
                    "{} on {}: SILENT WRONG ANSWER (attempts {}, degraded {:?}): {e}",
                    algo.name(),
                    target.name(),
                    r.attempts,
                    r.degraded_to
                );
            }
        }
        Err(e) => {
            // Typed failure: acceptable, but it must carry a class and a
            // message (the "no anonymous failures" half of the contract).
            assert!(
                !e.message.is_empty(),
                "{} on {}",
                algo.name(),
                target.name()
            );
        }
    }
}

#[test]
fn every_algorithm_and_backend_survives_a_mixed_fault_schedule() {
    let _guard = injector();
    fault::install(vec![
        spec(Domain::Gpu, FaultKind::KernelLaunchFail, 0.3, 7),
        spec(Domain::Gpu, FaultKind::MemStallSpike, 0.2, 11),
        spec(Domain::Swarm, FaultKind::TaskAbortStorm, 0.3, 13),
        spec(Domain::Hb, FaultKind::DramBitError, 0.2, 17),
    ]);
    let graph = ugc_graph::generators::two_communities();
    let policy = default_policy();
    for algo in Algorithm::ALL {
        for target in Target::ALL {
            let outcome = compiler_for(algo).run_with_policy(target, &graph, &policy);
            assert_reference_equal_or_typed(algo, target, &graph, outcome);
        }
    }
}

#[test]
fn certain_launch_failure_degrades_to_cpu_with_retries() {
    let _guard = injector();
    fault::install(vec![spec(Domain::Gpu, FaultKind::KernelLaunchFail, 1.0, 1)]);
    let graph = ugc_graph::generators::two_communities();
    let r = compiler_for(Algorithm::Bfs)
        .run_with_policy(Target::Gpu, &graph, &default_policy())
        .expect("the default chain ends on a fault-free backend");
    // max_retries=2 → 3 failed GPU attempts, then the CPU step succeeds.
    assert_eq!(r.attempts, 4);
    assert_eq!(r.degraded_to.as_deref(), Some("cpu"));
    check_against_reference(Algorithm::Bfs, &graph, &r).unwrap();
}

#[test]
fn certain_launch_failure_without_fallback_is_a_transient_error() {
    let _guard = injector();
    fault::install(vec![spec(Domain::Gpu, FaultKind::KernelLaunchFail, 1.0, 1)]);
    let graph = ugc_graph::generators::two_communities();
    let err = compiler_for(Algorithm::Bfs)
        .run_with_policy(Target::Gpu, &graph, &no_fallback_policy())
        .unwrap_err();
    assert_eq!(err.class, ErrorClass::Transient);
    assert!(err.message.contains("kernel_launch_fail"), "{err}");
}

#[test]
fn task_abort_storm_on_swarm_degrades_or_errors_typed() {
    let _guard = injector();
    fault::install(vec![spec(Domain::Swarm, FaultKind::TaskAbortStorm, 1.0, 5)]);
    let graph = ugc_graph::generators::two_communities();
    let r = compiler_for(Algorithm::Sssp)
        .run_with_policy(Target::Swarm, &graph, &default_policy())
        .expect("CPU fallback is unaffected by swarm faults");
    assert_eq!(r.degraded_to.as_deref(), Some("cpu"));
    check_against_reference(Algorithm::Sssp, &graph, &r).unwrap();
}

#[test]
fn dram_bit_errors_degrade_timing_but_not_results() {
    let _guard = injector();
    let graph = ugc_graph::generators::two_communities();
    let clean = compiler_for(Algorithm::Bfs)
        .run_with_policy(Target::HammerBlade, &graph, &no_fallback_policy())
        .expect("clean run");
    fault::install(vec![spec(Domain::Hb, FaultKind::DramBitError, 1.0, 3)]);
    let faulted = compiler_for(Algorithm::Bfs)
        .run_with_policy(Target::HammerBlade, &graph, &no_fallback_policy())
        .expect("bit-error retries are absorbed as extra cycles, not failures");
    assert_eq!(faulted.attempts, 1);
    assert_eq!(faulted.degraded_to, None);
    check_against_reference(Algorithm::Bfs, &graph, &faulted).unwrap();
    assert!(
        faulted.cycles > clean.cycles,
        "ECC retries must cost cycles: {} vs {}",
        faulted.cycles,
        clean.cycles
    );
}

#[test]
fn cycle_budget_kill_degrades_to_cpu() {
    let _guard = injector();
    let graph = ugc_graph::generators::two_communities();
    let policy = Policy {
        cycle_budget: Some(10),
        ..Policy::default()
    };
    let r = compiler_for(Algorithm::Bfs)
        .run_with_policy(Target::Gpu, &graph, &policy)
        .expect("the CPU step runs no simulator, so the cycle cap never trips there");
    assert_eq!(r.degraded_to.as_deref(), Some("cpu"));
    check_against_reference(Algorithm::Bfs, &graph, &r).unwrap();
}

#[test]
fn cycle_budget_kill_without_fallback_is_a_budget_error() {
    let _guard = injector();
    let graph = ugc_graph::generators::two_communities();
    let policy = Policy {
        cycle_budget: Some(10),
        fallback: Some(Vec::new()),
        ..Policy::default()
    };
    for target in [Target::Gpu, Target::Swarm, Target::HammerBlade] {
        let err = compiler_for(Algorithm::Bfs)
            .run_with_policy(target, &graph, &policy)
            .unwrap_err();
        assert_eq!(err.class, ErrorClass::Budget, "{}: {err}", target.name());
    }
}

#[test]
fn explicit_reference_fallback_chain_reaches_the_reference() {
    let _guard = injector();
    fault::install(vec![spec(Domain::Gpu, FaultKind::KernelLaunchFail, 1.0, 9)]);
    let graph = ugc_graph::generators::two_communities();
    let policy = Policy {
        fallback: Some(vec![Fallback::Reference]),
        ..Policy::default()
    };
    for algo in Algorithm::ALL {
        let r = compiler_for(algo)
            .run_with_policy(Target::Gpu, &graph, &policy)
            .expect("the sequential reference cannot launch-fail");
        assert_eq!(
            r.degraded_to.as_deref(),
            Some("reference"),
            "{}",
            algo.name()
        );
        check_against_reference(algo, &graph, &r).unwrap();
    }
}

#[test]
fn faults_in_one_domain_leave_other_backends_untouched() {
    let _guard = injector();
    fault::install(vec![spec(Domain::Gpu, FaultKind::KernelLaunchFail, 1.0, 2)]);
    let graph = ugc_graph::generators::two_communities();
    for target in [Target::Cpu, Target::Swarm, Target::HammerBlade] {
        let r = compiler_for(Algorithm::Bfs)
            .run_with_policy(target, &graph, &no_fallback_policy())
            .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        assert_eq!(r.attempts, 1, "{}", target.name());
        assert_eq!(r.degraded_to, None, "{}", target.name());
        check_against_reference(Algorithm::Bfs, &graph, &r).unwrap();
    }
}

#[test]
fn fault_free_runs_move_no_resilience_counters() {
    let _guard = injector();
    let graph = ugc_graph::generators::two_communities();
    let col = ugc_telemetry::Collector::start();
    for algo in Algorithm::ALL {
        for target in Target::ALL {
            let r = compiler_for(algo)
                .run_with_policy(target, &graph, &default_policy())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", algo.name(), target.name()));
            assert_eq!(r.attempts, 1);
            assert_eq!(r.degraded_to, None);
            check_against_reference(algo, &graph, &r).unwrap();
        }
    }
    let delta = col.snapshot_prefix("resilience.");
    assert!(
        delta.is_empty(),
        "fault-free runs must leave resilience telemetry untouched: {delta:?}"
    );
}

#[test]
fn retry_reroll_lets_probabilistic_faults_eventually_pass() {
    let _guard = injector();
    // p=0.5: each attempt re-rolls a fresh deterministic stream (the
    // per-attempt salt), so retries can pass where the first attempt
    // faulted. Determinism makes the outcome exact, not flaky.
    fault::install(vec![spec(
        Domain::Gpu,
        FaultKind::KernelLaunchFail,
        0.5,
        21,
    )]);
    let graph = ugc_graph::generators::two_communities();
    let outcome =
        compiler_for(Algorithm::Bfs).run_with_policy(Target::Gpu, &graph, &no_fallback_policy());
    // Whatever the seeded schedule does, the supervisor contract holds.
    assert_reference_equal_or_typed(Algorithm::Bfs, Target::Gpu, &graph, outcome);
    // And a second identical run reproduces the same attempt count/result.
    let a =
        compiler_for(Algorithm::Bfs).run_with_policy(Target::Gpu, &graph, &no_fallback_policy());
    let b =
        compiler_for(Algorithm::Bfs).run_with_policy(Target::Gpu, &graph, &no_fallback_policy());
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x.attempts, y.attempts),
        (Err(x), Err(y)) => assert_eq!(x, y),
        (x, y) => panic!("seeded runs diverged: {x:?} vs {y:?}"),
    }
}
