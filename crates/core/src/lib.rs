//! # UGC — the Unified GraphIt Compiler framework, in Rust
//!
//! A reproduction of *"Taming the Zoo: The Unified GraphIt Compiler
//! Framework for Novel Architectures"* (ISCA 2021). UGC compiles graph
//! algorithms written once in the GraphIt DSL to four very different
//! parallel architectures, decoupling three concerns:
//!
//! * the **algorithm** ([`ugc_frontend`], [`ugc_algorithms`]),
//! * the **schedule** — per-architecture optimization directives
//!   ([`ugc_schedule`] plus each backend's schedule type),
//! * the **backend** — a GraphVM per architecture
//!   ([`ugc_backend_cpu`], [`ugc_backend_gpu`], [`ugc_backend_swarm`],
//!   [`ugc_backend_hb`]),
//!
//! linked by the GraphIR intermediate representation ([`ugc_graphir`]) and
//! the hardware-independent compiler ([`ugc_midend`]).
//!
//! This crate is the façade: one [`Compiler`] type that runs the pipeline
//! and dispatches to a [`Target`].
//!
//! # Example
//!
//! ```
//! use ugc::{Compiler, Target};
//! use ugc_algorithms::Algorithm;
//!
//! let graph = ugc_graph::generators::road_grid(8, 8, 0.1, 1, true);
//! let result = Compiler::new(Algorithm::Bfs)
//!     .start_vertex(0)
//!     .run(Target::Cpu, &graph)
//!     .unwrap();
//! assert!(result.property_ints("parent").iter().all(|&p| p != -1));
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::ExecError;
use ugc_runtime::value::Value;
use ugc_schedule::ScheduleRef;

pub use ugc_algorithms::Algorithm;
pub use ugc_resilience::ErrorClass;

/// The four architectures of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Real multithreaded execution on the host.
    Cpu,
    /// The SIMT GPU timing simulator.
    Gpu,
    /// The Swarm speculative-task simulator.
    Swarm,
    /// The HammerBlade manycore simulator.
    HammerBlade,
}

impl Target {
    /// All four targets.
    pub const ALL: [Target; 4] = [Target::Cpu, Target::Gpu, Target::Swarm, Target::HammerBlade];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Target::Cpu => "CPU",
            Target::Gpu => "GPU",
            Target::Swarm => "Swarm",
            Target::HammerBlade => "HammerBlade",
        }
    }
}

/// A compiled-and-executed run: results plus a target-appropriate time.
pub struct RunResult {
    /// Integer property snapshots by name.
    ints: HashMap<String, Vec<i64>>,
    /// Float property snapshots by name.
    floats: HashMap<String, Vec<f64>>,
    /// `Print` output.
    pub prints: Vec<String>,
    /// Time in milliseconds: wall-clock for the CPU target, simulated for
    /// the others.
    pub time_ms: f64,
    /// Simulated cycles (0 for the CPU target).
    pub cycles: u64,
    /// Total execution attempts the supervisor made to get this result
    /// (1 = clean first try).
    pub attempts: u32,
    /// `Some(name)` when the supervisor degraded to a fallback executor
    /// (a backend name, or `"reference"` for the sequential reference).
    pub degraded_to: Option<String>,
}

impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("time_ms", &self.time_ms)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl RunResult {
    /// Snapshot of an integer property.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no such property.
    pub fn property_ints(&self, name: &str) -> &[i64] {
        self.ints.get(name).expect("property exists")
    }

    /// Snapshot of a float property.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no such property.
    pub fn property_floats(&self, name: &str) -> &[f64] {
        self.floats.get(name).expect("property exists")
    }
}

/// Compilation/execution failure, classed per the workspace taxonomy
/// ([`ErrorClass`]) so supervisors and callers can tell retryable faults
/// from program errors, watchdog kills, and broken invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UgcError {
    /// Description.
    pub message: String,
    /// Supervisor policy class.
    pub class: ErrorClass,
}

impl UgcError {
    /// A `Permanent` error — the default for compile-time and
    /// configuration failures.
    pub fn permanent(message: impl Into<String>) -> Self {
        UgcError {
            message: message.into(),
            class: ErrorClass::Permanent,
        }
    }
}

impl std::fmt::Display for UgcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ugc error ({}): {}", self.class, self.message)
    }
}

impl std::error::Error for UgcError {}

impl From<ExecError> for UgcError {
    fn from(e: ExecError) -> Self {
        UgcError {
            message: e.message,
            class: e.class,
        }
    }
}

/// One step of a supervisor fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// Re-run the compiled program on another backend.
    Target(Target),
    /// Run the sequential reference implementation (known algorithms
    /// only).
    Reference,
}

impl Fallback {
    fn name(self) -> String {
        match self {
            Fallback::Target(t) => t.name().to_ascii_lowercase(),
            Fallback::Reference => "reference".to_string(),
        }
    }
}

/// Supervisor policy: retry limits, watchdog budgets, and the fallback
/// chain. [`Policy::from_env`] is what [`Compiler::run`] uses; tests
/// construct policies directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Retries per chain step for `Transient` failures (beyond the first
    /// attempt).
    pub max_retries: u32,
    /// Wall-clock watchdog (`UGC_BUDGET_MS`).
    pub wall_budget: Option<Duration>,
    /// Simulated-cycle watchdog (`UGC_BUDGET_CYCLES`).
    pub cycle_budget: Option<u64>,
    /// Explicit fallback chain; `None` selects the default (the CPU
    /// backend, then the sequential reference).
    pub fallback: Option<Vec<Fallback>>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            max_retries: 2,
            wall_budget: None,
            cycle_budget: None,
            fallback: None,
        }
    }
}

impl Policy {
    /// Reads `UGC_BUDGET_MS`, `UGC_BUDGET_CYCLES`, and `UGC_FALLBACK`.
    ///
    /// # Errors
    ///
    /// A message naming the offending variable and value; budgets must be
    /// positive integers, fallback entries must name a backend,
    /// `reference`/`seq`, or `none`.
    pub fn from_env() -> Result<Policy, String> {
        let mut policy = Policy::default();
        policy.wall_budget = parse_budget_env("UGC_BUDGET_MS")?.map(Duration::from_millis);
        policy.cycle_budget = parse_budget_env("UGC_BUDGET_CYCLES")?;
        if let Ok(v) = std::env::var("UGC_FALLBACK") {
            policy.fallback = Some(parse_fallback(&v)?);
        }
        Ok(policy)
    }
}

fn parse_budget_env(name: &str) -> Result<Option<u64>, String> {
    let Ok(v) = std::env::var(name) else {
        return Ok(None);
    };
    let v = v.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "{name} must be a positive integer, got `{v}` (zero and negative budgets reject every run)"
        )),
    }
}

/// Parses a `UGC_FALLBACK` value: comma-separated backend names,
/// `reference`/`seq`, or the single word `none` for an empty chain.
///
/// # Errors
///
/// A message naming the unknown entry.
pub fn parse_fallback(s: &str) -> Result<Vec<Fallback>, String> {
    let trimmed = s.trim();
    if trimmed.eq_ignore_ascii_case("none") {
        return Ok(Vec::new());
    }
    let mut chain = Vec::new();
    for part in trimmed.split(',') {
        let part = part.trim().to_ascii_lowercase();
        if part.is_empty() {
            continue;
        }
        chain.push(match part.as_str() {
            "cpu" => Fallback::Target(Target::Cpu),
            "gpu" => Fallback::Target(Target::Gpu),
            "swarm" => Fallback::Target(Target::Swarm),
            "hb" | "hammerblade" => Fallback::Target(Target::HammerBlade),
            "seq" | "reference" => Fallback::Reference,
            other => {
                return Err(format!(
                    "UGC_FALLBACK entry `{other}` is not a backend (cpu/gpu/swarm/hb), `seq`, or `none`"
                ))
            }
        });
    }
    if chain.is_empty() {
        return Err(format!("UGC_FALLBACK `{s}` names no fallback targets"));
    }
    Ok(chain)
}

/// The end-to-end compiler pipeline for one algorithm.
///
/// A non-consuming builder: configure schedules and inputs, then call
/// [`Compiler::run`] per target.
#[derive(Debug, Default)]
pub struct Compiler {
    source: String,
    schedules: Vec<(String, ScheduleRef)>,
    externs: HashMap<String, Value>,
    /// Known algorithm identity (enables the sequential-reference
    /// fallback); `None` for arbitrary source text.
    algo: Option<Algorithm>,
}

impl Compiler {
    /// A pipeline for a known [`Algorithm`]. Extern consts the source
    /// requires beyond `start_vertex` (e.g. LP's `max_iters`/`lp_seed`)
    /// are pre-bound to their defaults; [`Compiler::bind`] overrides them.
    pub fn new(algo: Algorithm) -> Self {
        let mut externs = HashMap::new();
        for (name, v) in algo.default_externs() {
            externs.insert((*name).to_string(), Value::Int(*v));
        }
        Compiler {
            source: algo.source().to_string(),
            schedules: Vec::new(),
            externs,
            algo: Some(algo),
        }
    }

    /// A pipeline for arbitrary GraphIt source text.
    pub fn from_source(source: impl Into<String>) -> Self {
        Compiler {
            source: source.into(),
            schedules: Vec::new(),
            externs: HashMap::new(),
            algo: None,
        }
    }

    /// Attaches a schedule at a `:`-separated label path (the paper's
    /// `applyGPUSchedule("s0:s1", sched)`).
    pub fn schedule(&mut self, path: impl Into<String>, sched: ScheduleRef) -> &mut Self {
        self.schedules.push((path.into(), sched));
        self
    }

    /// Binds the `start_vertex` extern const.
    pub fn start_vertex(&mut self, v: u32) -> &mut Self {
        self.externs
            .insert("start_vertex".to_string(), Value::Int(v as i64));
        self
    }

    /// Binds an arbitrary extern const.
    pub fn bind(&mut self, name: impl Into<String>, v: Value) -> &mut Self {
        self.externs.insert(name.into(), v);
        self
    }

    /// Runs the hardware-independent pipeline: parse, type-check, lower,
    /// attach schedules, run passes. Returns the GraphIR handed to
    /// GraphVMs.
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on any frontend/midend failure.
    pub fn compile(&self) -> Result<Program, UgcError> {
        let mut prog =
            ugc_midend::frontend_to_ir(&self.source).map_err(|e| UgcError::permanent(e.message))?;
        for (path, sched) in &self.schedules {
            ugc_schedule::apply_schedule(&mut prog, path, sched.clone())
                .map_err(|e| UgcError::permanent(e.to_string()))?;
        }
        ugc_midend::run_passes(&mut prog).map_err(|e| UgcError::permanent(e.message))?;
        Ok(prog)
    }

    /// Compiles and executes on a target under the supervisor, with the
    /// fault injector ([`UGC_FAULTS`]), watchdog budgets, and fallback
    /// chain configured from the environment (`UGC_BUDGET_MS`,
    /// `UGC_BUDGET_CYCLES`, `UGC_FALLBACK`).
    ///
    /// [`UGC_FAULTS`]: ugc_resilience::fault
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on compilation failure, malformed supervisor
    /// environment variables, or when the whole fallback chain is
    /// exhausted.
    pub fn run(&self, target: Target, graph: &Graph) -> Result<RunResult, UgcError> {
        ugc_resilience::fault::init_from_env().map_err(UgcError::permanent)?;
        let policy = Policy::from_env().map_err(UgcError::permanent)?;
        self.run_with_policy(target, graph, &policy)
    }

    /// Compiles and executes on a target under an explicit supervisor
    /// [`Policy`].
    ///
    /// Every attempt runs inside a watchdog [`budget scope`]
    /// (`ugc_resilience::budget`); `Transient` failures (injected faults)
    /// are retried with deterministic exponential backoff, and on
    /// exhaustion — or on `Budget`/`Invariant` failures — execution
    /// degrades along the fallback chain. The default chain is the CPU
    /// backend (when it is not the primary) followed by the sequential
    /// reference implementation (known algorithms only).
    ///
    /// [`budget scope`]: ugc_resilience::budget::scope
    ///
    /// # Errors
    ///
    /// `Permanent` failures of the primary target return immediately
    /// (program and configuration errors no fallback can mask); otherwise
    /// the last chain step's error is returned once every step fails.
    pub fn run_with_policy(
        &self,
        target: Target,
        graph: &Graph,
        policy: &Policy,
    ) -> Result<RunResult, UgcError> {
        let prog = self.compile()?;
        let mut chain: Vec<Fallback> = vec![Fallback::Target(target)];
        match &policy.fallback {
            Some(steps) => chain.extend(steps.iter().copied()),
            None => {
                if target != Target::Cpu {
                    chain.push(Fallback::Target(Target::Cpu));
                }
                if self.algo.is_some() {
                    chain.push(Fallback::Reference);
                }
            }
        }
        let mut attempts: u32 = 0;
        let mut last_err: Option<UgcError> = None;
        for (step_idx, step) in chain.iter().enumerate() {
            if step_idx > 0 {
                ugc_resilience::count_fallback();
            }
            let mut retries = 0u32;
            loop {
                attempts += 1;
                // Each attempt gets its own deterministic fault stream and
                // a fresh watchdog window.
                ugc_resilience::fault::begin_attempt(attempts as u64);
                let _budget =
                    ugc_resilience::budget::scope(policy.wall_budget, policy.cycle_budget);
                let outcome = match step {
                    Fallback::Target(t) => self.run_compiled(*t, prog.clone(), graph),
                    Fallback::Reference => self.run_reference(graph),
                };
                match outcome {
                    Ok(mut r) => {
                        r.attempts = attempts;
                        if step_idx > 0 {
                            r.degraded_to = Some(step.name());
                        }
                        return Ok(r);
                    }
                    Err(e) => {
                        if e.class == ErrorClass::Transient && retries < policy.max_retries {
                            retries += 1;
                            ugc_resilience::count_retry();
                            // Salt 0: the batch supervisor has no
                            // concurrent lanes to desynchronize, and a
                            // fixed stream keeps reruns replayable.
                            std::thread::sleep(Duration::from_millis(ugc_resilience::backoff_ms(
                                retries, 0,
                            )));
                            continue;
                        }
                        // Permanent errors from the requested target are
                        // program/configuration errors no fallback masks.
                        if step_idx == 0 && e.class == ErrorClass::Permanent {
                            return Err(e);
                        }
                        last_err = Some(e);
                        break;
                    }
                }
            }
        }
        Err(last_err.expect("fallback chain always has the primary step"))
    }

    /// Runs the sequential reference implementation — the degradation
    /// chain's last resort. Only available when the pipeline was built
    /// from a known [`Algorithm`].
    fn run_reference(&self, graph: &Graph) -> Result<RunResult, UgcError> {
        let Some(algo) = self.algo else {
            return Err(UgcError::permanent(
                "no sequential reference for arbitrary source text",
            ));
        };
        let start = if algo.needs_start_vertex() {
            let v = *self
                .externs
                .get("start_vertex")
                .ok_or_else(|| UgcError::permanent("start_vertex extern is not bound"))?;
            let s = ugc_runtime::contain(std::panic::AssertUnwindSafe(|| Ok(v.as_int())))?;
            if s < 0 || s as usize >= graph.num_vertices() {
                return Err(UgcError::permanent(format!(
                    "start_vertex {s} out of range for graph with {} vertices",
                    graph.num_vertices()
                )));
            }
            s as u32
        } else {
            0
        };
        let t0 = Instant::now();
        let mut ints = HashMap::new();
        let mut floats = HashMap::new();
        ugc_runtime::contain(std::panic::AssertUnwindSafe(|| {
            use ugc_algorithms::reference;
            match algo {
                Algorithm::Bfs => {
                    ints.insert("parent".to_string(), reference::bfs_parents(graph, start));
                }
                Algorithm::Sssp => {
                    ints.insert("dist".to_string(), reference::dijkstra(graph, start));
                }
                Algorithm::Cc => {
                    ints.insert("IDs".to_string(), reference::cc_labels(graph));
                }
                Algorithm::PageRank => {
                    floats.insert("old_rank".to_string(), reference::pagerank(graph, 20, 0.85));
                }
                Algorithm::Bc => {
                    floats.insert(
                        "centrality".to_string(),
                        reference::bc_dependencies(graph, start),
                    );
                }
                Algorithm::Tc => {
                    ints.insert("tri".to_string(), reference::triangle_counts(graph));
                }
                Algorithm::KCore => {
                    ints.insert("core".to_string(), reference::coreness(graph));
                }
                Algorithm::Lp => {
                    let arg = |name: &str, default: i64| {
                        self.externs.get(name).map_or(default, |v| v.as_int())
                    };
                    ints.insert(
                        "labels".to_string(),
                        reference::label_propagation(
                            graph,
                            arg("max_iters", 20),
                            arg("lp_seed", 1),
                        ),
                    );
                }
            }
            Ok(())
        }))?;
        Ok(RunResult {
            ints,
            floats,
            prints: Vec::new(),
            time_ms: t0.elapsed().as_secs_f64() * 1e3,
            cycles: 0,
            attempts: 1,
            degraded_to: None,
        })
    }

    /// Executes an already-compiled program on a target.
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on execution failure.
    pub fn run_compiled(
        &self,
        target: Target,
        prog: Program,
        graph: &Graph,
    ) -> Result<RunResult, UgcError> {
        let snapshot = |state: &ugc_runtime::interp::ProgramState<'_>| {
            let mut ints = HashMap::new();
            let mut floats = HashMap::new();
            for (i, p) in state.prog.properties.iter().enumerate() {
                let id = ugc_runtime::properties::PropId(i);
                let vals = state.props.snapshot(id);
                match p.ty {
                    ugc_graphir::types::Type::Float => {
                        floats.insert(p.name.clone(), vals.iter().map(|v| v.as_float()).collect());
                    }
                    _ => {
                        ints.insert(p.name.clone(), vals.iter().map(|v| v.as_int()).collect());
                    }
                }
            }
            (ints, floats)
        };
        match target {
            Target::Cpu => {
                let vm = ugc_backend_cpu::CpuGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.elapsed.as_secs_f64() * 1e3,
                    cycles: 0,
                    attempts: 1,
                    degraded_to: None,
                })
            }
            Target::Gpu => {
                let vm = ugc_backend_gpu::GpuGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                    attempts: 1,
                    degraded_to: None,
                })
            }
            Target::Swarm => {
                let vm = ugc_backend_swarm::SwarmGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                    attempts: 1,
                    degraded_to: None,
                })
            }
            Target::HammerBlade => {
                let vm = ugc_backend_hb::HbGraphVm::default();
                let run = vm.execute(prog, graph, &self.externs)?;
                let (ints, floats) = snapshot(&run.state);
                Ok(RunResult {
                    ints,
                    floats,
                    prints: run.state.prints.clone(),
                    time_ms: run.time_ms,
                    cycles: run.cycles,
                    attempts: 1,
                    degraded_to: None,
                })
            }
        }
    }

    /// Emits the target-flavored source text the paper's GraphVMs would
    /// generate (OpenMP C++ / CUDA / T4 C++ / HammerBlade C++).
    ///
    /// # Errors
    ///
    /// Returns [`UgcError`] on compilation failure.
    pub fn emit(&self, target: Target) -> Result<String, UgcError> {
        let mut prog = self.compile()?;
        Ok(match target {
            Target::Cpu => ugc_backend_cpu::emitter::emit_cpp(&prog),
            Target::Gpu => {
                ugc_backend_gpu::passes::run(&mut prog);
                ugc_backend_gpu::emitter::emit_cuda(&prog)
            }
            Target::Swarm => ugc_backend_swarm::emitter::emit_t4(&prog),
            Target::HammerBlade => ugc_backend_hb::emitter::emit_hb(&prog),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_runs_on_all_targets() {
        let graph = ugc_graph::generators::two_communities();
        for target in Target::ALL {
            let r = Compiler::new(Algorithm::Bfs)
                .start_vertex(0)
                .run(target, &graph)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
            assert!(
                r.property_ints("parent").iter().all(|&p| p != -1),
                "{} left vertices unreached",
                target.name()
            );
        }
    }

    #[test]
    fn emit_produces_source_for_all_targets() {
        for target in Target::ALL {
            let text = Compiler::new(Algorithm::Bfs).emit(target).unwrap();
            assert!(text.len() > 200, "{}", target.name());
        }
    }

    #[test]
    fn custom_source_compiles() {
        let r = Compiler::from_source(
            "element Vertex end\nconst x : int = 41;\nfunc main()\nprint x + 1;\nend",
        )
        .run(Target::Cpu, &ugc_graph::generators::path(2))
        .unwrap();
        assert_eq!(r.prints, vec!["42"]);
    }

    #[test]
    fn compile_error_reported() {
        let err = Compiler::from_source("func main()\nnope;\nend")
            .compile()
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
