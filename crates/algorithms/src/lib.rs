//! The paper's five evaluation algorithms, exactly as UGC consumes them:
//! single portable GraphIt-DSL sources (compiled unchanged for every
//! architecture), plus sequential reference implementations and validators
//! used by the test suites of all four backends.
//!
//! * PageRank (PR) and Connected Components (CC) — topology-driven,
//! * BFS and Betweenness Centrality (BC) — data-driven (frontier-based),
//! * SSSP with ∆-stepping — priority-driven (ordered).
//!
//! # Example
//!
//! ```
//! use ugc_algorithms::{sources, reference};
//!
//! // The DSL source parses and type-checks.
//! ugc_frontend::parse_and_check(sources::BFS).unwrap();
//! // The reference BFS computes levels.
//! let g = ugc_graph::generators::path(4);
//! assert_eq!(reference::bfs_levels(&g, 0), vec![0, 1, 2, 3]);
//! ```

pub mod multi_source;
pub mod reference;
pub mod sources;
pub mod validate;

/// The five algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank, 20 damped iterations.
    PageRank,
    /// Breadth-first search from `start_vertex`.
    Bfs,
    /// Single-source shortest paths with ∆-stepping from `start_vertex`.
    Sssp,
    /// Connected components by min-label propagation.
    Cc,
    /// Betweenness centrality from `start_vertex` (single source).
    Bc,
}

impl Algorithm {
    /// All five, in the paper's column order (PR, BFS, SSSP, CC, BC).
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::Cc,
        Algorithm::Bc,
    ];

    /// The portable GraphIt source for this algorithm.
    pub fn source(self) -> &'static str {
        match self {
            Algorithm::PageRank => sources::PAGERANK,
            Algorithm::Bfs => sources::BFS,
            Algorithm::Sssp => sources::SSSP_DELTA,
            Algorithm::Cc => sources::CC,
            Algorithm::Bc => sources::BC,
        }
    }

    /// Short name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PageRank => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Cc => "CC",
            Algorithm::Bc => "BC",
        }
    }

    /// Whether the algorithm needs a `start_vertex` extern binding.
    pub fn needs_start_vertex(self) -> bool {
        !matches!(self, Algorithm::PageRank | Algorithm::Cc)
    }

    /// Whether the algorithm requires edge weights.
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// The label of the edge-traversal statement to schedule (the paper's
    /// `"s0:s1"` path works for all five sources).
    pub fn schedule_path(self) -> &'static str {
        match self {
            Algorithm::PageRank => "s1",
            Algorithm::Bfs | Algorithm::Sssp | Algorithm::Cc | Algorithm::Bc => "s0:s1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_check() {
        for a in Algorithm::ALL {
            ugc_frontend::parse_and_check(a.source())
                .unwrap_or_else(|e| panic!("{}: {e}", a.name()));
        }
    }

    #[test]
    fn all_sources_lower_and_pass() {
        for a in Algorithm::ALL {
            let mut p = ugc_midend::frontend_to_ir(a.source())
                .unwrap_or_else(|e| panic!("{}: {e}", a.name()));
            ugc_midend::run_passes(&mut p).unwrap_or_else(|e| panic!("{}: {e}", a.name()));
        }
    }

    #[test]
    fn metadata_helpers() {
        assert!(Algorithm::Bfs.needs_start_vertex());
        assert!(!Algorithm::PageRank.needs_start_vertex());
        assert!(Algorithm::Sssp.needs_weights());
        assert_eq!(Algorithm::PageRank.schedule_path(), "s1");
    }
}
