//! Property-based tests on the runtime substrate's invariants.

use proptest::prelude::*;
use ugc_graphir::types::{ReduceOp, Type, VertexSetRepr};
use ugc_runtime::properties::PropertyStorage;
use ugc_runtime::value::Value;
use ugc_runtime::{BucketQueue, VertexSet};

fn members_strategy() -> impl Strategy<Value = (usize, Vec<u32>)> {
    (1usize..128).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0..n as u32, 0..256),
        )
    })
}

proptest! {
    #[test]
    fn representations_agree((n, members) in members_strategy()) {
        let mut sparse = VertexSet::empty_sparse(n);
        for &v in &members {
            sparse.add(v);
        }
        sparse.dedup();
        let bitmap = sparse.to_repr(VertexSetRepr::Bitmap);
        let boolmap = sparse.to_repr(VertexSetRepr::Boolmap);
        prop_assert_eq!(sparse.iter(), bitmap.iter());
        prop_assert_eq!(bitmap.iter(), boolmap.iter());
        prop_assert_eq!(sparse.len(), bitmap.len());
        for v in 0..n as u32 {
            prop_assert_eq!(sparse.contains(v), bitmap.contains(v));
            prop_assert_eq!(sparse.contains(v), boolmap.contains(v));
        }
    }

    #[test]
    fn dedup_is_set_semantics((n, members) in members_strategy()) {
        let mut s = VertexSet::from_members(n, members.clone());
        s.dedup();
        let expect: std::collections::BTreeSet<u32> = members.iter().copied().collect();
        prop_assert_eq!(s.len(), expect.len());
        let got: std::collections::BTreeSet<u32> = s.iter().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn round_trip_through_any_repr((n, members) in members_strategy(),
                                   repr in prop_oneof![
                                       Just(VertexSetRepr::Sparse),
                                       Just(VertexSetRepr::Bitmap),
                                       Just(VertexSetRepr::Boolmap)
                                   ]) {
        let mut s = VertexSet::from_members(n, members);
        s.dedup();
        let converted = s.to_repr(repr).to_repr(VertexSetRepr::Sparse);
        prop_assert_eq!(s.iter(), converted.iter());
    }

    /// Bucket queue pops every pushed vertex exactly once (when priorities
    /// are stable) and in non-decreasing bucket order.
    #[test]
    fn bucket_queue_pops_in_order(
        prios in proptest::collection::vec(0i64..200, 1..64),
        delta in 1i64..16,
    ) {
        let n = prios.len();
        let mut q = BucketQueue::new(n, delta, 0);
        for (v, &p) in prios.iter().enumerate().skip(1) {
            q.push(v as u32, p);
        }
        let prio = |v: u32| if v == 0 { 0 } else { prios[v as usize] };
        let mut popped = Vec::new();
        let mut last_bucket = i64::MIN;
        while !q.finished() {
            let set = q.pop_ready(prio);
            if set.is_empty() {
                continue;
            }
            let bucket = prio(set.iter()[0]).div_euclid(delta);
            prop_assert!(bucket >= last_bucket, "bucket order violated");
            last_bucket = bucket;
            for v in set.iter() {
                prop_assert_eq!(prio(v).div_euclid(delta), bucket);
                popped.push(v);
            }
        }
        popped.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(popped, expect);
    }

    /// Atomic min-reduce: final value is the minimum of init and all
    /// folded values, regardless of order.
    #[test]
    fn reduce_min_is_order_independent(vals in proptest::collection::vec(-1000i64..1000, 1..64)) {
        let mut p = PropertyStorage::new(1);
        let a = p.add("x", Type::Int, Value::Int(i64::MAX));
        for &v in &vals {
            p.reduce(a, 0, ReduceOp::Min, Value::Int(v));
        }
        prop_assert_eq!(p.read(a, 0), Value::Int(*vals.iter().min().expect("non-empty")));
    }

    /// Sum-reduce totals are exact.
    #[test]
    fn reduce_sum_totals(vals in proptest::collection::vec(-100i64..100, 0..64)) {
        let mut p = PropertyStorage::new(1);
        let a = p.add("x", Type::Int, Value::Int(0));
        for &v in &vals {
            p.reduce(a, 0, ReduceOp::Sum, Value::Int(v));
        }
        prop_assert_eq!(p.read(a, 0), Value::Int(vals.iter().sum()));
    }

    /// CAS claims exactly once per marker value.
    #[test]
    fn cas_single_claim(claims in proptest::collection::vec(0i64..50, 1..64)) {
        let mut p = PropertyStorage::new(1);
        let a = p.add("owner", Type::Int, Value::Int(-1));
        let mut wins = 0;
        for &c in &claims {
            if p.cas(a, 0, Value::Int(-1), Value::Int(c)) {
                wins += 1;
            }
        }
        prop_assert_eq!(wins, 1);
        prop_assert_eq!(p.read(a, 0), Value::Int(claims[0]));
    }
}
