//! HammerBlade GraphVM correctness: every algorithm × the HB scheduling
//! space on the manycore simulator, validated against references.

use ugc_algorithms::Algorithm;
use ugc_backend_hb::{HbGraphVm, HbLoadBalance, HbSchedule};
use ugc_integration::{compile, externs_for, test_graphs, validate};
use ugc_schedule::{SchedDirection, ScheduleRef};

fn run_and_validate(algo: Algorithm, sched: Option<HbSchedule>) {
    for (gname, graph) in test_graphs() {
        let prog = compile(algo, sched.clone().map(ScheduleRef::simple));
        let vm = HbGraphVm::default();
        let run = vm
            .execute(prog, &graph, &externs_for(algo, 0))
            .unwrap_or_else(|e| panic!("{} on {gname}: {e}", algo.name()));
        assert!(run.cycles > 0);
        validate(algo, &graph, 0, &|p| run.property_ints(p), &|p| {
            run.property_floats(p)
        });
    }
}

#[test]
fn all_algorithms_default_schedule() {
    for algo in Algorithm::ALL {
        run_and_validate(algo, None);
    }
}

#[test]
fn bfs_all_load_balancers() {
    for lb in [
        HbLoadBalance::VertexBased,
        HbLoadBalance::EdgeBased,
        HbLoadBalance::Aligned,
    ] {
        run_and_validate(
            Algorithm::Bfs,
            Some(HbSchedule::new().with_load_balance(lb)),
        );
    }
}

#[test]
fn bfs_hybrid_direction() {
    run_and_validate(
        Algorithm::Bfs,
        Some(
            HbSchedule::new()
                .with_direction(SchedDirection::Hybrid)
                .with_load_balance(HbLoadBalance::Aligned),
        ),
    );
}

#[test]
fn pagerank_blocked_access() {
    run_and_validate(
        Algorithm::PageRank,
        Some(
            HbSchedule::new()
                .with_blocked_access(true)
                .with_block_size(64),
        ),
    );
}

#[test]
fn sssp_blocked_access_with_delta() {
    run_and_validate(
        Algorithm::Sssp,
        Some(HbSchedule::new().with_blocked_access(true).with_delta(8)),
    );
}

#[test]
fn cc_aligned() {
    run_and_validate(
        Algorithm::Cc,
        Some(HbSchedule::new().with_load_balance(HbLoadBalance::Aligned)),
    );
}

#[test]
fn bc_default() {
    run_and_validate(Algorithm::Bc, None);
}

#[test]
fn blocked_access_reduces_dram_stalls_on_pagerank() {
    // Table IX's mechanism: prefetching turns dependent stalls into bulk
    // transfers.
    let graph = ugc_graph::generators::rmat(13, 8, 5, true);
    let externs = externs_for(Algorithm::PageRank, 0);
    let base = HbGraphVm::default()
        .execute(
            compile(
                Algorithm::PageRank,
                Some(ScheduleRef::simple(HbSchedule::new())),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    let blocked = HbGraphVm::default()
        .execute(
            compile(
                Algorithm::PageRank,
                Some(ScheduleRef::simple(
                    HbSchedule::new()
                        .with_blocked_access(true)
                        .with_block_size(64),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    assert!(
        blocked.stats.dram_stall_cycles < base.stats.dram_stall_cycles,
        "blocked {} vs base {} stalls",
        blocked.stats.dram_stall_cycles,
        base.stats.dram_stall_cycles
    );
    assert!(
        blocked.cycles < base.cycles,
        "blocked access must speed up PR"
    );
}

#[test]
fn scaling_with_rows() {
    let graph = ugc_graph::generators::rmat(12, 8, 7, true);
    let externs = externs_for(Algorithm::Bfs, 0);
    let sched = || ScheduleRef::simple(HbSchedule::new().with_load_balance(HbLoadBalance::Aligned));
    let c32 = HbGraphVm::with_rows(2)
        .execute(compile(Algorithm::Bfs, Some(sched())), &graph, &externs)
        .unwrap()
        .cycles;
    let c256 = HbGraphVm::with_rows(16)
        .execute(compile(Algorithm::Bfs, Some(sched())), &graph, &externs)
        .unwrap()
        .cycles;
    assert!(
        c256 < c32,
        "256 cores ({c256}) should beat 32 cores ({c32})"
    );
}
