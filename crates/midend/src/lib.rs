#![warn(missing_docs)]

//! The hardware-independent compiler of UGC (paper §III-A).
//!
//! This crate contains everything between the frontend AST and the
//! GraphVMs:
//!
//! 1. [`lower::lower`] — lowering the GraphIt AST to GraphIR,
//! 2. the target-agnostic analysis/transformation passes of Table III,
//!    shared by all four backends:
//!    * [`passes::ordered`] — ordered-processing lowering (∆-stepping
//!      queues),
//!    * [`passes::direction`] — traversal-direction lowering, including
//!      hybrid schedules and [`CompositeSchedule`]s which become runtime
//!      conditions (Fig. 7),
//!    * [`passes::tracking`] — `applyModified` lowering: rewriting UDFs to
//!      produce output frontiers via compare-and-swap / change-tracking
//!      plus `EnqueueVertex` (Fig. 4),
//!    * [`passes::atomics`] — dependence analysis inserting atomics into
//!      UDFs based on direction and parallelization,
//!    * [`passes::frontier_reuse`] — liveness analysis marking frontier
//!      storage reuse opportunities.
//!
//! The intended flow is [`lower::lower`] → attach schedules with
//! [`ugc_schedule::apply_schedule`] → [`run_passes`] → hand the program to
//! a GraphVM.
//!
//! [`CompositeSchedule`]: ugc_schedule::CompositeSchedule
//!
//! # Example
//!
//! ```
//! use ugc_midend::{lower, run_passes};
//!
//! let src = r#"
//! element Vertex end
//! element Edge end
//! const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
//! const parent : vector{Vertex}(int) = -1;
//! const start_vertex : Vertex;
//! func updateEdge(src : Vertex, dst : Vertex)
//!     parent[dst] = src;
//! end
//! func main()
//!     var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
//!     frontier.addVertex(start_vertex);
//!     #s1# var out : vertexset{Vertex} = edges.from(frontier).applyModified(updateEdge, parent, true);
//! end
//! "#;
//! let ast = ugc_frontend::parse_and_check(src).unwrap();
//! let mut prog = lower::lower(&ast).unwrap();
//! run_passes(&mut prog).unwrap();
//! assert!(prog.function("updateEdge__trk_s1").is_some());
//! ```

pub mod lower;
pub mod passes;

use ugc_graphir::ir::Program;
use ugc_graphir::verify::verify;

/// Pipeline failure: lowering, verification, or a pass invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidendError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for MidendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "midend error: {}", self.message)
    }
}

impl std::error::Error for MidendError {}

impl MidendError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        MidendError {
            message: message.into(),
        }
    }
}

pub use lower::lower;

/// Runs the full hardware-independent pass pipeline over a lowered program
/// (schedules should already be attached).
///
/// # Errors
///
/// Returns [`MidendError`] when a pass invariant fails or the resulting
/// program does not verify.
pub fn run_passes(prog: &mut Program) -> Result<(), MidendError> {
    passes::ordered::run(prog)?;
    passes::direction::run(prog)?;
    passes::tracking::run(prog)?;
    passes::atomics::run(prog)?;
    passes::frontier_reuse::run(prog)?;
    verify(prog).map_err(|errs| {
        MidendError::new(format!(
            "post-pass verification failed: {}",
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ))
    })
}

/// Convenience: parse + typecheck + lower in one call (schedules attach to
/// the result before [`run_passes`]).
///
/// # Errors
///
/// Returns the first frontend or lowering error, rendered.
pub fn frontend_to_ir(src: &str) -> Result<Program, MidendError> {
    let ast = ugc_frontend::parse_and_check(src).map_err(MidendError::new)?;
    lower::lower(&ast)
}
