//! Statement and expression walkers used by analysis and rewrite passes.

use crate::ir::{Expr, ExprKind, LValue, Program, Stmt, StmtKind};

/// Calls `f` on every statement in `stmts`, pre-order, recursing into
/// nested bodies.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Mutable variant of [`walk_stmts`]; `f` runs before recursion.
pub fn walk_stmts_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for s in stmts {
        f(s);
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts_mut(then_body, f);
                walk_stmts_mut(else_body, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk_stmts_mut(body, f),
            _ => {}
        }
    }
}

/// Calls `f` on every expression directly contained in `stmt` (not
/// recursing into nested statements; combine with [`walk_stmts`] for that).
pub fn stmt_exprs<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    let on_lvalue = |lv: &'a LValue, f: &mut dyn FnMut(&'a Expr)| {
        if let LValue::Prop { index, .. } = lv {
            f(index);
        }
    };
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                f(e);
            }
        }
        StmtKind::Assign { target, value } => {
            on_lvalue(target, f);
            f(value);
        }
        StmtKind::Reduce { target, value, .. } => {
            on_lvalue(target, f);
            f(value);
        }
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::For { start, end, .. } => {
            f(start);
            f(end);
        }
        StmtKind::ExprStmt(e) | StmtKind::Return(e) | StmtKind::Print(e) => f(e),
        StmtKind::EnqueueVertex { vertex, .. } => f(vertex),
        StmtKind::UpdatePriority { vertex, value, .. } => {
            f(vertex);
            f(value);
        }
        StmtKind::ListRetrieve { index, .. } => f(index),
        StmtKind::Break
        | StmtKind::EdgeSetIterator(_)
        | StmtKind::VertexSetIterator { .. }
        | StmtKind::VertexSetFilter { .. }
        | StmtKind::VertexSetDedup { .. }
        | StmtKind::ListAppend { .. }
        | StmtKind::ListPopBack { .. }
        | StmtKind::Delete { .. } => {}
    }
}

/// Calls `f` on `expr` and every sub-expression, pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::PropRead { index, .. } => walk_expr(index, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Unary { operand, .. } => walk_expr(operand, f),
        ExprKind::Intrinsic { args, .. } | ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::CompareAndSwap {
            index,
            expected,
            new,
            ..
        } => {
            walk_expr(index, f);
            walk_expr(expected, f);
            walk_expr(new, f);
        }
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

/// Mutable variant of [`stmt_exprs`].
pub fn stmt_exprs_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    let on_lvalue = |lv: &mut LValue, f: &mut dyn FnMut(&mut Expr)| {
        if let LValue::Prop { index, .. } = lv {
            f(index);
        }
    };
    match &mut stmt.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                f(e);
            }
        }
        StmtKind::Assign { target, value } => {
            on_lvalue(target, f);
            f(value);
        }
        StmtKind::Reduce { target, value, .. } => {
            on_lvalue(target, f);
            f(value);
        }
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::For { start, end, .. } => {
            f(start);
            f(end);
        }
        StmtKind::ExprStmt(e) | StmtKind::Return(e) | StmtKind::Print(e) => f(e),
        StmtKind::EnqueueVertex { vertex, .. } => f(vertex),
        StmtKind::UpdatePriority { vertex, value, .. } => {
            f(vertex);
            f(value);
        }
        StmtKind::ListRetrieve { index, .. } => f(index),
        StmtKind::Break
        | StmtKind::EdgeSetIterator(_)
        | StmtKind::VertexSetIterator { .. }
        | StmtKind::VertexSetFilter { .. }
        | StmtKind::VertexSetDedup { .. }
        | StmtKind::ListAppend { .. }
        | StmtKind::ListPopBack { .. }
        | StmtKind::Delete { .. } => {}
    }
}

/// Mutable variant of [`walk_expr`], pre-order.
pub fn walk_expr_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(expr);
    match &mut expr.kind {
        ExprKind::PropRead { index, .. } => walk_expr_mut(index, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr_mut(lhs, f);
            walk_expr_mut(rhs, f);
        }
        ExprKind::Unary { operand, .. } => walk_expr_mut(operand, f),
        ExprKind::Intrinsic { args, .. } | ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr_mut(a, f);
            }
        }
        ExprKind::CompareAndSwap {
            index,
            expected,
            new,
            ..
        } => {
            walk_expr_mut(index, f);
            walk_expr_mut(expected, f);
            walk_expr_mut(new, f);
        }
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

/// Calls `f` on every expression reachable from `stmts`, including those in
/// nested statements.
pub fn walk_all_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    walk_stmts(stmts, &mut |s| {
        stmt_exprs(s, &mut |e| walk_expr(e, f));
    });
}

/// Finds the statement carrying scheduling label `label` anywhere in the
/// program's `main` body.
pub fn find_labeled<'a>(prog: &'a Program, label: &str) -> Option<&'a Stmt> {
    let mut found = None;
    walk_stmts(&prog.main, &mut |s| {
        if found.is_none() && s.label.as_deref() == Some(label) {
            found = Some(s);
        }
    });
    found
}

/// Applies `f` to the statement carrying `label` (searching `main`),
/// returning whether it was found.
pub fn update_labeled(prog: &mut Program, label: &str, f: &mut impl FnMut(&mut Stmt)) -> bool {
    let mut found = false;
    walk_stmts_mut(&mut prog.main, &mut |s| {
        if s.label.as_deref() == Some(label) {
            found = true;
            f(s);
        }
    });
    found
}

/// Applies `f` to every statement in the program: `main` plus every
/// function body.
pub fn for_each_stmt_mut(prog: &mut Program, f: &mut impl FnMut(&mut Stmt)) {
    walk_stmts_mut(&mut prog.main, f);
    for func in &mut prog.functions {
        walk_stmts_mut(&mut func.body, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EdgeSetIteratorData, Expr};
    use crate::types::BinOp;

    fn sample() -> Program {
        let mut p = Program::new();
        p.main.push(Stmt::new(StmtKind::While {
            cond: Expr::bool(true),
            body: vec![
                Stmt::labeled(
                    "s1",
                    StmtKind::EdgeSetIterator(EdgeSetIteratorData::all_edges("edges", "f")),
                ),
                Stmt::new(StmtKind::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("x"), Expr::int(3)),
                    then_body: vec![Stmt::new(StmtKind::Break)],
                    else_body: vec![],
                }),
            ],
        }));
        p
    }

    #[test]
    fn walk_visits_nested() {
        let p = sample();
        let mut count = 0;
        walk_stmts(&p.main, &mut |_| count += 1);
        assert_eq!(count, 4); // while, edge iterator, if, break
    }

    #[test]
    fn find_labeled_in_loop() {
        let p = sample();
        let s = find_labeled(&p, "s1").unwrap();
        assert!(matches!(s.kind, StmtKind::EdgeSetIterator(_)));
        assert!(find_labeled(&p, "nope").is_none());
    }

    #[test]
    fn update_labeled_mutates() {
        let mut p = sample();
        let ok = update_labeled(&mut p, "s1", &mut |s| s.meta.set("touched", true));
        assert!(ok);
        assert!(find_labeled(&p, "s1").unwrap().meta.flag("touched"));
    }

    #[test]
    fn walk_exprs_reaches_subexpressions() {
        let p = sample();
        let mut vars = Vec::new();
        walk_all_exprs(&p.main, &mut |e| {
            if let ExprKind::Var(n) = &e.kind {
                vars.push(n.clone());
            }
        });
        assert_eq!(vars, vec!["x".to_string()]);
    }

    #[test]
    fn stmt_exprs_covers_lvalue_index() {
        let s = Stmt::new(StmtKind::Assign {
            target: LValue::prop("parent", Expr::var("dst")),
            value: Expr::var("src"),
        });
        let mut n = 0;
        stmt_exprs(&s, &mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
