//! Abstract syntax tree of the GraphIt algorithm language.

use ugc_graphir::types::{BinOp, ReduceOp, UnOp};

use crate::lexer::Span;

/// A parsed source program: an ordered list of top-level declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProgram {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

impl SourceProgram {
    /// Finds a function declaration by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Finds a const declaration by name.
    pub fn constant(&self, name: &str) -> Option<&ConstDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Const(c) if c.name == name => Some(c),
            _ => None,
        })
    }
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `element Vertex end` — declares an element type name.
    Element {
        /// The element type name (`Vertex`, `Edge`).
        name: String,
    },
    /// `const name : type [= init];`
    Const(ConstDecl),
    /// `func name(params) [-> ret : type] body end`
    Func(FuncDecl),
}

/// A `const` declaration. A missing initializer means the value is bound by
/// the host at run time (e.g. `start_vertex`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer.
    pub init: Option<AExpr>,
    /// Source position.
    pub span: Span,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, TypeExpr)>,
    /// GraphIt-style named return (`-> output : bool`).
    pub ret: Option<(String, TypeExpr)>,
    /// Body statements.
    pub body: Vec<AStmt>,
    /// Source position.
    pub span: Span,
}

/// Type expressions of the algorithm language.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `bool`
    Bool,
    /// `Vertex` (or any declared element used as a vertex type)
    Vertex,
    /// `vertexset{Vertex}`
    VertexSet,
    /// `edgeset{Edge}(Vertex, Vertex [, int])` — `weighted` when the third
    /// argument is present.
    EdgeSet {
        /// Whether edges carry integer weights.
        weighted: bool,
    },
    /// `vector{Vertex}(T)` — a per-vertex property of element type `T`.
    Vector(Box<TypeExpr>),
    /// `priority_queue{Vertex}(int)`
    PriorityQueue,
    /// `list{vertexset{Vertex}}`
    List,
}

impl TypeExpr {
    /// Whether this is a scalar (register) type.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            TypeExpr::Int | TypeExpr::Float | TypeExpr::Bool | TypeExpr::Vertex
        )
    }
}

/// A statement with optional scheduling label.
#[derive(Debug, Clone, PartialEq)]
pub struct AStmt {
    /// What the statement does.
    pub kind: AStmtKind,
    /// Optional `#label#`.
    pub label: Option<String>,
    /// Source position.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum AStmtKind {
    /// `var name : type = init;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Optional initializer.
        init: Option<AExpr>,
    },
    /// `lvalue = expr;`
    Assign {
        /// Target (identifier or index expression).
        target: AExpr,
        /// Value.
        value: AExpr,
    },
    /// `lvalue op= expr;`
    Reduce {
        /// Target (identifier or index expression).
        target: AExpr,
        /// Which reduction.
        op: ReduceOp,
        /// Value folded in.
        value: AExpr,
    },
    /// `if cond body [else body] end`
    If {
        /// Condition.
        cond: AExpr,
        /// Then branch.
        then_body: Vec<AStmt>,
        /// Else branch.
        else_body: Vec<AStmt>,
    },
    /// `while cond body end`
    While {
        /// Condition.
        cond: AExpr,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `for v in start:end body end`
    For {
        /// Induction variable.
        var: String,
        /// Inclusive start.
        start: AExpr,
        /// Exclusive end.
        end: AExpr,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `expr;` (method calls evaluated for effect)
    ExprStmt(AExpr),
    /// `print expr;`
    Print(AExpr),
    /// `delete name;`
    Delete(String),
    /// `break;`
    Break,
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct AExpr {
    /// The expression kind.
    pub kind: AExprKind,
    /// Source position.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum AExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Identifier reference.
    Ident(String),
    /// `base[index]`.
    Index {
        /// Indexed expression (a property vector name).
        base: Box<AExpr>,
        /// Index expression.
        index: Box<AExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<AExpr>,
        /// Right operand.
        rhs: Box<AExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<AExpr>,
    },
    /// Free function call: `callee(args)` — UDFs or builtins
    /// (`fabs`, `out_degree`, `load`, …).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<AExpr>,
    },
    /// Method call: `receiver.method(args)` — the graph operators.
    MethodCall {
        /// Receiver expression.
        receiver: Box<AExpr>,
        /// Method name (`from`, `to`, `applyModified`, …).
        method: String,
        /// Arguments.
        args: Vec<AExpr>,
    },
    /// `new type(args)` — allocates sets, lists, priority queues.
    New {
        /// Allocated type.
        ty: TypeExpr,
        /// Constructor arguments.
        args: Vec<AExpr>,
    },
}

impl AExpr {
    /// Convenience constructor with a default span (used in tests).
    pub fn ident(name: &str) -> AExpr {
        AExpr {
            kind: AExprKind::Ident(name.into()),
            span: Span::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup_helpers() {
        let p = SourceProgram {
            decls: vec![
                Decl::Element {
                    name: "Vertex".into(),
                },
                Decl::Func(FuncDecl {
                    name: "main".into(),
                    params: vec![],
                    ret: None,
                    body: vec![],
                    span: Span::default(),
                }),
                Decl::Const(ConstDecl {
                    name: "edges".into(),
                    ty: TypeExpr::EdgeSet { weighted: false },
                    init: None,
                    span: Span::default(),
                }),
            ],
        };
        assert!(p.func("main").is_some());
        assert!(p.func("other").is_none());
        assert!(p.constant("edges").is_some());
    }

    #[test]
    fn scalar_types() {
        assert!(TypeExpr::Vertex.is_scalar());
        assert!(!TypeExpr::VertexSet.is_scalar());
        assert!(!TypeExpr::Vector(Box::new(TypeExpr::Int)).is_scalar());
    }
}
