//! CPU GraphVM correctness: every algorithm × every test graph × the CPU
//! scheduling space, validated against the sequential references.

use ugc_algorithms::Algorithm;
use ugc_backend_cpu::{CpuGraphVm, CpuSchedule};
use ugc_integration::{compile, externs_for, test_graphs, validate};
use ugc_schedule::{
    CompositeCriteria, CompositeSchedule, Parallelization, SchedDirection, ScheduleRef,
};

fn run_and_validate(algo: Algorithm, sched: Option<ScheduleRef>) {
    for (gname, graph) in test_graphs() {
        let prog = compile(algo, sched.clone());
        let vm = CpuGraphVm::default();
        let run = vm
            .execute(prog, &graph, &externs_for(algo, 0))
            .unwrap_or_else(|e| panic!("{} on {gname}: {e}", algo.name()));
        validate(algo, &graph, 0, &|p| run.property_ints(p), &|p| {
            run.property_floats(p)
        });
    }
}

#[test]
fn bfs_default_schedule() {
    run_and_validate(Algorithm::Bfs, None);
}

#[test]
fn bfs_pull() {
    run_and_validate(
        Algorithm::Bfs,
        Some(ScheduleRef::simple(
            CpuSchedule::new().with_direction(SchedDirection::Pull),
        )),
    );
}

#[test]
fn bfs_hybrid() {
    run_and_validate(
        Algorithm::Bfs,
        Some(ScheduleRef::simple(
            CpuSchedule::new().with_direction(SchedDirection::Hybrid),
        )),
    );
}

#[test]
fn bfs_composite_schedule() {
    let comp = CompositeSchedule::new(
        CompositeCriteria::InputSetSize { threshold: 0.15 },
        ScheduleRef::simple(CpuSchedule::new()),
        ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Pull)),
    );
    run_and_validate(Algorithm::Bfs, Some(ScheduleRef::composite(comp)));
}

#[test]
fn bfs_edge_aware_parallel() {
    run_and_validate(
        Algorithm::Bfs,
        Some(ScheduleRef::simple(
            CpuSchedule::new()
                .with_parallelization(Parallelization::EdgeAwareVertexBased)
                .with_serial_threshold(0),
        )),
    );
}

#[test]
fn pagerank_default() {
    run_and_validate(Algorithm::PageRank, None);
}

#[test]
fn pagerank_cache_blocked() {
    run_and_validate(
        Algorithm::PageRank,
        Some(ScheduleRef::simple(
            CpuSchedule::new().with_cache_blocking(true),
        )),
    );
}

#[test]
fn pagerank_pull() {
    // All-edges pull iterates in-edges of every dst; equivalent totals.
    run_and_validate(
        Algorithm::PageRank,
        Some(ScheduleRef::simple(
            CpuSchedule::new().with_direction(SchedDirection::Pull),
        )),
    );
}

#[test]
fn cc_default() {
    run_and_validate(Algorithm::Cc, None);
}

#[test]
fn cc_edge_aware() {
    run_and_validate(
        Algorithm::Cc,
        Some(ScheduleRef::simple(
            CpuSchedule::new()
                .with_parallelization(Parallelization::EdgeAwareVertexBased)
                .with_serial_threshold(0),
        )),
    );
}

#[test]
fn sssp_default_delta_1() {
    run_and_validate(Algorithm::Sssp, None);
}

#[test]
fn sssp_delta_8() {
    run_and_validate(
        Algorithm::Sssp,
        Some(ScheduleRef::simple(CpuSchedule::new().with_delta(8))),
    );
}

#[test]
fn sssp_delta_64() {
    run_and_validate(
        Algorithm::Sssp,
        Some(ScheduleRef::simple(CpuSchedule::new().with_delta(64))),
    );
}

#[test]
fn bc_default() {
    run_and_validate(Algorithm::Bc, None);
}

#[test]
fn bc_from_various_sources() {
    let graph = ugc_graph::generators::two_communities();
    for start in 0..8u32 {
        let prog = compile(Algorithm::Bc, None);
        let run = CpuGraphVm::default()
            .execute(prog, &graph, &externs_for(Algorithm::Bc, start))
            .unwrap();
        validate(
            Algorithm::Bc,
            &graph,
            start,
            &|p| run.property_ints(p),
            &|p| run.property_floats(p),
        );
    }
}

#[test]
fn bfs_from_various_sources() {
    let graph = ugc_graph::generators::road_grid(12, 12, 0.1, 2, false);
    for start in [0u32, 7, 77, 143] {
        let prog = compile(Algorithm::Bfs, None);
        let run = CpuGraphVm::default()
            .execute(prog, &graph, &externs_for(Algorithm::Bfs, start))
            .unwrap();
        validate(
            Algorithm::Bfs,
            &graph,
            start,
            &|p| run.property_ints(p),
            &|p| run.property_floats(p),
        );
    }
}

#[test]
fn single_thread_matches_parallel() {
    let graph = ugc_graph::generators::rmat(8, 4, 9, true);
    let p1 = compile(Algorithm::Sssp, None);
    let p2 = compile(Algorithm::Sssp, None);
    let r1 = CpuGraphVm::with_threads(1)
        .execute(p1, &graph, &externs_for(Algorithm::Sssp, 0))
        .unwrap();
    let r2 = CpuGraphVm::with_threads(8)
        .execute(p2, &graph, &externs_for(Algorithm::Sssp, 0))
        .unwrap();
    assert_eq!(r1.property_ints("dist"), r2.property_ints("dist"));
}
