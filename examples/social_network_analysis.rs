//! Social-network analysis: PageRank influencers and community structure
//! on a Twitter-like power-law graph, with GPU schedules tuned the way the
//! paper tunes them for social graphs.
//!
//! ```sh
//! cargo run --release --example social_network_analysis
//! ```

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_gpu::{GpuSchedule, LoadBalance};
use ugc_graph::{Dataset, Scale};
use ugc_schedule::{SchedDirection, ScheduleRef};

fn main() {
    let graph = Dataset::Twitter.generate(Scale::Tiny);
    println!(
        "Twitter stand-in: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- PageRank: who matters? ------------------------------------
    // Social graphs want edge-aware load balancing (hubs!) on the GPU.
    let pr = Compiler::new(Algorithm::PageRank)
        .schedule(
            Algorithm::PageRank.schedule_path(),
            ScheduleRef::simple(GpuSchedule::new().with_load_balance(LoadBalance::Twc)),
        )
        .run(Target::Gpu, &graph)
        .expect("pagerank runs");
    let ranks = pr.property_floats("old_rank");
    let mut by_rank: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    by_rank.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 influencers (vertex, rank):");
    for (v, r) in by_rank.iter().take(5) {
        println!("    v{v:<6} {r:.6}");
    }
    println!("PageRank took {} simulated GPU cycles", pr.cycles);

    // --- Connected components: how fragmented is the network? -------
    let cc = Compiler::new(Algorithm::Cc)
        .schedule(
            Algorithm::Cc.schedule_path(),
            ScheduleRef::simple(
                GpuSchedule::new()
                    .with_load_balance(LoadBalance::Etwc)
                    .with_direction(SchedDirection::Push),
            ),
        )
        .run(Target::Gpu, &graph)
        .expect("cc runs");
    let labels = cc.property_ints("IDs");
    let mut components: Vec<i64> = labels.to_vec();
    components.sort_unstable();
    components.dedup();
    println!(
        "\n{} connected components; giant component holds {:.1}% of vertices",
        components.len(),
        100.0 * labels.iter().filter(|&&l| l == components[0]).count() as f64 / labels.len() as f64
    );

    // --- BC: who brokers between communities? -----------------------
    let bc = Compiler::new(Algorithm::Bc)
        .start_vertex(by_rank[0].0 as u32)
        .run(Target::Gpu, &graph)
        .expect("bc runs");
    let scores = bc.property_floats("centrality");
    let mut by_bc: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    by_bc.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-3 brokers from the top influencer (vertex, dependency):");
    for (v, s) in by_bc.iter().take(3) {
        println!("    v{v:<6} {s:.2}");
    }
}
