//! Daemon chaos suite: `ugc-serve` under hostile clients, injected
//! faults, shutdown races, and memory pressure.
//!
//! The contract under test, end to end over live sockets:
//!
//! 1. **No wedge, no panic** — fuzzed protocol bytes (oversize lines,
//!    interior NULs, truncated frames, seeded garbage) always end in a
//!    typed `err` reply or a clean close, and the daemon keeps serving.
//! 2. **Hostile clients are bounded** — a client that stalls mid-frame or
//!    vanishes without reading its reply costs one read-timeout, not a
//!    handler thread forever.
//! 3. **Chaos-correct answers** — with `serve:batch_abort` faults
//!    injected, every query is either reference-equal `ok` or a typed
//!    `err`; never a silent wrong answer, and the books still balance.
//! 4. **Graceful drain** — shutdown under load answers every admitted
//!    query (executed or `err draining`), is idempotent, and terminates.
//! 5. **Bounded cache** — resident graph bytes never exceed
//!    `UGC_CACHE_BYTES`; pressure evicts idle graphs, and a graph that
//!    can never fit sheds `err overloaded` instead of building.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ugc_graph::{Dataset, Scale};
use ugc_resilience::fault;
use ugc_serve::{Bind, ServeConfig, Server, ServerHandle, MAX_LINE_BYTES};

fn start_server(config: ServeConfig) -> (ServerHandle, std::net::SocketAddr) {
    let handle = Server::start(config).expect("server starts");
    let addr = match handle.addr() {
        ugc_serve::ServeAddr::Tcp(a) => *a,
        other => panic!("expected a TCP server, bound {other}"),
    };
    (handle, addr)
}

/// One request → one reply line over a fresh connection.
fn roundtrip(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    reply.trim_end().to_string()
}

/// Extracts a `key=value` field from a reply line.
fn field<'a>(reply: &'a str, key: &str) -> &'a str {
    reply
        .split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no `{key}=` field in reply: {reply}"))
}

fn stat(reply: &str, key: &str) -> u64 {
    field(reply, key).parse().unwrap_or_else(|_| {
        panic!("`{key}` is not a number in reply: {reply}");
    })
}

/// `ok + errored + shed = admitted`: nothing admitted is ever dropped on
/// the floor, and nothing is double-counted.
fn assert_books_balance(stats: &str) {
    let admitted = stat(stats, "admitted");
    let settled = stat(stats, "ok")
        + stat(stats, "errored")
        + stat(stats, "shed_deadline")
        + stat(stats, "shed_overload")
        + stat(stats, "shed_drain");
    assert_eq!(
        settled, admitted,
        "accounting imbalance (ok+errored+shed != admitted): {stats}"
    );
}

// ---------------------------------------------------------------------------
// 1. Fuzzed protocol frames.
// ---------------------------------------------------------------------------

/// Deterministic byte soup; newline-free so each case is one frame.
fn garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = (state >> 33) as u8;
        if b != b'\n' {
            out.push(b);
        }
    }
    out
}

/// Writes raw frames, half-closes, and collects every reply line until
/// the server closes. A hang here fails via the read timeout. The server
/// is allowed to hang up on a hostile frame before we finish sending, so
/// write-side errors that mean "peer already closed" are tolerated — the
/// reply loop below still proves the close was clean.
fn hostile_conn(addr: std::net::SocketAddr, frames: &[&[u8]]) -> Vec<String> {
    use std::io::ErrorKind;
    let peer_closed = |e: &std::io::Error| {
        matches!(
            e.kind(),
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::NotConnected
        )
    };
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    for f in frames {
        if let Err(e) = s.write_all(f) {
            assert!(peer_closed(&e), "write frame: {e}");
            break;
        }
    }
    if let Err(e) = s.flush() {
        assert!(peer_closed(&e), "flush: {e}");
    }
    if let Err(e) = s.shutdown(std::net::Shutdown::Write) {
        assert!(peer_closed(&e), "half-close: {e}");
    }
    let mut reader = BufReader::new(s);
    let mut replies = Vec::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => replies.push(line.trim_end().to_string()),
            Err(e) => panic!("hostile connection hung instead of closing: {e}"),
        }
    }
    replies
}

#[test]
fn fuzzed_frames_always_err_or_close_and_never_wedge() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        ..ServeConfig::default()
    });

    let oversize = vec![b'x'; MAX_LINE_BYTES + 7];
    let mut cases: Vec<(String, Vec<Vec<u8>>)> = vec![
        ("oversize line".into(), vec![oversize, b"\n".to_vec()]),
        ("interior NUL".into(), vec![b"query bfs\0RN\n".to_vec()]),
        (
            "NUL then valid stats on the same connection".into(),
            vec![b"que\0ry\n".to_vec(), b"stats\n".to_vec()],
        ),
        ("truncated frame".into(), vec![b"query bf".to_vec()]),
        ("empty line".into(), vec![b"\n".to_vec()]),
        ("bare CR".into(), vec![b"\r\n".to_vec()]),
    ];
    for seed in 0..8u64 {
        let mut frame = garbage(0x5EED_0000 + seed, 64 + (seed as usize) * 37);
        frame.push(b'\n');
        cases.push((format!("seeded garbage #{seed}"), vec![frame]));
    }

    for (name, frames) in &cases {
        let borrowed: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let replies = hostile_conn(addr, &borrowed);
        for (i, reply) in replies.iter().enumerate() {
            let ok = reply.starts_with("err")
                // The one deliberately valid follow-up frame proves a NUL
                // reply does not poison its connection.
                || (name.contains("valid stats") && i == 1 && reply.starts_with("ok stats"));
            assert!(
                ok,
                "fuzz `{name}` reply {i} is neither typed err nor the expected ok: {reply}"
            );
        }
        if name.contains("valid stats") {
            assert_eq!(
                replies.len(),
                2,
                "fuzz `{name}` must get both replies: {replies:?}"
            );
        }
    }

    // The daemon must still be fully alive afterwards.
    let reply = roundtrip(addr, "query bfs RN source=0");
    assert!(
        reply.starts_with("ok "),
        "daemon wedged after fuzzing: {reply}"
    );
    let stats = roundtrip(addr, "stats");
    assert_books_balance(&stats);

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// 2. Stalling and vanishing clients.
// ---------------------------------------------------------------------------

#[test]
fn stalled_and_vanishing_clients_cost_a_timeout_not_a_thread() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        read_timeout: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    });

    // A client that connects and never sends a byte: the daemon must hang
    // up on it (EOF from the client's side) within the read timeout.
    let mut silent = TcpStream::connect(addr).expect("connect");
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut sink = Vec::new();
    match silent.read_to_end(&mut sink) {
        Ok(0) => {}
        Ok(n) => panic!("daemon sent {n} unsolicited bytes to a silent client"),
        Err(e) => panic!("daemon held a silent client past its read timeout: {e}"),
    }

    // A client that stalls mid-frame is the same story.
    let mut staller = TcpStream::connect(addr).expect("connect");
    staller.write_all(b"query bfs R").expect("partial frame");
    staller.flush().expect("flush");
    staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut sink = Vec::new();
    assert!(
        matches!(staller.read_to_end(&mut sink), Ok(0)),
        "daemon held a mid-frame staller past its read timeout"
    );

    // A client that fires a query and vanishes without reading the reply:
    // the daemon's failed write must close quietly, not panic.
    for _ in 0..3 {
        let mut ghost = TcpStream::connect(addr).expect("connect");
        writeln!(ghost, "query bfs RN source=0").expect("send");
        ghost.flush().expect("flush");
        drop(ghost);
    }

    // After all of the above the daemon still answers promptly.
    let reply = roundtrip(addr, "query bfs RN source=0");
    assert!(
        reply.starts_with("ok "),
        "daemon wedged by hostile clients: {reply}"
    );
    assert_books_balance(&roundtrip(addr, "stats"));

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// 3. Chaos soak: injected batch aborts.
// ---------------------------------------------------------------------------

#[test]
fn chaos_soak_under_injected_batch_aborts_is_reference_equal_or_typed_err() {
    const CLIENTS: usize = 4;
    const QUERIES: usize = 6;

    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 2,
        batch_max: 8,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    });

    // Reference answers before any fault is armed.
    let requests = [
        "query bfs RN source=0",
        "query bfs RN source=3",
        "query sssp RN source=0",
        "query sssp PK source=1",
    ];
    let mut reference = std::collections::HashMap::new();
    for req in requests {
        let reply = roundtrip(addr, req);
        assert!(
            reply.starts_with("ok "),
            "reference `{req}` failed: {reply}"
        );
        reference.insert(req, field(&reply, "checksum").to_string());
    }
    let reference = Arc::new(reference);

    // Arm the injector: most batch attempts abort, so the soak exercises
    // retry, re-roll, and degrade-to-singles on every worker.
    fault::install(
        fault::parse_faults("serve:batch_abort:p=0.7:seed=11").expect("valid fault spec"),
    );

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                barrier.wait();
                for q in 0..QUERIES {
                    let req = requests[(c + q) % requests.len()];
                    let reply = roundtrip(addr, req);
                    if reply.starts_with("ok ") {
                        assert_eq!(
                            field(&reply, "checksum"),
                            reference[req],
                            "client {c} query {q} `{req}`: SILENT WRONG ANSWER under chaos"
                        );
                    } else {
                        assert!(
                            reply.starts_with("err "),
                            "client {c} query {q} `{req}`: untyped reply: {reply}"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("chaos soak client");
    }
    fault::clear();

    let stats = roundtrip(addr, "stats");
    assert_books_balance(&stats);

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// 4. Graceful drain under load.
// ---------------------------------------------------------------------------

#[test]
fn drain_under_load_settles_every_admitted_query_and_terminates() {
    const CLIENTS: usize = 12;

    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 1,
        queue_cap: 16,
        batch_max: 4,
        batch_window: Duration::from_millis(2),
        drain: Duration::from_millis(300),
        read_timeout: Some(Duration::from_secs(5)),
        ..ServeConfig::default()
    });

    // Warm the cache so in-drain queries don't each pay a graph build.
    let warm = roundtrip(addr, "query bfs RN source=0");
    assert!(warm.starts_with("ok "), "warmup failed: {warm}");

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<String, String> {
                let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                barrier.wait();
                writeln!(s, "query bfs RN source={}", c % 4).map_err(|e| format!("send: {e}"))?;
                s.flush().map_err(|e| e.to_string())?;
                let mut reply = String::new();
                BufReader::new(s)
                    .read_line(&mut reply)
                    .map_err(|e| format!("read: {e}"))?;
                if reply.is_empty() {
                    return Err("closed without a reply".into());
                }
                Ok(reply.trim_end().to_string())
            })
        })
        .collect();
    barrier.wait();
    // Let some queries land in the gate, then pull the plug — twice, to
    // prove shutdown is idempotent.
    std::thread::sleep(Duration::from_millis(10));
    handle.shutdown();
    handle.shutdown();

    for (c, t) in clients.into_iter().enumerate() {
        match t.join().expect("drain client thread") {
            // Every connection the daemon accepted must settle with a
            // typed reply: executed, shed, or refused — never dropped.
            Ok(reply) => assert!(
                reply.starts_with("ok ") || reply.starts_with("err "),
                "client {c}: untyped reply during drain: {reply}"
            ),
            // A connection the daemon never accepted (listener already
            // closed) may die at the transport layer; that is a clean
            // refusal, not a dropped admitted query.
            Err(e) => assert!(
                e.starts_with("connect:") || e.contains("closed without a reply"),
                "client {c}: unexpected transport failure: {e}"
            ),
        }
    }

    // With every client answered, no new admissions are possible; the
    // workers must settle each admitted query (executed or shed) within
    // the drain window — poll briefly, then the books must balance.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let c = handle.counters();
        let settled = c.ok.get()
            + c.errored.get()
            + c.shed_deadline.get()
            + c.shed_overload.get()
            + c.shed_drain.get();
        if settled == c.admitted.get() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drain dropped admitted queries: ok {} errored {} shed {}/{}/{} admitted {}",
            c.ok.get(),
            c.errored.get(),
            c.shed_deadline.get(),
            c.shed_overload.get(),
            c.shed_drain.get(),
            c.admitted.get()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // join() terminating at all is the drain-deadline guarantee.
    handle.join();
}

// ---------------------------------------------------------------------------
// 5. Bounded cache under pressure.
// ---------------------------------------------------------------------------

#[test]
fn cache_pressure_evicts_within_cap_and_never_exceeds_it() {
    // Size the cap from the real graphs: room for the larger of the two,
    // but never both at once.
    let rn = Dataset::RoadNetCa.generate(Scale::Tiny).resident_bytes();
    let pk = Dataset::Pokec.generate(Scale::Tiny).resident_bytes();
    let cap = rn.max(pk) + rn.min(pk) / 2;

    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 1, // one worker → pins are always released between batches
        cache_bytes: Some(cap),
        ..ServeConfig::default()
    });

    let check = |req: &str| {
        let reply = roundtrip(addr, req);
        assert!(
            reply.starts_with("ok "),
            "`{req}` failed under the cap: {reply}"
        );
        let stats = roundtrip(addr, "stats");
        let resident = stat(&stats, "cache_resident_bytes");
        assert!(
            resident <= cap as u64,
            "resident bytes {resident} exceed the cap {cap}: {stats}"
        );
        stats
    };

    check("query bfs RN source=0");
    // PK does not fit next to RN: the idle RN graph must be evicted.
    let stats = check("query bfs PK source=0");
    assert_eq!(
        stat(&stats, "cache_evictions"),
        1,
        "PK must evict RN: {stats}"
    );
    // Touching RN again rebuilds it (and evicts PK in turn).
    let stats = check("query bfs RN source=1");
    assert_eq!(
        stat(&stats, "cache_builds"),
        3,
        "RN must rebuild after eviction: {stats}"
    );
    assert_eq!(
        stat(&stats, "cache_evictions"),
        2,
        "RN must evict PK in turn: {stats}"
    );
    assert_books_balance(&stats);

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

#[test]
fn graph_that_can_never_fit_sheds_overloaded_instead_of_building() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        cache_bytes: Some(1024), // no generated graph fits in 1 KiB
        ..ServeConfig::default()
    });

    let reply = roundtrip(addr, "query bfs RN source=0");
    assert!(
        reply.starts_with("err overloaded"),
        "an unbuildable graph must shed `err overloaded`, got: {reply}"
    );
    // The daemon keeps serving protocol-level requests afterwards.
    let stats = roundtrip(addr, "stats");
    assert!(
        stat(&stats, "shed_overload") >= 1,
        "shed not counted: {stats}"
    );
    assert_eq!(
        stat(&stats, "cache_resident_bytes"),
        0,
        "nothing may be resident: {stats}"
    );
    assert_books_balance(&stats);

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}
