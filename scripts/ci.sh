#!/usr/bin/env bash
# Tier-1 verification gate (referenced from README.md).
#
# The workspace is hermetic — zero crates-io dependencies — so everything
# here runs with --offline and must pass with no network access. Any
# nonzero exit fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo test under UGC_THREADS=1 (deterministic serial execution)"
# The pool honors UGC_THREADS as a global cap; 1 means every parallel_for
# runs inline. Scoped to the crates that exercise the pool to bound time.
UGC_THREADS=1 cargo test -q --offline -p ugc-runtime -p ugc-backend-cpu -p ugc-integration

echo "== autotuner smoke (tiny scale, fixed seed, capped budget)"
# A deterministic end-to-end tune of one triple per simulator target; the
# second GPU invocation must hit the persistent cache without re-measuring.
export UGC_TUNE_CACHE="target/ci-tuning-cache.jsonl"
rm -f "$UGC_TUNE_CACHE"
tune() {
  cargo run --release --offline -q -p ugc-bench --bin repro -- \
    --scale tiny --seed 7 --budget 10 tune "$@"
}
tune gpu bfs PK
tune swarm sssp RN
tune hb pr PK
tune gpu bfs PK | grep -q "cache hit" || {
  echo "autotuner smoke: expected a cache hit on the second GPU tune" >&2
  exit 1
}

echo "== bench snapshot smoke (tiny, output under target/)"
# Exercise the snapshot pipeline end to end without touching the tracked
# BENCH_<n>.json: one sample per bench, output redirected to target/.
UGC_BENCH_OUT="target/ci-bench-smoke.json" UGC_BENCH_SAMPLES=1 UGC_BENCH_WARMUP=0 \
  scripts/bench_snapshot.sh
grep -q '"group"' target/ci-bench-smoke.json || {
  echo "bench snapshot smoke: no bench entries in output" >&2
  exit 1
}

echo "tier-1 gate: OK"
