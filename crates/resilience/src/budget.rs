//! Cooperative watchdog budgets: wall-clock and simulated-cycle caps.
//!
//! The supervisor arms budgets for the current thread with [`scope`];
//! execution then checks them cooperatively:
//!
//! * the timing simulators call [`check_cycles`] after advancing
//!   simulated time — exceeding the cap panics with a typed
//!   [`BudgetPayload`] that the GraphVM boundary converts into a
//!   `Budget`-classed error;
//! * the shared interpreter queries [`wall_exceeded`] once per `While`
//!   iteration and returns a classed error directly.
//!
//! Budgets are thread-local: nothing outside a supervisor scope ever
//! pays more than two thread-local reads, and unsupervised code paths
//! (unit tests driving a VM directly) behave exactly as before.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::counters;

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    static CYCLE_CAP: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The panic payload raised when a cycle watchdog kills an attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetPayload {
    /// Which budget fired (`"cycles"` or `"wall"`).
    pub what: &'static str,
    /// Human-readable detail (cap and observed value).
    pub detail: String,
}

impl std::fmt::Display for BudgetPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} budget exhausted: {}", self.what, self.detail)
    }
}

/// RAII guard from [`scope`]; restores the previous budgets on drop.
pub struct BudgetScope {
    prev_deadline: Option<Instant>,
    prev_cap: Option<u64>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.prev_deadline));
        CYCLE_CAP.with(|c| c.set(self.prev_cap));
    }
}

/// Arms the calling thread's watchdogs for the duration of the returned
/// guard. `None` leaves the corresponding watchdog disarmed.
pub fn scope(wall: Option<Duration>, cycles: Option<u64>) -> BudgetScope {
    let prev_deadline = DEADLINE.with(|d| d.replace(wall.map(|w| Instant::now() + w)));
    let prev_cap = CYCLE_CAP.with(|c| c.replace(cycles));
    BudgetScope {
        prev_deadline,
        prev_cap,
    }
}

/// Checks the simulated-cycle cap against `current` cycles; called by the
/// simulators after advancing time.
///
/// # Panics
///
/// Panics with a typed [`BudgetPayload`] (counted as
/// `resilience.budget_kills`) when the cap is exceeded. The payload is
/// caught at the GraphVM boundary — it never escapes the supervisor.
pub fn check_cycles(current: u64) {
    let Some(cap) = CYCLE_CAP.with(|c| c.get()) else {
        return;
    };
    if current > cap {
        counters().budget_kills.incr();
        std::panic::panic_any(BudgetPayload {
            what: "cycles",
            detail: format!("simulated {current} cycles against a cap of {cap}"),
        });
    }
}

/// Non-panicking wall-clock check used by the interpreter's loop headers.
/// Returns the kill message (and counts `resilience.budget_kills`) when
/// the deadline has passed.
pub fn wall_exceeded() -> Option<String> {
    let deadline = DEADLINE.with(|d| d.get())?;
    if Instant::now() <= deadline {
        return None;
    }
    counters().budget_kills.incr();
    Some("wall budget exhausted: watchdog deadline passed mid-execution".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_budgets_are_noops() {
        check_cycles(u64::MAX);
        assert!(wall_exceeded().is_none());
    }

    #[test]
    fn cycle_cap_panics_with_typed_payload() {
        let _scope = scope(None, Some(1000));
        check_cycles(999);
        check_cycles(1000);
        let err = std::panic::catch_unwind(|| check_cycles(1001)).unwrap_err();
        let payload = err.downcast_ref::<BudgetPayload>().expect("typed payload");
        assert_eq!(payload.what, "cycles");
    }

    #[test]
    fn wall_deadline_trips_after_expiry() {
        let _scope = scope(Some(Duration::from_millis(0)), None);
        std::thread::sleep(Duration::from_millis(2));
        assert!(wall_exceeded().is_some());
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(wall_exceeded().is_none());
        {
            let _outer = scope(None, Some(10));
            {
                let _inner = scope(None, Some(u64::MAX));
                check_cycles(1_000_000); // inner cap wins
            }
            let err = std::panic::catch_unwind(|| check_cycles(11)).unwrap_err();
            assert!(err.downcast_ref::<BudgetPayload>().is_some());
        }
        check_cycles(u64::MAX); // fully disarmed again
    }
}
