//! `applyModified` lowering: output-frontier tracking (paper Fig. 4).
//!
//! For every `EdgeSetIterator` that must produce an output frontier
//! (`requires_output` with a tracked property), the apply UDF is cloned and
//! rewritten so that updates to the tracked property report modified
//! vertices via `EnqueueVertex`:
//!
//! * a plain store `prop[i] = v` becomes
//!   `enq = CompareAndSwap(prop[i], <init>, v); if (enq) EnqueueVertex(i)`
//!   — claim-once semantics against the property's initial value (this is
//!   exactly the generated BFS code in the paper's Fig. 4),
//! * a reduction `prop[i] op= v` gains a change-tracking flag:
//!   `changed = (op= changed prop[i], v); if (changed) EnqueueVertex(i)`.
//!
//! Each iterator gets its own clone (named `<udf>__trk_<label>`), so later
//! per-iterator specialization (direction, atomics) never conflicts.

use ugc_graphir::ir::{Expr, ExprKind, Program, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::visit::{walk_stmts, walk_stmts_mut};

use crate::MidendError;

/// Runs the pass. See the module docs.
///
/// # Errors
///
/// Returns an error when the apply UDF never writes the tracked property or
/// a plain store tracks a property without a literal initializer.
pub fn run(prog: &mut Program) -> Result<(), MidendError> {
    // Collect iterators needing specialization first (borrow discipline).
    struct Work {
        apply: String,
        tracked: String,
        label: Option<String>,
    }
    let mut work = Vec::new();
    walk_stmts(&prog.main, &mut |s| {
        if let StmtKind::EdgeSetIterator(d) = &s.kind {
            if s.meta.flag(keys::REQUIRES_OUTPUT) && !s.meta.flag("tracking_done") {
                if let Some(tp) = &d.tracked_prop {
                    work.push(Work {
                        apply: d.apply.clone(),
                        tracked: tp.clone(),
                        label: s.label.clone(),
                    });
                }
            }
        }
    });

    for (counter, w) in work.into_iter().enumerate() {
        let suffix = w.label.clone().unwrap_or_else(|| format!("{counter}"));
        let new_name = format!("{}__trk_{suffix}", w.apply);
        if prog.function(&new_name).is_some() {
            continue; // already specialized (idempotent pass)
        }
        let init = prog
            .property(&w.tracked)
            .map(|p| p.init.clone())
            .ok_or_else(|| {
                MidendError::new(format!("tracked property `{}` is not declared", w.tracked))
            })?;
        let base = prog.function(&w.apply).ok_or_else(|| {
            MidendError::new(format!(
                "applyModified references unknown UDF `{}`",
                w.apply
            ))
        })?;
        let mut clone = base.clone();
        clone.name = new_name.clone();
        let rewrites = rewrite_body(&mut clone.body, &w.tracked, &init)?;
        if rewrites == 0 {
            return Err(MidendError::new(format!(
                "UDF `{}` never writes tracked property `{}`",
                w.apply, w.tracked
            )));
        }
        prog.add_function(clone);
        // Repoint the matching iterator(s) to the specialized clone.
        let target_label = w.label.clone();
        let apply = w.apply.clone();
        let mut first = true;
        walk_stmts_mut(&mut prog.main, &mut |s| {
            if let StmtKind::EdgeSetIterator(d) = &mut s.kind {
                let label_matches = match &target_label {
                    Some(l) => s.label.as_deref() == Some(l.as_str()),
                    None => first && d.apply == apply && s.meta.flag(keys::REQUIRES_OUTPUT),
                };
                if label_matches && d.apply == apply {
                    d.apply = new_name.clone();
                    s.meta.set("tracking_done", true);
                    first = false;
                }
            }
        });
    }
    Ok(())
}

/// Rewrites writes to `tracked` in `body`; returns how many were rewritten.
fn rewrite_body(body: &mut Vec<Stmt>, tracked: &str, init: &Expr) -> Result<usize, MidendError> {
    let mut count = 0usize;
    let mut fresh = 0usize;
    rewrite_block(body, tracked, init, &mut count, &mut fresh)?;
    Ok(count)
}

fn rewrite_block(
    body: &mut Vec<Stmt>,
    tracked: &str,
    init: &Expr,
    count: &mut usize,
    fresh: &mut usize,
) -> Result<(), MidendError> {
    let mut i = 0;
    while i < body.len() {
        // Recurse into nested bodies first.
        match &mut body[i].kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                rewrite_block(then_body, tracked, init, count, fresh)?;
                rewrite_block(else_body, tracked, init, count, fresh)?;
            }
            StmtKind::While { body: b, .. } | StmtKind::For { body: b, .. } => {
                rewrite_block(b, tracked, init, count, fresh)?;
            }
            _ => {}
        }

        let replacement: Option<Vec<Stmt>> = match &body[i].kind {
            StmtKind::Assign {
                target: ugc_graphir::ir::LValue::Prop { prop, index },
                value,
            } if prop == tracked => {
                if !matches!(
                    init.kind,
                    ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_)
                ) {
                    return Err(MidendError::new(format!(
                        "tracked property `{tracked}` needs a literal initializer for \
                         compare-and-swap tracking"
                    )));
                }
                *count += 1;
                let flag = format!("__enq{fresh}");
                *fresh += 1;
                let cas = Expr::cas(prop.clone(), (**index).clone(), init.clone(), value.clone());
                Some(vec![
                    Stmt::new(StmtKind::VarDecl {
                        name: flag.clone(),
                        ty: ugc_graphir::types::Type::Bool,
                        init: Some(cas),
                    }),
                    Stmt::new(StmtKind::If {
                        cond: Expr::var(flag),
                        then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                            set: None,
                            vertex: (**index).clone(),
                        })],
                        else_body: vec![],
                    }),
                ])
            }
            StmtKind::Reduce {
                target: ugc_graphir::ir::LValue::Prop { prop, index },
                op,
                value,
                tracking,
            } if prop == tracked && tracking.is_none() => {
                *count += 1;
                let flag = format!("__chg{fresh}");
                *fresh += 1;
                let mut red = Stmt::new(StmtKind::Reduce {
                    target: ugc_graphir::ir::LValue::Prop {
                        prop: prop.clone(),
                        index: index.clone(),
                    },
                    op: *op,
                    value: value.clone(),
                    tracking: Some(flag.clone()),
                });
                red.meta = body[i].meta.clone();
                Some(vec![
                    red,
                    Stmt::new(StmtKind::If {
                        cond: Expr::var(flag),
                        then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                            set: None,
                            vertex: (**index).clone(),
                        })],
                        else_body: vec![],
                    }),
                ])
            }
            _ => None,
        };

        match replacement {
            Some(stmts) => {
                let n = stmts.len();
                body.splice(i..=i, stmts);
                i += n;
            }
            None => i += 1,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ugc_graphir::printer::print_function;
    use ugc_graphir::visit::find_labeled;

    fn lower_src(src: &str) -> Program {
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        lower(&ast).unwrap()
    }

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(updateEdge, parent, true);
end
"#;

    #[test]
    fn assign_becomes_cas_plus_enqueue() {
        let mut p = lower_src(BFS);
        run(&mut p).unwrap();
        let f = p.function("updateEdge__trk_s1").expect("specialized clone");
        let text = print_function(f);
        assert!(text.contains("CompareAndSwap"), "{text}");
        assert!(text.contains("EnqueueVertex"), "{text}");
        // Iterator repointed.
        let s1 = find_labeled(&p, "s1").unwrap();
        let StmtKind::EdgeSetIterator(d) = &s1.kind else {
            panic!()
        };
        assert_eq!(d.apply, "updateEdge__trk_s1");
        // Original untouched.
        let orig = print_function(p.function("updateEdge").unwrap());
        assert!(!orig.contains("CompareAndSwap"), "{orig}");
    }

    #[test]
    fn reduce_gains_tracking_flag() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const IDs : vector{Vertex}(int) = 0;
func upd(src : Vertex, dst : Vertex)
    IDs[dst] min= IDs[src];
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(8);
    #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(upd, IDs);
end
"#;
        let mut p = lower_src(src);
        run(&mut p).unwrap();
        let f = p.function("upd__trk_s1").unwrap();
        let text = print_function(f);
        assert!(text.contains("tracking=__chg0"), "{text}");
        assert!(text.contains("EnqueueVertex"), "{text}");
    }

    #[test]
    fn missing_write_is_an_error() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const a : vector{Vertex}(int) = 0;
const b : vector{Vertex}(int) = 0;
func upd(src : Vertex, dst : Vertex)
    a[dst] += 1;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(8);
    #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(upd, b);
end
"#;
        let mut p = lower_src(src);
        let err = run(&mut p).unwrap_err();
        assert!(err.to_string().contains("never writes"));
    }

    #[test]
    fn pass_is_idempotent() {
        let mut p = lower_src(BFS);
        run(&mut p).unwrap();
        let n = p.functions.len();
        run(&mut p).unwrap();
        assert_eq!(p.functions.len(), n);
    }
}
