//! `SimpleGPUSchedule` — the GPU GraphVM's scheduling object (paper
//! Fig. 6a).

use std::any::Any;

use ugc_schedule::space::{
    delta_dimension, delta_value, Dimension, PruneRule, ScheduleSpace, SpaceParams,
};
use ugc_schedule::{
    Parallelization, PullFrontierRepr, SchedDirection, ScheduleRef, SimpleSchedule,
};

use crate::load_balance::LoadBalance;

/// How output frontiers are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontierCreation {
    /// Compact during traversal with an atomic cursor (`FUSED`).
    #[default]
    Fused,
    /// Mark a boolmap during traversal, compact in a follow-up kernel.
    UnfusedBoolmap,
    /// Mark a bitmap during traversal, compact in a follow-up kernel.
    UnfusedBitmap,
}

/// GPU scheduling options.
///
/// # Example
///
/// ```
/// use ugc_backend_gpu::{GpuSchedule, LoadBalance, FrontierCreation};
/// use ugc_schedule::SchedDirection;
///
/// let sched1 = GpuSchedule::new()
///     .with_direction(SchedDirection::Push)
///     .with_frontier_creation(FrontierCreation::Fused)
///     .with_load_balance(LoadBalance::Twc);
/// assert_eq!(sched1.load_balance(), LoadBalance::Twc);
/// ```
#[derive(Debug, Clone)]
pub struct GpuSchedule {
    direction: SchedDirection,
    load_balance: LoadBalance,
    frontier_creation: FrontierCreation,
    pull_frontier: PullFrontierRepr,
    dedup: bool,
    delta: i64,
    hybrid_threshold: f64,
    kernel_fusion: bool,
    edge_blocking: Option<u32>,
    async_execution: bool,
}

impl Default for GpuSchedule {
    fn default() -> Self {
        GpuSchedule {
            direction: SchedDirection::Push,
            load_balance: LoadBalance::VertexBased,
            frontier_creation: FrontierCreation::Fused,
            pull_frontier: PullFrontierRepr::Boolmap,
            dedup: false,
            delta: 1,
            hybrid_threshold: 0.15,
            kernel_fusion: false,
            edge_blocking: None,
            async_execution: false,
        }
    }
}

impl GpuSchedule {
    /// The default GPU schedule (the paper's baseline: push,
    /// vertex-based).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the traversal direction (`configDirection`).
    pub fn with_direction(mut self, d: SchedDirection) -> Self {
        self.direction = d;
        self
    }

    /// Sets the load-balancing strategy (`configLoadBalance`).
    pub fn with_load_balance(mut self, lb: LoadBalance) -> Self {
        self.load_balance = lb;
        self
    }

    /// Sets frontier materialization (`configFrontierCreation`).
    pub fn with_frontier_creation(mut self, fc: FrontierCreation) -> Self {
        self.frontier_creation = fc;
        self
    }

    /// Sets the pull-side input frontier representation.
    pub fn with_pull_frontier(mut self, r: PullFrontierRepr) -> Self {
        self.pull_frontier = r;
        self
    }

    /// Enables explicit output deduplication (`configDeduplication`).
    pub fn with_deduplication(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Sets the ∆ bucket width (`configDelta`).
    pub fn with_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the hybrid direction threshold.
    pub fn with_hybrid_threshold(mut self, t: f64) -> Self {
        self.hybrid_threshold = t;
        self
    }

    /// Requests kernel fusion of the enclosing loop (`configKernelFusion`).
    pub fn with_kernel_fusion(mut self, yes: bool) -> Self {
        self.kernel_fusion = yes;
        self
    }

    /// Enables EdgeBlocking with the given destination-block size.
    pub fn with_edge_blocking(mut self, block: u32) -> Self {
        self.edge_blocking = Some(block);
        self
    }

    /// Enables asynchronous execution for ordered loops: the fused
    /// megakernel drops its grid synchronizations, letting rounds overlap.
    /// Correct only for monotone updates (∆-stepping relaxations) — the
    /// SEP-Graph optimization the paper leaves as future work (§IV-C).
    /// Implies kernel fusion.
    pub fn with_async_execution(mut self, yes: bool) -> Self {
        self.async_execution = yes;
        if yes {
            self.kernel_fusion = true;
        }
        self
    }

    /// The load-balancing strategy.
    pub fn load_balance(&self) -> LoadBalance {
        self.load_balance
    }

    /// The frontier materialization choice.
    pub fn frontier_creation(&self) -> FrontierCreation {
        self.frontier_creation
    }

    /// Whether kernel fusion was requested.
    pub fn kernel_fusion(&self) -> bool {
        self.kernel_fusion
    }

    /// The EdgeBlocking block size, if enabled.
    pub fn edge_blocking(&self) -> Option<u32> {
        self.edge_blocking
    }

    /// Whether asynchronous (sync-free) ordered execution was requested.
    pub fn async_execution(&self) -> bool {
        self.async_execution
    }
}

impl SimpleSchedule for GpuSchedule {
    fn parallelization(&self) -> Parallelization {
        match self.load_balance {
            LoadBalance::VertexBased => Parallelization::VertexBased,
            LoadBalance::EdgeOnly | LoadBalance::Strict => Parallelization::EdgeBased,
            _ => Parallelization::EdgeAwareVertexBased,
        }
    }

    fn direction(&self) -> SchedDirection {
        self.direction
    }

    fn pull_frontier(&self) -> PullFrontierRepr {
        self.pull_frontier
    }

    fn deduplication(&self) -> bool {
        self.dedup
    }

    fn delta(&self) -> i64 {
        self.delta
    }

    fn hybrid_threshold(&self) -> f64 {
        self.hybrid_threshold
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The GPU GraphVM's declared search space — the space the GPU-GraphIt
/// follow-up paper shows is too large to tune by hand: load balancer
/// (VERTEX/TWC/CM/WM/STRICT/ETWC) × kernel fusion × frontier creation ×
/// EdgeBlocking, plus traversal direction for frontier-driven algorithms
/// and asynchronous execution + the ∆ sweep for ordered ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuScheduleSpace;

/// The load balancers the space sweeps, with their level labels.
const LB_LEVELS: [(&str, LoadBalance); 6] = [
    ("vertex", LoadBalance::VertexBased),
    ("twc", LoadBalance::Twc),
    ("cm", LoadBalance::Cm),
    ("wm", LoadBalance::Wm),
    ("strict", LoadBalance::Strict),
    ("etwc", LoadBalance::Etwc),
];

/// Cost-model pruning table, keyed by the GPU attribution components
/// (`compute` / `divergence` / `mem_stall` / `launch` / `host`).
pub const GPU_PRUNE_RULES: &[PruneRule] = &[
    PruneRule {
        component: "launch",
        axis: "eb",
        reason: "edge blocking tiles DRAM traffic; launch overhead needs kernel fusion instead",
    },
    PruneRule {
        component: "compute",
        axis: "eb",
        reason: "edge blocking targets memory locality; compute-bound kernels gain nothing from tiling",
    },
    PruneRule {
        component: "mem_stall",
        axis: "fusion",
        reason: "fusion removes kernel launches; DRAM stalls persist across fused kernels",
    },
    PruneRule {
        component: "divergence",
        axis: "frontier",
        reason: "frontier representation changes allocation traffic, not warp divergence; rebalance with lb",
    },
];

impl ScheduleSpace for GpuScheduleSpace {
    fn target_name(&self) -> &'static str {
        "gpu"
    }

    fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
        let directions = if p.data_driven && !p.ordered {
            vec!["push", "pull", "hybrid"]
        } else {
            vec!["push"]
        };
        let mut dims = vec![
            Dimension::new("dir", directions),
            Dimension::new("lb", LB_LEVELS.iter().map(|(l, _)| *l).collect()),
            Dimension::new("fusion", vec!["off", "on"]),
            Dimension::new("frontier", vec!["fused", "unfused_bool", "unfused_bit"]),
            Dimension::new("eb", vec!["off", "8k", "128k"]),
        ];
        if p.ordered {
            dims.push(Dimension::new("async", vec!["off", "on"]));
        }
        dims.push(delta_dimension(p));
        dims
    }

    fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
        let dims = self.dimensions(p);
        let level = |i: usize| dims[i].levels[point[i]];
        let mut s = GpuSchedule::new()
            .with_direction(match level(0) {
                "pull" => SchedDirection::Pull,
                "hybrid" => SchedDirection::Hybrid,
                _ => SchedDirection::Push,
            })
            .with_load_balance(LB_LEVELS[point[1]].1)
            .with_kernel_fusion(level(2) == "on")
            .with_frontier_creation(match level(3) {
                "unfused_bool" => FrontierCreation::UnfusedBoolmap,
                "unfused_bit" => FrontierCreation::UnfusedBitmap,
                _ => FrontierCreation::Fused,
            });
        match level(4) {
            "8k" => s = s.with_edge_blocking(1 << 13),
            "128k" => s = s.with_edge_blocking(1 << 17),
            _ => {}
        }
        if p.ordered {
            // Async implies fusion, so async=on with fusion=off is an
            // alias of the fused point — skip it instead of re-measuring.
            if level(5) == "on" {
                if level(2) == "off" {
                    return None;
                }
                s = s.with_async_execution(true);
            }
            s = s.with_delta(delta_value(point[6]));
        }
        Some(ScheduleRef::simple(s))
    }

    fn prune_rules(&self) -> &'static [PruneRule] {
        GPU_PRUNE_RULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        let s = GpuSchedule::new();
        assert_eq!(s.direction(), SchedDirection::Push);
        assert_eq!(s.load_balance(), LoadBalance::VertexBased);
        assert_eq!(s.frontier_creation(), FrontierCreation::Fused);
        assert!(!s.kernel_fusion());
    }

    #[test]
    fn parallelization_derives_from_load_balance() {
        assert_eq!(
            GpuSchedule::new()
                .with_load_balance(LoadBalance::Strict)
                .parallelization(),
            Parallelization::EdgeBased
        );
        assert_eq!(
            GpuSchedule::new()
                .with_load_balance(LoadBalance::Twc)
                .parallelization(),
            Parallelization::EdgeAwareVertexBased
        );
    }

    #[test]
    fn builder_options() {
        let s = GpuSchedule::new()
            .with_kernel_fusion(true)
            .with_edge_blocking(4096)
            .with_deduplication(true)
            .with_delta(16);
        assert!(s.kernel_fusion());
        assert_eq!(s.edge_blocking(), Some(4096));
        assert!(s.deduplication());
        assert_eq!(s.delta(), 16);
    }

    #[test]
    fn space_enumerates_at_least_twenty_distinct_candidates() {
        use ugc_schedule::space::{point_label, PointIter};
        let p = SpaceParams {
            ordered: false,
            data_driven: true,
            num_vertices: 1 << 12,
        };
        let dims = GpuScheduleSpace.dimensions(&p);
        let mut labels = std::collections::HashSet::new();
        for pt in PointIter::new(&dims) {
            if GpuScheduleSpace.materialize(&p, &pt).is_some() {
                labels.insert(point_label(&dims, &pt));
            }
        }
        assert!(labels.len() >= 20, "only {} candidates", labels.len());
    }

    #[test]
    fn async_without_fusion_is_an_alias() {
        let p = SpaceParams {
            ordered: true,
            data_driven: false,
            num_vertices: 1 << 12,
        };
        let dims = GpuScheduleSpace.dimensions(&p);
        assert_eq!(dims.len(), 7);
        // fusion=off (idx 2 = 0), async=on (idx 5 = 1) is skipped…
        assert!(GpuScheduleSpace
            .materialize(&p, &[0, 0, 0, 0, 0, 1, 0])
            .is_none());
        // …while fusion=on, async=on materializes with both enabled.
        let s = GpuScheduleSpace
            .materialize(&p, &[0, 1, 1, 0, 0, 1, 3])
            .unwrap();
        let g = s
            .representative()
            .as_any()
            .downcast_ref::<GpuSchedule>()
            .unwrap()
            .clone();
        assert!(g.async_execution() && g.kernel_fusion());
        assert_eq!(g.delta(), 16);
        assert_eq!(g.load_balance(), LoadBalance::Twc);
    }
}
