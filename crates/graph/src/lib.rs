#![warn(missing_docs)]

//! Graph data structures, loaders and synthetic generators for the UGC
//! reproduction.
//!
//! This crate is the substrate every other UGC crate builds on. It provides:
//!
//! * [`Csr`] — compressed sparse row adjacency, the canonical in-memory
//!   format consumed by all backends,
//! * [`Graph`] — a directed graph with lazily materialized transpose
//!   (in-edges), optionally weighted,
//! * [`GraphBuilder`] — incremental construction with deduplication and
//!   symmetrization,
//! * [`generators`] — deterministic synthetic generators (R-MAT power-law
//!   graphs, road-network-like grids, Erdős–Rényi, and small fixtures),
//! * [`datasets`] — scaled-down stand-ins for the ten input graphs of the
//!   paper's Table VIII,
//! * [`io`] — plain-text edge-list loading and saving,
//! * [`stats`] — degree statistics used by scheduling heuristics,
//! * [`prng`] — in-tree deterministic PRNG (splitmix64-seeded xoshiro256++)
//!   so the whole workspace builds offline with zero external crates.
//!
//! # Example
//!
//! ```
//! use ugc_graph::{GraphBuilder, Graph};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g: Graph = b.into_graph();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.out_degree(1), 1);
//! assert_eq!(g.out_neighbors(0), &[1]);
//! ```

pub mod builder;
pub mod coo;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod prng;
pub mod stats;

pub use builder::GraphBuilder;
pub use coo::EdgeList;
pub use csr::{Csr, Graph};
pub use datasets::{Dataset, Scale};

/// Identifier of a vertex. Vertices of an `n`-vertex graph are `0..n`.
pub type VertexId = u32;

/// Edge weight type used by weighted algorithms (SSSP with ∆-stepping).
pub type Weight = i32;
