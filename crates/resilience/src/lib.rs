#![warn(missing_docs)]

//! Supervised-execution support: fault injection, watchdog budgets, and
//! the workspace-wide error taxonomy.
//!
//! The paper's premise is that one GraphIR program must run correctly on
//! a zoo of unreliable, wildly different architectures — and the Swarm
//! model already treats speculative task *aborts* as first-class events.
//! This crate extends that stance to the whole framework: faults are
//! simulable, recoverable inputs, not panics.
//!
//! Three pieces, used together by the supervisor in `ugc::Compiler`:
//!
//! * [`ErrorClass`] — the four-way taxonomy every failure is classified
//!   into. `Transient` failures are retried, `Budget` and `Invariant`
//!   failures trigger fallback, `Permanent` failures are returned as-is.
//! * [`fault`] — a deterministic seeded injector configured by
//!   `UGC_FAULTS=<domain>:<kind>:p=<prob>:seed=<n>[,...]` (or
//!   programmatically via [`fault::install`]) and consulted by the three
//!   timing simulators. Fatal faults are transported as typed panic
//!   payloads and converted back into classed errors at the GraphVM
//!   boundary; degraded faults are absorbed by the simulator as extra
//!   cycles.
//! * [`budget`] — cooperative wall-clock and simulated-cycle watchdogs.
//!   The supervisor arms them with a scope guard; the interpreter and the
//!   simulators check them at loop/charge granularity.
//!
//! Telemetry: the injector and watchdogs publish
//! `resilience.faults_injected`, `resilience.retries`,
//! `resilience.fallbacks`, and `resilience.budget_kills` through
//! [`ugc_telemetry`]. Counters are registered lazily on the first actual
//! event, so a fault-free run's telemetry snapshot is byte-identical to a
//! build without this crate in the loop.

use std::sync::OnceLock;

use ugc_telemetry::Counter;

pub mod breaker;
pub mod budget;
pub mod fault;

/// The workspace's standard 64-bit mixer (Steele et al.'s splitmix64
/// finalizer). Shared by the fault injector's draw streams and the
/// backoff jitter so both stay deterministic and seed-separable.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The workspace error taxonomy (tentpole item 4).
///
/// Classes drive supervisor policy, not just reporting:
///
/// * `Transient` — retrying the same backend may succeed (injected
///   kernel-launch failures, task-abort storms).
/// * `Permanent` — the input or program is wrong; no backend will do
///   better (parse errors, unbound externs, invalid configuration).
/// * `Budget` — a watchdog killed the attempt (runaway schedule); retry
///   is pointless but a cheaper backend or the reference may fit.
/// * `Invariant` — an internal invariant broke (a caught panic); the
///   backend is suspect, fall back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// May succeed on retry.
    Transient,
    /// Will fail the same way everywhere; do not retry.
    Permanent,
    /// Killed by a wall-clock or cycle watchdog.
    Budget,
    /// A broken internal invariant (caught panic).
    Invariant,
}

impl ErrorClass {
    /// Short lowercase label used in error messages and logs.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
            ErrorClass::Budget => "budget",
            ErrorClass::Invariant => "invariant",
        }
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The `resilience.*` counter set, registered lazily so fault-free runs
/// leave no trace in telemetry snapshots.
pub(crate) struct Counters {
    pub faults_injected: Counter,
    pub retries: Counter,
    pub fallbacks: Counter,
    pub budget_kills: Counter,
}

pub(crate) fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        faults_injected: Counter::new("resilience.faults_injected"),
        retries: Counter::new("resilience.retries"),
        fallbacks: Counter::new("resilience.fallbacks"),
        budget_kills: Counter::new("resilience.budget_kills"),
    })
}

/// Records one supervisor retry (`resilience.retries`).
pub fn count_retry() {
    counters().retries.incr();
}

/// Records one supervisor fallback (`resilience.fallbacks`).
pub fn count_fallback() {
    counters().fallbacks.incr();
}

/// Deterministic jittered exponential backoff for retry `attempt`
/// (0-based): an exponential base of 1ms, 2ms, 4ms capped at 8ms, plus
/// a splitmix64-derived jitter in `[0, base)` drawn from the
/// `(salt, attempt)` stream.
///
/// The jitter is *seeded*, not random: the same `(attempt, salt)` pair
/// always sleeps the same number of milliseconds, so reruns replay
/// exactly. Distinct salts desynchronize — coalesced serve lanes that
/// hit the same injected fault retry on different schedules instead of
/// stampeding the pool in lockstep, while the batch supervisor passes a
/// fixed salt and keeps its historical determinism.
pub fn backoff_ms(attempt: u32, salt: u64) -> u64 {
    let base = (1u64 << attempt.min(3)).min(8);
    let jitter = splitmix64(salt ^ u64::from(attempt).wrapping_mul(0xD134_2543_DE82_EF95)) % base;
    base + jitter
}

/// Installs (once, process-wide) a panic-hook wrapper that suppresses the
/// default "thread panicked" report for this crate's typed payloads
/// ([`fault::FaultPayload`], [`budget::BudgetPayload`]). Those panics are
/// transport to the nearest containment boundary, not crashes; every
/// other panic still reaches the previously installed hook untouched.
pub fn silence_supervised_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<fault::FaultPayload>().is_none()
                && p.downcast_ref::<budget::BudgetPayload>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Classifies a caught panic payload into `(class, message)`.
///
/// Typed payloads raised by this crate ([`fault::FaultPayload`],
/// [`budget::BudgetPayload`]) map to `Transient` and `Budget`; anything
/// else is a genuine broken invariant.
pub fn classify_panic(payload: &(dyn std::any::Any + Send)) -> (ErrorClass, String) {
    if let Some(f) = payload.downcast_ref::<fault::FaultPayload>() {
        return (ErrorClass::Transient, f.to_string());
    }
    if let Some(b) = payload.downcast_ref::<budget::BudgetPayload>() {
        return (ErrorClass::Budget, b.to_string());
    }
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    (ErrorClass::Invariant, format!("panic: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        // Pinned sequences: base 1/2/4/8 (capped) plus seeded jitter in
        // [0, base). A change here is a replay-compatibility break.
        let seq = |salt: u64| (0..6).map(|a| backoff_ms(a, salt)).collect::<Vec<_>>();
        assert_eq!(seq(0), [1, 2, 5, 10, 14, 11]);
        assert_eq!(seq(0x5EED), [1, 3, 5, 14, 11, 11]);
        assert_eq!(seq(42), [1, 3, 4, 15, 8, 8]);
        // Same stream replays; the bounds hold for every attempt.
        for salt in [0u64, 1, 0x5EED, u64::MAX] {
            for attempt in 0..32 {
                let base = (1u64 << attempt.min(3)).min(8);
                let ms = backoff_ms(attempt, salt);
                assert_eq!(ms, backoff_ms(attempt, salt), "replayable");
                assert!(ms >= base && ms < 2 * base, "jitter bounded by base");
            }
        }
    }

    #[test]
    fn backoff_salts_desynchronize_lanes() {
        // Two lanes retrying the same fault with different salts must not
        // share a schedule (the thundering-herd case jitter exists for).
        let a: Vec<u64> = (0..8).map(|n| backoff_ms(n, 1)).collect();
        let b: Vec<u64> = (0..8).map(|n| backoff_ms(n, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn classify_string_panics_as_invariant() {
        let (class, msg) = classify_panic(&"boom".to_string());
        assert_eq!(class, ErrorClass::Invariant);
        assert!(msg.contains("boom"));
    }

    #[test]
    fn class_labels_round_trip_display() {
        for c in [
            ErrorClass::Transient,
            ErrorClass::Permanent,
            ErrorClass::Budget,
            ErrorClass::Invariant,
        ] {
            assert_eq!(c.to_string(), c.label());
        }
    }
}
