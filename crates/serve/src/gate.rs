//! Admission control: a bounded queue feeding a fixed set of worker
//! threads, with opportunistic batch formation at the head.
//!
//! In-flight work is bounded by the worker count (one batch per worker);
//! waiting work is bounded by the queue capacity, beyond which
//! [`Gate::submit`] rejects with [`Rejected::Full`] and the connection
//! handler replies `err busy` — backpressure the client can see instead
//! of an unbounded pile-up. A closed (draining) gate rejects with
//! [`Rejected::Draining`] instead, which the handler maps to
//! `err draining`.
//!
//! When a worker pops a batchable head query (BFS/SSSP), it lingers for
//! the *batch window*, collecting queries that
//! [coalesce](crate::protocol::QuerySpec::coalesces_with) with it (same
//! traversal, same cached graph) up to the batch cap. The window is the
//! latency price of coalescing and is deliberately small; a window of
//! zero degrades to strict one-query-per-traversal service. The linger
//! additionally respects the *tightest deadline* across the batch: a
//! lane due in 3ms will not sit out a 5ms window waiting for joiners.
//!
//! # Close vs. in-flight `next_batch` (drain semantics)
//!
//! [`Gate::close`] and [`Gate::next_batch`] serialize on the gate mutex,
//! which makes the race semantics exact:
//!
//! * Every `submit` that returned `Ok` before `close` acquired the lock
//!   left its entry in the queue; `close` only flips `open` — it never
//!   removes entries. Workers keep popping until the queue is empty and
//!   only then observe `open == false` and return `None`.
//! * A worker lingering in a batch window when `close` lands is woken by
//!   the `notify_all`, takes one final coalescing pass, and dispatches
//!   what it has.
//!
//! Net effect, asserted by `drain_executes_every_admitted_query` below
//! and the regression test in `tests/serve.rs`: **an admitted query is
//! always handed to a worker — drain may answer it `err draining`, but
//! the gate itself never silently drops it.** The only queries that see
//! `Rejected::Draining` are those submitted *after* close won the lock,
//! and those are handed back to the caller, never enqueued.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::protocol::QuerySpec;

/// One admitted query waiting for (or riding) a traversal.
pub struct Pending {
    /// What to run.
    pub spec: QuerySpec,
    /// Where the response line goes (the connection handler blocks on the
    /// other end).
    pub reply: Sender<String>,
    /// Admission time, for the end-to-end latency histogram.
    pub enqueued: Instant,
    /// Absolute shed deadline (from `deadline_ms=` or the server
    /// default), or `None` for an infinitely patient request.
    pub deadline: Option<Instant>,
}

impl Pending {
    /// True once the deadline (if any) has passed.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Why [`Gate::submit`] handed a query back.
pub enum Rejected {
    /// The waiting queue is at capacity; reply `err busy`.
    Full(Pending),
    /// The gate is closed (daemon draining); reply `err draining`.
    Draining(Pending),
}

impl Rejected {
    /// The rejected query, whatever the reason.
    pub fn into_pending(self) -> Pending {
        match self {
            Rejected::Full(p) | Rejected::Draining(p) => p,
        }
    }
}

struct GateState {
    queue: VecDeque<Pending>,
    open: bool,
}

/// The admission gate shared by connection handlers (producers) and
/// workers (consumers).
pub struct Gate {
    state: Mutex<GateState>,
    ready: Condvar,
    queue_cap: usize,
    batch_max: usize,
    batch_window: Duration,
}

impl Gate {
    /// A gate holding at most `queue_cap` waiting queries and forming
    /// batches of at most `batch_max` over a `batch_window` linger.
    pub fn new(queue_cap: usize, batch_max: usize, batch_window: Duration) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                queue: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            queue_cap,
            batch_max,
            batch_window,
        }
    }

    /// Admits a query, returning the queue depth after admission.
    ///
    /// # Errors
    ///
    /// Hands the query back as [`Rejected::Full`] (queue at capacity,
    /// reply `err busy`) or [`Rejected::Draining`] (gate closed, reply
    /// `err draining`).
    pub fn submit(&self, p: Pending) -> Result<usize, Rejected> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.open {
            return Err(Rejected::Draining(p));
        }
        if st.queue.len() >= self.queue_cap {
            return Err(Rejected::Full(p));
        }
        st.queue.push_back(p);
        let depth = st.queue.len();
        // All waiters: an idle worker needs the new head, and a worker
        // lingering in a batch window needs to re-scan for a joiner.
        self.ready.notify_all();
        Ok(depth)
    }

    /// Stops admission; workers drain what is already queued, then their
    /// [`Gate::next_batch`] calls return `None`. Idempotent. See the
    /// module docs for the exact close/next_batch race semantics.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.open = false;
        self.ready.notify_all();
    }

    /// Whether the gate still admits work.
    pub fn is_open(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .open
    }

    /// Queries currently waiting (excludes in-flight batches).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Blocks for the next unit of work: one query, plus every queued
    /// query that coalesces with it (collected over the batch window,
    /// clamped to the tightest member deadline). Returns `None` once the
    /// gate is closed *and* drained.
    pub fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let head = loop {
            if let Some(head) = st.queue.pop_front() {
                break head;
            }
            if !st.open {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        let mut batch = vec![head];
        if batch[0].spec.batchable() && self.batch_max > 1 {
            let window_end = Instant::now() + self.batch_window;
            loop {
                let mut i = 0;
                while i < st.queue.len() && batch.len() < self.batch_max {
                    if batch[0].spec.coalesces_with(&st.queue[i].spec) {
                        batch.push(st.queue.remove(i).expect("index in range"));
                    } else {
                        i += 1;
                    }
                }
                if batch.len() >= self.batch_max || !st.open {
                    break;
                }
                // The linger ends at the window — or earlier, at the
                // tightest deadline any collected lane carries. A lane
                // about to expire must dispatch now, not wait out the
                // window and get shed for latency the gate added.
                let deadline = batch
                    .iter()
                    .filter_map(|p| p.deadline)
                    .min()
                    .map_or(window_end, |d| d.min(window_end));
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timed_out) = self
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timed_out.timed_out() {
                    // One final drain pass happens at the top of the loop;
                    // the deadline check then exits.
                }
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use ugc::Algorithm;
    use ugc_graph::{Dataset, Scale};

    fn pending(algo: Algorithm, source: u32) -> Pending {
        // The receiver is dropped: these unit tests only exercise queueing.
        let (tx, _rx) = channel();
        Pending {
            spec: QuerySpec {
                algo,
                dataset: Dataset::RoadNetCa,
                scale: Scale::Tiny,
                source,
                k: None,
                max_iters: None,
                deadline_ms: None,
            },
            reply: tx,
            enqueued: Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn rejects_when_full_and_when_closed() {
        let gate = Gate::new(2, 4, Duration::ZERO);
        assert!(gate.submit(pending(Algorithm::Bfs, 0)).is_ok());
        assert!(gate.submit(pending(Algorithm::Bfs, 1)).is_ok());
        assert!(matches!(
            gate.submit(pending(Algorithm::Bfs, 2)),
            Err(Rejected::Full(_))
        ));
        gate.close();
        assert!(matches!(
            gate.submit(pending(Algorithm::Bfs, 3)),
            Err(Rejected::Draining(_))
        ));
        assert_eq!(gate.depth(), 2);
    }

    #[test]
    fn coalesces_compatible_queue_entries() {
        let gate = Gate::new(16, 8, Duration::ZERO);
        gate.submit(pending(Algorithm::Bfs, 0)).ok().unwrap();
        gate.submit(pending(Algorithm::Cc, 0)).ok().unwrap();
        gate.submit(pending(Algorithm::Bfs, 5)).ok().unwrap();
        let batch = gate.next_batch().unwrap();
        let sources: Vec<u32> = batch.iter().map(|p| p.spec.source).collect();
        assert_eq!(sources, vec![0, 5], "bfs pair coalesces around the cc");
        let batch = gate.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].spec.algo, Algorithm::Cc);
    }

    #[test]
    fn window_waits_for_a_late_joiner() {
        let gate = Arc::new(Gate::new(16, 8, Duration::from_millis(200)));
        let g = gate.clone();
        let joiner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            g.submit(pending(Algorithm::Bfs, 7)).ok().unwrap();
        });
        gate.submit(pending(Algorithm::Bfs, 0)).ok().unwrap();
        let batch = gate.next_batch().unwrap();
        joiner.join().unwrap();
        assert_eq!(batch.len(), 2, "late joiner rode the window");
    }

    #[test]
    fn tight_deadline_clamps_the_batch_window() {
        // A 10-second window would sink the test if the deadline clamp
        // regressed; the 5ms lane deadline must cut the linger short.
        let gate = Gate::new(16, 8, Duration::from_secs(10));
        let mut p = pending(Algorithm::Bfs, 0);
        p.deadline = Some(Instant::now() + Duration::from_millis(5));
        gate.submit(p).ok().unwrap();
        let start = Instant::now();
        let batch = gate.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must clamp the linger, waited {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn drains_after_close_then_ends() {
        let gate = Gate::new(16, 8, Duration::from_millis(50));
        gate.submit(pending(Algorithm::PageRank, 0)).ok().unwrap();
        gate.close();
        assert_eq!(gate.next_batch().unwrap().len(), 1);
        assert!(gate.next_batch().is_none());
    }

    #[test]
    fn drain_executes_every_admitted_query() {
        // The close/next_batch race contract: whatever was admitted
        // before close is handed to a worker afterwards — nothing is
        // silently dropped, regardless of interleaving.
        let gate = Arc::new(Gate::new(64, 8, Duration::from_millis(5)));
        let admitted: usize = (0..32)
            .map(|s| {
                usize::from(
                    gate.submit(pending(
                        if s % 2 == 0 {
                            Algorithm::Bfs
                        } else {
                            Algorithm::Cc
                        },
                        s,
                    ))
                    .is_ok(),
                )
            })
            .sum();
        assert_eq!(admitted, 32);
        // Close concurrently with workers mid-drain.
        let g = gate.clone();
        let closer = std::thread::spawn(move || g.close());
        let mut handed_out = 0usize;
        while let Some(batch) = gate.next_batch() {
            handed_out += batch.len();
        }
        closer.join().unwrap();
        assert_eq!(handed_out, admitted, "close must never drop queue entries");
        assert!(gate.next_batch().is_none(), "close is terminal");
    }

    #[test]
    fn batch_cap_is_respected() {
        let gate = Gate::new(64, 3, Duration::ZERO);
        for s in 0..5 {
            gate.submit(pending(Algorithm::Sssp, s)).ok().unwrap();
        }
        assert_eq!(gate.next_batch().unwrap().len(), 3);
        assert_eq!(gate.next_batch().unwrap().len(), 2);
    }
}
