//! The bytecode evaluator with pluggable memory observation.
//!
//! One evaluator serves every backend: the CPU backend runs it on real
//! threads with [`NullMemory`] (no observation cost beyond a virtual call),
//! while the GPU/Swarm/HammerBlade simulators pass models that record each
//! property access with its index — which is all they need to charge
//! coalescing, conflicts, bank queueing, and DRAM traffic.

use ugc_graph::Graph;
use ugc_graphir::types::ReduceOp;

use crate::bytecode::{Instr, UdfId, UdfSet};
use crate::properties::{GlobalTable, PropId, PropertyStorage};
use crate::value::Value;

/// Observes memory operations performed while evaluating a UDF.
///
/// Indices are element indices into the named property vector; models
/// translate them to addresses/cache lines as their architecture dictates.
pub trait MemoryModel {
    /// A plain load of `prop[idx]`.
    fn load(&mut self, prop: PropId, idx: u32);
    /// A plain store to `prop[idx]`.
    fn store(&mut self, prop: PropId, idx: u32);
    /// An atomic read-modify-write on `prop[idx]`.
    fn atomic(&mut self, prop: PropId, idx: u32);
    /// `n` scalar (non-memory) instructions executed.
    fn compute(&mut self, n: u32);
}

/// A no-cost model for real execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMemory;

impl MemoryModel for NullMemory {
    fn load(&mut self, _: PropId, _: u32) {}
    fn store(&mut self, _: PropId, _: u32) {}
    fn atomic(&mut self, _: PropId, _: u32) {}
    fn compute(&mut self, _: u32) {}
}

/// Receives the side effects a UDF emits beyond property writes.
pub trait UdfOutput {
    /// The UDF enqueued `v` onto the operator's output frontier.
    fn enqueue(&mut self, v: u32);
    /// The UDF updated `queue`'s priority of vertex `v` to `new_prio`
    /// (only called when the tracked property actually changed).
    fn priority_changed(&mut self, queue: usize, v: u32, new_prio: i64);
}

/// A no-op sink for UDFs without frontier/priority effects.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullOutput;

impl UdfOutput for NullOutput {
    fn enqueue(&mut self, _: u32) {}
    fn priority_changed(&mut self, _: usize, _: u32, _: i64) {}
}

/// Per-edge evaluation context.
#[derive(Debug, Clone, Copy)]
pub struct EdgeCtx {
    /// Weight of the edge currently being applied (1 when unweighted).
    pub weight: i64,
}

impl Default for EdgeCtx {
    fn default() -> Self {
        EdgeCtx { weight: 1 }
    }
}

/// Executes compiled UDFs against shared program state.
pub struct Evaluator<'a> {
    /// Compiled UDFs.
    pub udfs: &'a UdfSet,
    /// Property vectors.
    pub props: &'a PropertyStorage,
    /// Scalar globals.
    pub globals: &'a GlobalTable,
    /// The graph (for degree intrinsics).
    pub graph: &'a Graph,
    /// When false, `ReduceProp`/`UpdatePrio` marked atomic still execute
    /// with relaxed single-threaded semantics (simulators model the cost,
    /// not the interleaving).
    pub really_atomic: bool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with real atomic semantics.
    pub fn new(
        udfs: &'a UdfSet,
        props: &'a PropertyStorage,
        globals: &'a GlobalTable,
        graph: &'a Graph,
    ) -> Self {
        Evaluator {
            udfs,
            props,
            globals,
            graph,
            really_atomic: true,
        }
    }

    /// Runs UDF `id` with `args`, reporting effects to `out` and memory
    /// traffic to `mem`. Returns the named return value, if the UDF has
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the UDF's parameter count or a
    /// register holds a value of the wrong kind (compiler bugs).
    pub fn call(
        &self,
        id: UdfId,
        args: &[Value],
        ctx: EdgeCtx,
        out: &mut dyn UdfOutput,
        mem: &mut dyn MemoryModel,
    ) -> Option<Value> {
        let udf = self.udfs.get(id);
        assert_eq!(
            args.len(),
            udf.num_params,
            "UDF `{}` expects {} args",
            udf.name,
            udf.num_params
        );
        let mut regs = vec![Value::Int(0); udf.num_regs];
        regs[..args.len()].copy_from_slice(args);
        let mut compute_steps: u32 = 0;
        let mut pc = 0usize;
        loop {
            debug_assert!(pc < udf.instrs.len(), "fell off end of `{}`", udf.name);
            match &udf.instrs[pc] {
                Instr::Const { dst, v } => {
                    regs[*dst as usize] = *v;
                    compute_steps += 1;
                }
                Instr::Mov { dst, src } => {
                    regs[*dst as usize] = regs[*src as usize];
                    compute_steps += 1;
                }
                Instr::Bin { op, dst, a, b } => {
                    regs[*dst as usize] = Value::bin(*op, regs[*a as usize], regs[*b as usize]);
                    compute_steps += 1;
                }
                Instr::Un { op, dst, a } => {
                    regs[*dst as usize] = Value::un(*op, regs[*a as usize]);
                    compute_steps += 1;
                }
                Instr::Abs { dst, a } => {
                    regs[*dst as usize] = Value::Float(regs[*a as usize].as_float().abs());
                    compute_steps += 1;
                }
                Instr::LoadProp { dst, prop, idx } => {
                    let i = regs[*idx as usize].as_int() as u32;
                    mem.load(*prop, i);
                    regs[*dst as usize] = self.props.read(*prop, i);
                }
                Instr::StoreProp { prop, idx, val } => {
                    let i = regs[*idx as usize].as_int() as u32;
                    mem.store(*prop, i);
                    self.props.write(*prop, i, regs[*val as usize]);
                }
                Instr::Cas {
                    dst,
                    prop,
                    idx,
                    expected,
                    new,
                    atomic,
                } => {
                    let i = regs[*idx as usize].as_int() as u32;
                    let ok =
                        self.props
                            .cas(*prop, i, regs[*expected as usize], regs[*new as usize]);
                    // A failed CAS observes but does not modify the line.
                    match (ok, *atomic) {
                        (true, true) => mem.atomic(*prop, i),
                        (true, false) => {
                            mem.load(*prop, i);
                            mem.store(*prop, i);
                        }
                        (false, _) => mem.load(*prop, i),
                    }
                    regs[*dst as usize] = Value::Bool(ok);
                }
                Instr::ReduceProp {
                    prop,
                    idx,
                    op,
                    val,
                    atomic,
                    changed,
                } => {
                    let i = regs[*idx as usize].as_int() as u32;
                    let (ch, _) = if *atomic && self.really_atomic {
                        self.props.reduce(*prop, i, *op, regs[*val as usize])
                    } else {
                        self.props
                            .reduce_relaxed(*prop, i, *op, regs[*val as usize])
                    };
                    // An ineffective reduction observes but does not modify.
                    match (ch, *atomic) {
                        (true, true) => mem.atomic(*prop, i),
                        (true, false) => {
                            mem.load(*prop, i);
                            mem.store(*prop, i);
                        }
                        (false, _) => mem.load(*prop, i),
                    }
                    if let Some(c) = changed {
                        regs[*c as usize] = Value::Bool(ch);
                    }
                }
                Instr::LoadGlobal { dst, id } => {
                    regs[*dst as usize] = self.globals.read(*id);
                    compute_steps += 1;
                }
                Instr::StoreGlobal { id, val } => {
                    self.globals.write(*id, regs[*val as usize]);
                    compute_steps += 1;
                }
                Instr::ReduceGlobal {
                    id,
                    op,
                    val,
                    changed,
                } => {
                    let ch = self.globals.reduce(*id, *op, regs[*val as usize]);
                    if let Some(c) = changed {
                        regs[*c as usize] = Value::Bool(ch);
                    }
                    compute_steps += 1;
                }
                Instr::Enqueue { vertex } => {
                    out.enqueue(regs[*vertex as usize].as_int() as u32);
                    compute_steps += 1;
                }
                Instr::UpdatePrio {
                    queue,
                    vertex,
                    op,
                    val,
                    atomic,
                } => {
                    let v = regs[*vertex as usize].as_int() as u32;
                    let newv = regs[*val as usize];
                    let prop = self.udfs.queue_props[*queue];
                    let (ch, _) = if *atomic && self.really_atomic {
                        self.props.reduce(prop, v, *op, newv)
                    } else {
                        self.props.reduce_relaxed(prop, v, *op, newv)
                    };
                    match (ch, *atomic) {
                        (true, true) => mem.atomic(prop, v),
                        (true, false) => {
                            mem.load(prop, v);
                            mem.store(prop, v);
                        }
                        (false, _) => mem.load(prop, v),
                    }
                    if ch {
                        let newp = match op {
                            ReduceOp::Sum => self.props.read(prop, v).as_int(),
                            _ => newv.as_int(),
                        };
                        out.priority_changed(*queue, v, newp);
                    }
                }
                Instr::OutDegree { dst, v } => {
                    let vid = regs[*v as usize].as_int() as u32;
                    regs[*dst as usize] = Value::Int(self.graph.out_degree(vid) as i64);
                    compute_steps += 1;
                }
                Instr::InDegree { dst, v } => {
                    let vid = regs[*v as usize].as_int() as u32;
                    regs[*dst as usize] = Value::Int(self.graph.in_degree(vid) as i64);
                    compute_steps += 1;
                }
                Instr::EdgeWeight { dst } => {
                    regs[*dst as usize] = Value::Int(ctx.weight);
                    compute_steps += 1;
                }
                Instr::Intersect { dst, a, b } => {
                    let va = regs[*a as usize].as_int() as u32;
                    let vb = regs[*b as usize].as_int() as u32;
                    regs[*dst as usize] = Value::Int(self.graph.intersect_count(va, vb) as i64);
                    // A sorted merge touches both adjacency lists once.
                    let work = self.graph.out_degree(va) + self.graph.out_degree(vb);
                    compute_steps += (work as u32).max(1);
                }
                Instr::Call { dst, udf, args } => {
                    let vals: Vec<Value> = args.iter().map(|r| regs[*r as usize]).collect();
                    let ret = self.call(*udf, &vals, ctx, out, mem);
                    if let (Some(d), Some(r)) = (dst, ret) {
                        regs[*d as usize] = r;
                    }
                }
                Instr::Jump { target } => {
                    compute_steps += 1;
                    pc = *target;
                    continue;
                }
                Instr::JumpIfNot { cond, target } => {
                    compute_steps += 1;
                    if !regs[*cond as usize].as_bool() {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Ret => break,
            }
            pc += 1;
        }
        mem.compute(compute_steps);
        udf.ret_reg.map(|r| regs[r as usize])
    }
}

/// A [`UdfOutput`] that buffers enqueued vertices (the common backend
/// building block for constructing output frontiers).
#[derive(Debug, Default, Clone)]
pub struct BufferedOutput {
    /// Vertices enqueued so far.
    pub enqueued: Vec<u32>,
    /// `(queue, vertex, new_priority)` updates so far.
    pub priority_updates: Vec<(usize, u32, i64)>,
}

impl UdfOutput for BufferedOutput {
    fn enqueue(&mut self, v: u32) {
        self.enqueued.push(v);
    }

    fn priority_changed(&mut self, queue: usize, v: u32, new_prio: i64) {
        self.priority_updates.push((queue, v, new_prio));
    }
}

/// A [`MemoryModel`] that simply counts operations — useful in tests and as
/// a base for simulator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingMemory {
    /// Plain loads observed.
    pub loads: u64,
    /// Plain stores observed.
    pub stores: u64,
    /// Atomics observed.
    pub atomics: u64,
    /// Scalar instructions observed.
    pub computes: u64,
}

impl MemoryModel for CountingMemory {
    fn load(&mut self, _: PropId, _: u32) {
        self.loads += 1;
    }
    fn store(&mut self, _: PropId, _: u32) {
        self.stores += 1;
    }
    fn atomic(&mut self, _: PropId, _: u32) {
        self.atomics += 1;
    }
    fn compute(&mut self, n: u32) {
        self.computes += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{binding_of, compile_udfs};
    use ugc_graph::Graph;
    use ugc_graphir::ir::{Expr, Function, LValue, Param, Program, Stmt, StmtKind};
    use ugc_graphir::keys;
    use ugc_graphir::types::{BinOp, Type};

    fn setup(prog: &Program, n: usize) -> (UdfSet, PropertyStorage, GlobalTable, Graph) {
        let binding = binding_of(prog);
        let udfs = compile_udfs(prog, &binding).unwrap();
        let mut props = PropertyStorage::new(n);
        for p in &prog.properties {
            // Initializers in tests are literal.
            let init = match &p.init.kind {
                ugc_graphir::ir::ExprKind::Int(v) => Value::Int(*v),
                ugc_graphir::ir::ExprKind::Float(v) => Value::Float(*v),
                ugc_graphir::ir::ExprKind::Bool(v) => Value::Bool(*v),
                _ => Value::zero_of(p.ty),
            };
            props.add(p.name.clone(), p.ty, init);
        }
        let mut globals = GlobalTable::new();
        for g in &prog.globals {
            globals.add(g.name.clone(), g.ty, Value::zero_of(g.ty));
        }
        let graph = Graph::from_edges(n, &[(0, 1), (0, 2), (1, 2)]);
        (udfs, props, globals, graph)
    }

    fn bfs_program() -> Program {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "updateEdge",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut cas = Expr::cas("parent", Expr::var("dst"), Expr::int(-1), Expr::var("src"));
        cas.meta.set(keys::IS_ATOMIC, true);
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "enqueue".into(),
            ty: Type::Bool,
            init: Some(cas),
        }));
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("enqueue"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        p.add_function(f);
        p
    }

    #[test]
    fn bfs_update_edge_claims_once() {
        let prog = bfs_program();
        let (udfs, props, globals, graph) = setup(&prog, 4);
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("updateEdge").unwrap();
        let mut out = BufferedOutput::default();
        let mut mem = CountingMemory::default();
        ev.call(
            id,
            &[Value::Int(0), Value::Int(2)],
            EdgeCtx::default(),
            &mut out,
            &mut mem,
        );
        ev.call(
            id,
            &[Value::Int(1), Value::Int(2)],
            EdgeCtx::default(),
            &mut out,
            &mut mem,
        );
        assert_eq!(out.enqueued, vec![2]); // second CAS fails
        assert_eq!(props.read(props.id_of("parent").unwrap(), 2), Value::Int(0));
        // Only the successful claim counts as an atomic write; the failed
        // CAS is an observation.
        assert_eq!(mem.atomics, 1);
        assert_eq!(mem.loads, 1);
    }

    #[test]
    fn filter_returns_named_value() {
        let mut prog = Program::new();
        prog.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "toFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        f.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::Var("output".into()),
            value: Expr::bin(
                BinOp::Eq,
                Expr::prop("parent", Expr::var("v")),
                Expr::int(-1),
            ),
        }));
        prog.add_function(f);
        let (udfs, props, globals, graph) = setup(&prog, 3);
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("toFilter").unwrap();
        let r = ev.call(
            id,
            &[Value::Int(1)],
            EdgeCtx::default(),
            &mut NullOutput,
            &mut NullMemory,
        );
        assert_eq!(r, Some(Value::Bool(true)));
        props.write(props.id_of("parent").unwrap(), 1, Value::Int(0));
        let r = ev.call(
            id,
            &[Value::Int(1)],
            EdgeCtx::default(),
            &mut NullOutput,
            &mut NullMemory,
        );
        assert_eq!(r, Some(Value::Bool(false)));
    }

    #[test]
    fn reduce_with_tracking_enqueues_on_change() {
        // CC-style: IDs[dst] min= IDs[src]; if changed enqueue dst.
        let mut prog = Program::new();
        prog.add_property("ids", Type::Int, Expr::int(0));
        let mut f = Function::new(
            "upd",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut red = Stmt::new(StmtKind::Reduce {
            target: LValue::prop("ids", Expr::var("dst")),
            op: ReduceOp::Min,
            value: Expr::prop("ids", Expr::var("src")),
            tracking: Some("changed".into()),
        });
        red.meta.set(keys::IS_ATOMIC, true);
        f.body.push(red);
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("changed"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        prog.add_function(f);
        let (udfs, props, globals, graph) = setup(&prog, 4);
        let ids = props.id_of("ids").unwrap();
        for v in 0..4 {
            props.write(ids, v, Value::Int(v as i64));
        }
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("upd").unwrap();
        let mut out = BufferedOutput::default();
        ev.call(
            id,
            &[Value::Int(0), Value::Int(3)],
            EdgeCtx::default(),
            &mut out,
            &mut NullMemory,
        );
        ev.call(
            id,
            &[Value::Int(0), Value::Int(3)],
            EdgeCtx::default(),
            &mut out,
            &mut NullMemory,
        );
        assert_eq!(out.enqueued, vec![3]); // second min does not improve
        assert_eq!(props.read(ids, 3), Value::Int(0));
    }

    #[test]
    fn update_priority_notifies_only_on_improvement() {
        let mut prog = Program::new();
        prog.add_property("dist", Type::Int, Expr::int(1_000_000));
        prog.add_queue("pq", "dist", Expr::int(0));
        let mut f = Function::new(
            "relax",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
                Param::new("weight", Type::Int),
            ],
            None,
        );
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "nd".into(),
            ty: Type::Int,
            init: Some(Expr::bin(
                BinOp::Add,
                Expr::prop("dist", Expr::var("src")),
                Expr::var("weight"),
            )),
        }));
        let mut up = Stmt::new(StmtKind::UpdatePriority {
            queue: "pq".into(),
            vertex: Expr::var("dst"),
            op: ReduceOp::Min,
            value: Expr::var("nd"),
        });
        up.meta.set(keys::IS_ATOMIC, true);
        f.body.push(up);
        prog.add_function(f);
        let (udfs, props, globals, graph) = setup(&prog, 3);
        let dist = props.id_of("dist").unwrap();
        props.write(dist, 0, Value::Int(0));
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("relax").unwrap();
        let mut out = BufferedOutput::default();
        ev.call(
            id,
            &[Value::Int(0), Value::Int(1), Value::Int(5)],
            EdgeCtx { weight: 5 },
            &mut out,
            &mut NullMemory,
        );
        ev.call(
            id,
            &[Value::Int(0), Value::Int(1), Value::Int(9)],
            EdgeCtx { weight: 9 },
            &mut out,
            &mut NullMemory,
        );
        assert_eq!(out.priority_updates, vec![(0, 1, 5)]);
        assert_eq!(props.read(dist, 1), Value::Int(5));
    }

    #[test]
    fn degree_intrinsics_read_graph() {
        let mut prog = Program::new();
        prog.add_property("deg", Type::Int, Expr::int(0));
        let mut f = Function::new("record", vec![Param::new("v", Type::Vertex)], None);
        f.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::prop("deg", Expr::var("v")),
            value: Expr::intrinsic(
                ugc_graphir::types::Intrinsic::OutDegree,
                vec![Expr::var("v")],
            ),
        }));
        prog.add_function(f);
        let (udfs, props, globals, graph) = setup(&prog, 4);
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("record").unwrap();
        ev.call(
            id,
            &[Value::Int(0)],
            EdgeCtx::default(),
            &mut NullOutput,
            &mut NullMemory,
        );
        assert_eq!(props.read(props.id_of("deg").unwrap(), 0), Value::Int(2));
    }

    #[test]
    fn memory_model_counts_accesses() {
        let prog = bfs_program();
        let (udfs, props, globals, graph) = setup(&prog, 4);
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        let id = udfs.id_of("updateEdge").unwrap();
        let mut mem = CountingMemory::default();
        ev.call(
            id,
            &[Value::Int(0), Value::Int(1)],
            EdgeCtx::default(),
            &mut BufferedOutput::default(),
            &mut mem,
        );
        assert_eq!(mem.atomics, 1);
        assert!(mem.computes > 0);
    }

    #[test]
    fn edge_weight_context() {
        let mut prog = Program::new();
        prog.add_property("acc", Type::Int, Expr::int(0));
        let mut f = Function::new("f", vec![Param::new("dst", Type::Vertex)], None);
        f.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::prop("acc", Expr::var("dst")),
            value: Expr::intrinsic(ugc_graphir::types::Intrinsic::EdgeWeight, vec![]),
        }));
        prog.add_function(f);
        let (udfs, props, globals, graph) = setup(&prog, 3);
        let ev = Evaluator::new(&udfs, &props, &globals, &graph);
        ev.call(
            udfs.id_of("f").unwrap(),
            &[Value::Int(1)],
            EdgeCtx { weight: 42 },
            &mut NullOutput,
            &mut NullMemory,
        );
        assert_eq!(props.read(props.id_of("acc").unwrap(), 1), Value::Int(42));
    }
}
