//! Self-contained pseudo-random number generation.
//!
//! The reproduction is hermetic: no crates-io dependencies, mirroring the
//! paper's self-contained per-GraphVM runtime libraries. This module is the
//! in-tree replacement for the `rand` crate everywhere randomness is needed
//! (graph generators, the property-test harness, benchmark shuffling).
//!
//! Two generators, both public domain algorithms:
//!
//! * [`SplitMix64`] (Steele et al.) — a tiny 64-bit mixer. Used to expand a
//!   user seed into generator state and to derive independent streams
//!   (e.g. one per property-test case) from a base seed.
//! * [`Prng`] — xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//!   exactly as its authors recommend. Fast, 2^256-1 period, passes BigCrush.
//!
//! Everything is deterministic per seed: the same seed always yields the
//! same sequence, on every platform and thread, which is what keeps graph
//! generation and benchmarks reproducible.
//!
//! # Example
//!
//! ```
//! use ugc_graph::prng::Prng;
//!
//! let mut rng = Prng::new(42);
//! let x = rng.gen_f64();           // uniform in [0, 1)
//! let w = rng.gen_range(1..=64);   // uniform inclusive range
//! let i = rng.gen_range(0..100usize);
//! assert!((0.0..1.0).contains(&x));
//! assert!((1..=64).contains(&w));
//! assert!(i < 100);
//! // Same seed, same stream:
//! assert_eq!(Prng::new(7).gen_u64(), Prng::new(7).gen_u64());
//! ```

/// SplitMix64: a 64-bit state mixer with a simple additive state update.
///
/// Good enough as a standalone generator for non-statistical uses, and the
/// recommended seeder for the xoshiro family (it guarantees the expanded
/// state is not all-zero and decorrelates nearby seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer with the given state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator of the reproduction.
///
/// Seeded from a single `u64` through [`SplitMix64`]. All derived sampling
/// (floats, bounded integers, ranges) goes through [`Prng::gen_u64`], so the
/// whole API is deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator for stream `stream` of base seed `seed`.
    ///
    /// Distinct streams of the same seed are decorrelated (each stream index
    /// is mixed into the seed through SplitMix64 before state expansion),
    /// which gives test harnesses one independent generator per case while
    /// staying reproducible from a single base seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        Self::new(sm2.next_u64())
    }

    /// Returns the next 64-bit output (xoshiro256++ scrambler).
    pub fn gen_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of [`Prng::gen_u64`]).
    pub fn gen_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `u64` in `[0, bound)` without modulo bias (rejection
    /// sampling on the top of the range). `bound` must be nonzero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded_u64 bound must be nonzero");
        // Reject the final partial copy of [0, bound) in [0, 2^64).
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.gen_u64();
            if v < zone || zone == 0 {
                return v % bound;
            }
        }
    }

    /// Uniform sample from an integer range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1..=64)`. Panics on empty ranges.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer ranges [`Prng::gen_range`] can sample from.
pub trait SampleRange {
    /// The integer type produced.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range of a 64-bit type.
                    return rng.gen_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 reference vectors for seed 1234567
    /// (from the test suite accompanying the reference C implementation).
    #[test]
    fn splitmix64_known_answers() {
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Prng::new(99);
            (0..64).map(|_| r.gen_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::new(99);
            (0..64).map(|_| r.gen_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(
            (0..8).map(|_| a.gen_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = Prng::with_stream(5, 0);
        let mut b = Prng::with_stream(5, 1);
        assert_ne!(a.gen_u64(), b.gen_u64());
        // …but reproducible.
        assert_eq!(
            Prng::with_stream(5, 1).gen_u64(),
            Prng::with_stream(5, 1).gen_u64()
        );
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut r = Prng::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_hit_all_values_roughly_uniformly() {
        let mut r = Prng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn inclusive_range_includes_endpoints() {
        let mut r = Prng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.gen_range(1..=8) {
                1 => saw_lo = true,
                8 => saw_hi = true,
                v => assert!((1..=8).contains(&v)),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn signed_ranges_work() {
        let mut r = Prng::new(13);
        for _ in 0..1000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(21);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle was identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Prng::new(17);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
