//! Criterion bench regenerating Fig. 9: the UGC GPU GraphVM against the
//! Gunrock/GSwitch/SEP-Graph mini-frameworks on the same simulator.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ugc::{Algorithm, Target};
use ugc_baselines::gpu_frameworks::{run_framework, Framework};
use ugc_bench::{measure, tuned_schedule_for};
use ugc_graph::{Dataset, Scale};
use ugc_sim_gpu::GpuConfig;

fn bench_pair(c: &mut Criterion, algo: Algorithm, key: &'static str, dataset: Dataset) {
    let graph = dataset.generate(Scale::Tiny);
    let mut group = c.benchmark_group(format!("fig9/{}/{}", algo.name(), dataset.abbrev()));
    group.sample_size(10);
    let sched = tuned_schedule_for(Target::Gpu, algo, &graph);
    group.bench_function("UGC", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let m = measure(Target::Gpu, algo, &graph, sched.clone(), 1);
                total += Duration::from_secs_f64(m.time_ms / 1e3);
            }
            total
        })
    });
    for f in Framework::ALL {
        group.bench_function(f.name(), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = run_framework(f, key, &graph, 0, GpuConfig::default());
                    total += Duration::from_nanos(r.cycles);
                }
                total
            })
        });
    }
    group.finish();
}

fn fig9(c: &mut Criterion) {
    bench_pair(c, Algorithm::Bfs, "bfs", Dataset::Twitter);
    bench_pair(c, Algorithm::Bfs, "bfs", Dataset::RoadNetCa);
    bench_pair(c, Algorithm::Sssp, "sssp", Dataset::RoadNetCa);
    bench_pair(c, Algorithm::PageRank, "pr", Dataset::Twitter);
    bench_pair(c, Algorithm::Cc, "cc", Dataset::Twitter);
    bench_pair(c, Algorithm::Bc, "bc", Dataset::Twitter);
}

fn config() -> Criterion {
    // Deterministic simulated timings have zero variance, which the
    // plotting backend cannot render.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig9
}
criterion_main!(benches);
