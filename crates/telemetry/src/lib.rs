//! Unified telemetry layer (paper §IV observability substrate).
//!
//! Every crate that used to keep ad-hoc private `AtomicU64` perf counters
//! (the runtime pool, the three timing simulators, the CPU executor) now
//! publishes through this one registry, so cycle-attribution claims are
//! checkable by tests and reportable by `repro --profile`.
//!
//! Design constraints, in order:
//!
//! 1. **Hermetic**: std only, like the rest of the workspace.
//! 2. **Cheap enough to stay on in release builds**: a counter bump is one
//!    relaxed `fetch_add`; a disabled counter is a `None` check.
//! 3. **Near-no-op when disabled**: `UGC_TELEMETRY=0` makes every
//!    constructor hand out unregistered handles whose operations are a
//!    single branch, and the global registry stays empty.
//! 4. **Stable snapshots**: [`Registry::snapshot`] returns a sorted
//!    key/value model; [`Snapshot::to_json_lines`] serializes to the same
//!    one-object-per-line JSON the bench harness emits, so profile data
//!    appends straight into `BENCH_*.json`.
//!
//! Counters are identified by dotted string names (`sim_gpu.cycles.compute`,
//! `pool.steals`). Registration is idempotent — constructing a [`Counter`]
//! with an existing name returns a handle to the same cell, which keeps
//! per-run executor clones and re-entrant VMs from double-counting setup.
//!
//! The names are a flat namespace; the convention used across the
//! workspace is `<component>.<group>.<metric>` with cycle attributions
//! under `<sim>.cycles.<component>` summing exactly to
//! `<sim>.cycles.total` (asserted by `tests/telemetry_invariants.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether telemetry is collected in this process.
///
/// Reads `UGC_TELEMETRY` once (first call wins, cached for the process
/// lifetime): unset, `1`, or anything else truthy means **on**; `0`,
/// `false`, or `off` (case-insensitive) means **off**. Defaulting to on is
/// deliberate — the whole layer is cheap enough for release builds, and
/// profiling data that exists only in special builds never gets looked at.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("UGC_TELEMETRY") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    })
}

struct Inner {
    cells: BTreeMap<String, &'static AtomicU64>,
}

/// The process-wide counter registry.
///
/// Cells are `&'static AtomicU64` leaked on first registration: the set of
/// counter names is small and fixed by the code, so the "leak" is a
/// one-time allocation that buys lock-free increments forever after.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// The global registry every [`Counter`] registers into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| Registry {
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
            }),
        })
    }

    /// The cell for `name`, creating it at zero if new.
    fn cell(&self, name: &str) -> &'static AtomicU64 {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.cells.get(name) {
            return c;
        }
        let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        inner.cells.insert(name.to_string(), cell);
        cell
    }

    /// A stable, sorted point-in-time copy of every registered counter.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            entries: inner
                .cells
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Number of registered counters (0 when telemetry is disabled).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().cells.len()
    }

    /// True when nothing has registered (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shorthand for [`Registry::global`]`().snapshot()`.
pub fn snapshot() -> Snapshot {
    Registry::global().snapshot()
}

/// A monotonically increasing relaxed counter.
///
/// `Counter::new` is the only constructor that touches the registry lock;
/// call it once (typically behind a `OnceLock` holding the component's
/// counter struct) and keep the handle. When telemetry is disabled the
/// handle is empty and every operation is a single branch.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: Option<&'static AtomicU64>,
}

impl Counter {
    /// Registers (or re-attaches to) the counter named `name`.
    pub fn new(name: &str) -> Counter {
        Counter {
            cell: enabled().then(|| Registry::global().cell(name)),
        }
    }

    /// A handle that never counts, regardless of `UGC_TELEMETRY`.
    pub const fn disabled() -> Counter {
        Counter { cell: None }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// True when this handle actually records.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("live", &self.is_live())
            .field("value", &self.get())
            .finish()
    }
}

/// A monotonic wall-clock span timer: `<name>.ns` accumulates elapsed
/// nanoseconds, `<name>.calls` counts completed spans.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    ns: Counter,
    calls: Counter,
}

impl Span {
    /// Registers the `<name>.ns` / `<name>.calls` counter pair.
    pub fn new(name: &str) -> Span {
        Span {
            ns: Counter::new(&format!("{name}.ns")),
            calls: Counter::new(&format!("{name}.calls")),
        }
    }

    /// Starts timing; the guard records on drop. When telemetry is
    /// disabled this never reads the clock.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            span: self,
            t0: self.ns.is_live().then(Instant::now),
        }
    }

    /// Records an externally measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.ns.add(ns);
        self.calls.incr();
    }

    /// Total nanoseconds recorded so far.
    pub fn total_ns(&self) -> u64 {
        self.ns.get()
    }
}

/// RAII guard from [`Span::start`]; records the elapsed time when dropped.
pub struct SpanGuard<'a> {
    span: &'a Span,
    t0: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            self.span.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Number of power-of-two buckets in a [`Histogram`] (values above
/// `2^(BUCKETS-2)` land in the last, open-ended bucket).
pub const HIST_BUCKETS: usize = 18;

/// A labeled log2 histogram backed by plain counters.
///
/// Bucket `k` (key `<name>.le{k:02}`) counts samples `v` with
/// `v <= 2^k`, except the last bucket which is open-ended. `<name>.count`
/// and `<name>.sum` ride along so tests can derive means. Everything is a
/// counter underneath, so histograms inherit monotonicity and snapshot
/// stability for free.
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    buckets: [Counter; HIST_BUCKETS],
    count: Counter,
    sum: Counter,
}

impl Histogram {
    /// Registers the histogram's bucket and aggregate counters.
    pub fn new(name: &str) -> Histogram {
        let mut buckets = [Counter::disabled(); HIST_BUCKETS];
        if enabled() {
            for (k, b) in buckets.iter_mut().enumerate() {
                *b = Counter::new(&format!("{name}.le{k:02}"));
            }
        }
        Histogram {
            buckets,
            count: Counter::new(&format!("{name}.count")),
            sum: Counter::new(&format!("{name}.sum")),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.count.is_live() {
            return;
        }
        let k = if v <= 1 {
            0
        } else {
            let exp = (64 - (v - 1).leading_zeros()) as usize;
            exp.min(HIST_BUCKETS - 1)
        };
        self.buckets[k].incr();
        self.count.incr();
        self.sum.add(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }
}

/// A sorted point-in-time key/value view of the registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    entries: Vec<(String, u64)>,
}

impl Snapshot {
    /// The sorted `(name, value)` pairs.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Value of `name`, defaulting to 0 when absent.
    pub fn value(&self, name: &str) -> u64 {
        self.get(name).unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Mean of the samples recorded into histogram `name`
    /// (`<name>.sum / <name>.count`), or `None` when the histogram is
    /// absent or empty. This is the read side of [`Histogram`]'s
    /// aggregate counters — profile reports use it to summarize e.g.
    /// the executed `pool.chunk_size` distribution in one number.
    pub fn histogram_mean(&self, name: &str) -> Option<f64> {
        let count = self.get(&format!("{name}.count"))?;
        if count == 0 {
            return None;
        }
        let sum = self.get(&format!("{name}.sum")).unwrap_or(0);
        Some(sum as f64 / count as f64)
    }

    /// The entries whose names start with `prefix`, as a new snapshot.
    pub fn filter_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// True when no counters are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of counters present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Per-key difference `self - earlier`, dropping keys that did not
    /// move. Counters are monotonic, so a key present in both snapshots
    /// never goes negative; keys new in `self` keep their full value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter_map(|(k, v)| {
                    let d = v - earlier.value(k);
                    (d != 0).then(|| (k.clone(), d))
                })
                .collect(),
        }
    }

    /// One JSON object per counter, one per line, in sorted key order —
    /// the same line-oriented shape the bench harness emits, so profile
    /// snapshots append directly into `BENCH_*.json` collections.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(&format!(
                "{{\"counter\":\"{}\",\"value\":{}}}\n",
                json_str(k),
                v
            ));
        }
        out
    }
}

/// Minimal JSON string escaper (same dialect as the bench harness).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Scoped delta collector: captures a baseline snapshot at construction
/// and reports only what moved since. Global counters accumulate for the
/// life of the process; collectors are how callers get per-run numbers
/// (and how two identical seeded runs produce byte-identical snapshots).
#[derive(Debug, Clone)]
pub struct Collector {
    base: Snapshot,
}

impl Collector {
    /// Starts a collection scope at the current counter values.
    pub fn start() -> Collector {
        Collector { base: snapshot() }
    }

    /// Everything that moved since [`Collector::start`].
    pub fn snapshot(&self) -> Snapshot {
        snapshot().diff(&self.base)
    }

    /// The delta restricted to counters under `prefix`.
    pub fn snapshot_prefix(&self, prefix: &str) -> Snapshot {
        self.snapshot().filter_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole suite honors UGC_TELEMETRY: when the process runs with it
    // disabled, constructors hand out dead handles and the registry stays
    // empty, which is itself the property worth checking.

    #[test]
    fn counter_accumulates_or_stays_dead() {
        let c = Counter::new("telemetry_test.counter_accumulates");
        let before = c.get();
        c.incr();
        c.add(4);
        if enabled() {
            assert_eq!(c.get(), before + 5);
            assert_eq!(
                snapshot().value("telemetry_test.counter_accumulates"),
                c.get()
            );
        } else {
            assert_eq!(c.get(), 0);
            assert!(Registry::global().is_empty());
            assert!(snapshot().is_empty());
        }
    }

    #[test]
    fn same_name_is_same_cell() {
        let a = Counter::new("telemetry_test.same_cell");
        let b = Counter::new("telemetry_test.same_cell");
        a.add(3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn disabled_handle_never_registers() {
        let c = Counter::disabled();
        c.add(7);
        assert_eq!(c.get(), 0);
        assert!(!c.is_live());
        assert_eq!(snapshot().get("telemetry_test.never_registered"), None);
    }

    #[test]
    fn span_records_calls_and_time() {
        let s = Span::new("telemetry_test.span");
        {
            let _g = s.start();
        }
        s.record_ns(250);
        if enabled() {
            let snap = snapshot();
            assert_eq!(snap.value("telemetry_test.span.calls"), 2);
            assert!(snap.value("telemetry_test.span.ns") >= 250);
        } else {
            assert_eq!(s.total_ns(), 0);
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new("telemetry_test.hist");
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        if enabled() {
            let snap = snapshot();
            assert_eq!(snap.value("telemetry_test.hist.count"), 7);
            // 0 and 1 in bucket 0; 2 in bucket 1; 3 and 4 in bucket 2.
            assert_eq!(snap.value("telemetry_test.hist.le00"), 2);
            assert_eq!(snap.value("telemetry_test.hist.le01"), 1);
            assert_eq!(snap.value("telemetry_test.hist.le02"), 2);
            assert_eq!(snap.value("telemetry_test.hist.le10"), 1);
            assert_eq!(
                snap.value(&format!("telemetry_test.hist.le{:02}", HIST_BUCKETS - 1)),
                1
            );
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn histogram_mean_derives_from_aggregates() {
        let h = Histogram::new("telemetry_test.mean_hist");
        for v in [10, 20, 30] {
            h.record(v);
        }
        let snap = snapshot();
        if enabled() {
            assert_eq!(snap.histogram_mean("telemetry_test.mean_hist"), Some(20.0));
        } else {
            assert_eq!(snap.histogram_mean("telemetry_test.mean_hist"), None);
        }
        assert_eq!(snap.histogram_mean("telemetry_test.no_such_hist"), None);
    }

    #[test]
    fn collector_reports_only_deltas() {
        let c = Counter::new("telemetry_test.delta");
        c.add(10);
        let scope = Collector::start();
        assert!(scope.snapshot_prefix("telemetry_test.delta").is_empty());
        c.add(32);
        if enabled() {
            let delta = scope.snapshot_prefix("telemetry_test.delta");
            assert_eq!(delta.value("telemetry_test.delta"), 32);
            assert_eq!(delta.len(), 1);
        } else {
            assert!(scope.snapshot().is_empty());
        }
    }

    #[test]
    fn snapshot_is_sorted_and_diff_drops_unmoved() {
        let a = Counter::new("telemetry_test.sorted.a");
        let b = Counter::new("telemetry_test.sorted.b");
        a.incr();
        b.incr();
        let before = snapshot();
        a.incr();
        let delta = snapshot().diff(&before);
        let keys: Vec<_> = snapshot()
            .entries()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot keys must be sorted");
        if enabled() {
            assert_eq!(delta.value("telemetry_test.sorted.a"), 1);
            assert_eq!(delta.get("telemetry_test.sorted.b"), None);
        }
    }

    #[test]
    fn json_lines_shape_and_escaping() {
        let snap = Snapshot {
            entries: vec![("weird\"name\\x".to_string(), 3), ("z".to_string(), 0)],
        };
        let text = snap.to_json_lines();
        assert_eq!(
            text,
            "{\"counter\":\"weird\\\"name\\\\x\",\"value\":3}\n{\"counter\":\"z\",\"value\":0}\n"
        );
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
