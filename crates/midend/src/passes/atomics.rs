//! Dependence analysis and atomics insertion (paper §III-A, Table III
//! "Property Analysis/Atomic Insertion").
//!
//! Whether a UDF's update needs hardware synchronization depends on the
//! schedule: in push direction the parallel loop owns the *source* vertex,
//! so writes indexed by `dst` race and need atomics, while writes indexed
//! by `src` do not; pull direction is the mirror image; edge-based
//! parallelism owns nothing, so every property update is atomic. This is
//! exactly why the paper runs this pass *after* direction lowering.
//!
//! The pass sets [`keys::IS_ATOMIC`] on `Reduce` statements,
//! `CompareAndSwap` expressions and `UpdatePriority` statements inside each
//! iterator's UDF, cloning the UDF when it is shared by several iterators
//! with potentially different requirements.

use std::collections::HashMap;

use ugc_graphir::ir::{ExprKind, LValue, Program, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::Direction;
use ugc_graphir::visit::{stmt_exprs_mut, walk_expr_mut, walk_stmts, walk_stmts_mut};

use crate::MidendError;

/// Runs the pass. See the module docs.
///
/// # Errors
///
/// Returns an error when an iterator references an unknown UDF.
pub fn run(prog: &mut Program) -> Result<(), MidendError> {
    // Who applies what (edge iterators and vertex iterators).
    #[derive(Clone)]
    struct Use {
        func: String,
        /// Parameter index owned by the parallel loop (None = nothing owned).
        owned: Option<usize>,
    }
    let mut uses: Vec<Use> = Vec::new();
    walk_stmts(&prog.main, &mut |s| match &s.kind {
        StmtKind::EdgeSetIterator(d) => {
            let owned = if s.meta.flag(keys::IS_EDGE_PARALLEL) {
                None
            } else {
                match s.meta.get_direction(keys::DIRECTION) {
                    Some(Direction::Pull) => Some(1),
                    _ => Some(0),
                }
            };
            uses.push(Use {
                func: d.apply.clone(),
                owned,
            });
        }
        StmtKind::VertexSetIterator { apply, .. } => {
            uses.push(Use {
                func: apply.clone(),
                owned: Some(0),
            });
        }
        _ => {}
    });

    let mut use_count: HashMap<String, usize> = HashMap::new();
    for u in &uses {
        *use_count.entry(u.func.clone()).or_insert(0) += 1;
    }

    let mut clone_counter = 0usize;
    for u in &uses {
        let func = prog.function(&u.func).ok_or_else(|| {
            MidendError::new(format!("iterator applies unknown UDF `{}`", u.func))
        })?;
        let owned_param: Option<String> = u
            .owned
            .and_then(|i| func.params.get(i).map(|p| p.name.clone()));

        if use_count[&u.func] > 1 {
            // Shared: specialize a clone for this use.
            let new_name = format!("{}__at{clone_counter}", u.func);
            clone_counter += 1;
            let mut clone = func.clone();
            clone.name = new_name.clone();
            mark_body(&mut clone.body, owned_param.as_deref());
            prog.add_function(clone);
            // Repoint exactly one not-yet-specialized use.
            let old = u.func.clone();
            let mut done = false;
            walk_stmts_mut(&mut prog.main, &mut |s| {
                if done {
                    return;
                }
                match &mut s.kind {
                    StmtKind::EdgeSetIterator(d) if d.apply == old => {
                        d.apply = new_name.clone();
                        done = true;
                    }
                    StmtKind::VertexSetIterator { apply, .. } if *apply == old => {
                        *apply = new_name.clone();
                        done = true;
                    }
                    _ => {}
                }
            });
        } else {
            let name = u.func.clone();
            let owned = owned_param;
            let f = prog.function_mut(&name).expect("checked above");
            mark_body(&mut f.body, owned.as_deref());
        }
    }
    Ok(())
}

fn index_is_owned(index: &ugc_graphir::ir::Expr, owned: Option<&str>) -> bool {
    match (&index.kind, owned) {
        (ExprKind::Var(v), Some(o)) => v == o,
        _ => false,
    }
}

fn mark_body(body: &mut [ugc_graphir::ir::Stmt], owned: Option<&str>) {
    walk_stmts_mut(body, &mut |s| {
        let meta_atomic = match &s.kind {
            StmtKind::Reduce {
                target: LValue::Prop { index, .. },
                ..
            } => Some(!index_is_owned(index, owned)),
            StmtKind::UpdatePriority { vertex, .. } => Some(!index_is_owned(vertex, owned)),
            _ => None,
        };
        if let Some(a) = meta_atomic {
            s.meta.set(keys::IS_ATOMIC, a);
        }
        stmt_exprs_mut(s, &mut |e| {
            walk_expr_mut(e, &mut |e| {
                if let ExprKind::CompareAndSwap { index, .. } = &e.kind {
                    let a = !index_is_owned(index, owned);
                    e.meta.set(keys::IS_ATOMIC, a);
                }
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::passes::{direction, tracking};
    use ugc_graphir::printer::print_function;
    use ugc_schedule::{apply_schedule, SchedDirection, ScheduleRef, SimpleSchedule};

    #[derive(Debug)]
    struct Sched(SchedDirection);
    impl SimpleSchedule for Sched {
        fn direction(&self) -> SchedDirection {
            self.0
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    const CC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const IDs : vector{Vertex}(int) = 0;
func upd(src : Vertex, dst : Vertex)
    IDs[dst] min= IDs[src];
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(8);
    #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(upd, IDs);
end
"#;

    fn pipeline(src: &str, dir: SchedDirection) -> Program {
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        apply_schedule(&mut p, "s1", ScheduleRef::simple(Sched(dir))).unwrap();
        direction::run(&mut p).unwrap();
        tracking::run(&mut p).unwrap();
        run(&mut p).unwrap();
        p
    }

    #[test]
    fn push_marks_dst_write_atomic() {
        let p = pipeline(CC, SchedDirection::Push);
        let f = p
            .functions
            .iter()
            .find(|f| f.name.starts_with("upd__trk"))
            .unwrap();
        let text = print_function(f);
        assert!(text.contains("is_atomic=true"), "{text}");
    }

    #[test]
    fn pull_leaves_dst_write_plain() {
        let p = pipeline(CC, SchedDirection::Pull);
        let f = p
            .functions
            .iter()
            .find(|f| f.name.starts_with("upd__trk"))
            .unwrap();
        let text = print_function(f);
        assert!(text.contains("is_atomic=false"), "{text}");
    }

    #[test]
    fn vertex_iterator_owned_writes_plain() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const vertices : vertexset{Vertex} = edges.getVertices();
const r : vector{Vertex}(float) = 0.0;
func reset(v : Vertex)
    r[v] += 1.0;
end
func main()
    vertices.apply(reset);
end
"#;
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        direction::run(&mut p).unwrap();
        run(&mut p).unwrap();
        let text = print_function(p.function("reset").unwrap());
        assert!(text.contains("is_atomic=false"), "{text}");
    }

    #[test]
    fn shared_udf_cloned_per_use() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const r : vector{Vertex}(float) = 0.0;
func f(src : Vertex, dst : Vertex)
    r[dst] += 1.0;
end
func main()
    #s1# edges.apply(f);
    #s2# edges.apply(f);
end
"#;
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        direction::run(&mut p).unwrap();
        run(&mut p).unwrap();
        assert!(p.function("f__at0").is_some());
        assert!(p.function("f__at1").is_some());
        // All iterator uses repointed away from the shared original.
        walk_stmts(&p.main, &mut |s| {
            if let StmtKind::EdgeSetIterator(d) = &s.kind {
                assert_ne!(d.apply, "f");
            }
        });
    }

    #[test]
    fn update_priority_marked_in_push() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex,int) = load("g");
const dist : vector{Vertex}(int) = 2147483647;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(dist, start_vertex);
func relax(src : Vertex, dst : Vertex, weight : int)
    var nd : int = dist[src] + weight;
    pq.updatePriorityMin(dst, nd);
end
func main()
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(relax);
        delete frontier;
    end
end
"#;
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        direction::run(&mut p).unwrap();
        run(&mut p).unwrap();
        let text = print_function(p.function("relax").unwrap());
        assert!(text.contains("UpdatePriorityMin<is_atomic=true>"), "{text}");
    }
}
