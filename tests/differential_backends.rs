//! Cross-backend differential conformance: every algorithm × a seeded
//! graph menagerie (power-law, bounded-degree, and degenerate shapes),
//! executed by all four GraphVMs under their default schedules. Results
//! must agree pairwise — after canonicalizing representation-dependent
//! outputs (BFS trees, CC label names) — and match the sequential
//! references in `ugc_algorithms`.
//!
//! On a mismatch the failure message names the graph, its generator seed,
//! and the minimized set of differing vertices, so the case can be
//! replayed directly.

use ugc::{Algorithm, Compiler, RunResult, Target, UgcError};
use ugc_algorithms::reference;
use ugc_graph::Graph;

/// One differential case: a named, seeded graph. `seed` is the generator
/// seed (0 for hand-built shapes — the edge list in this file is the
/// reproducer).
struct Case {
    name: &'static str,
    seed: u64,
    graph: Graph,
}

fn cases() -> Vec<Case> {
    let mut v = Vec::new();
    v.push(Case {
        name: "empty",
        seed: 0,
        graph: Graph::from_edges(0, &[]),
    });
    v.push(Case {
        name: "single_vertex",
        seed: 0,
        graph: Graph::from_edges(1, &[]),
    });
    // Self-loops and duplicate (multi-)edges, symmetric, weighted.
    v.push(Case {
        name: "self_loop_multi_edge",
        seed: 0,
        graph: Graph::from_weighted_edges(
            4,
            &[
                (0, 0, 1),
                (0, 1, 2),
                (0, 1, 2), // duplicate edge
                (1, 0, 2),
                (1, 0, 2),
                (1, 2, 3),
                (2, 1, 3),
                (2, 2, 4),
                (2, 3, 1),
                (3, 2, 1),
            ],
        ),
    });
    // Two components; vertex 0's component reaches only half the graph.
    v.push(Case {
        name: "disconnected",
        seed: 0,
        graph: Graph::from_weighted_edges(
            6,
            &[
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 2),
                (2, 1, 2),
                (3, 4, 1),
                (4, 3, 1),
                (4, 5, 3),
                (5, 4, 3),
            ],
        ),
    });
    for seed in [11u64, 23] {
        v.push(Case {
            name: "rmat_powerlaw",
            seed,
            graph: ugc_graph::generators::rmat(7, 4, seed, true),
        });
    }
    v.push(Case {
        name: "road_grid_bounded",
        seed: 13,
        graph: ugc_graph::generators::road_grid(10, 10, 0.05, 13, true),
    });
    v.push(Case {
        name: "uniform_bounded",
        seed: 17,
        graph: ugc_graph::generators::uniform_random(150, 450, 17, true),
    });
    // Adversarial shapes for the scenario suite (TC/k-core/LP): maximum
    // triangle density, a triangle-free bipartite shape, a coreness-1
    // path, and a barbell whose bridge peels in a cascade.
    v.push(Case {
        name: "clique_batch",
        seed: 0,
        graph: ugc_graph::generators::clique_batch(3, 5),
    });
    v.push(Case {
        name: "bipartite",
        seed: 0,
        graph: ugc_graph::generators::bipartite(4, 5),
    });
    v.push(Case {
        name: "long_path",
        seed: 0,
        graph: sym_path(24),
    });
    v.push(Case {
        name: "barbell",
        seed: 0,
        graph: ugc_graph::generators::barbell(5, 3),
    });
    v
}

/// Symmetric path (both directions per chain edge); hand-built, so the
/// edge list here is the reproducer.
fn sym_path(n: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 0..n.saturating_sub(1) as u32 {
        edges.push((v, v + 1));
        edges.push((v + 1, v));
    }
    Graph::from_edges(n, &edges)
}

fn run_backend(target: Target, algo: Algorithm, graph: &Graph) -> Result<RunResult, UgcError> {
    let mut c = Compiler::new(algo);
    if algo.needs_start_vertex() {
        c.start_vertex(0);
    }
    c.run(target, graph)
}

/// BFS parent arrays differ between valid runs (any shortest-path tree is
/// correct); the tree *depths* are canonical and must equal the reference
/// level of each vertex.
fn depths_from_parents(parents: &[i64]) -> Vec<i64> {
    let n = parents.len();
    let mut depth = vec![-1i64; n];
    for start in 0..n {
        if depth[start] >= 0 || parents[start] < 0 {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = start;
        let base = loop {
            if depth[cur] >= 0 {
                break depth[cur];
            }
            let p = parents[cur];
            assert!(p >= 0, "vertex {cur} on a parent chain has no parent");
            if p as usize == cur {
                break 0; // root: parent[v] == v
            }
            chain.push(cur);
            cur = p as usize;
            assert!(
                chain.len() <= n,
                "parent cycle detected through vertex {start}"
            );
        };
        if depth[cur] < 0 {
            depth[cur] = base;
        }
        for (i, &v) in chain.iter().rev().enumerate() {
            depth[v] = depth[cur] + 1 + i as i64;
        }
    }
    depth
}

/// CC labels are canonical up to renaming: rewrite each label to the
/// smallest vertex id that carries it.
fn canonical_labels(labels: &[i64]) -> Vec<i64> {
    let mut min_of = std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        let e = min_of.entry(l).or_insert(v as i64);
        *e = (*e).min(v as i64);
    }
    labels.iter().map(|l| min_of[l]).collect()
}

/// The vertices where two integer vectors differ, minimized for the
/// failure message (sorted, capped).
fn diff_ints(a: &[i64], b: &[i64]) -> Vec<usize> {
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(i, _)| i)
        .take(8)
        .collect()
}

fn diff_floats(a: &[f64], b: &[f64], tol: f64) -> Vec<usize> {
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (x, y))| (*x - *y).abs() > tol)
        .map(|(i, _)| i)
        .take(8)
        .collect()
}

fn assert_int_match(case: &Case, algo: Algorithm, who: &str, got: &[i64], expect: &[i64]) {
    let bad = diff_ints(got, expect);
    assert!(
        bad.is_empty(),
        "{}/{} ({}, seed {}): differs at minimized vertex set {:?} \
         (got {:?}, expected {:?})",
        algo.name(),
        who,
        case.name,
        case.seed,
        bad,
        bad.iter().map(|&v| got[v]).collect::<Vec<_>>(),
        bad.iter().map(|&v| expect[v]).collect::<Vec<_>>(),
    );
}

fn assert_float_match(case: &Case, algo: Algorithm, who: &str, got: &[f64], expect: &[f64]) {
    let tol = 1e-6;
    let bad = diff_floats(got, expect, tol);
    assert!(
        bad.is_empty(),
        "{}/{} ({}, seed {}): differs at minimized vertex set {:?} \
         (got {:?}, expected {:?}, tol {tol})",
        algo.name(),
        who,
        case.name,
        case.seed,
        bad,
        bad.iter().map(|&v| got[v]).collect::<Vec<_>>(),
        bad.iter().map(|&v| expect[v]).collect::<Vec<_>>(),
    );
}

/// Runs one algorithm over one case on all four backends and checks
/// pairwise agreement plus agreement with the sequential reference.
fn differential(algo: Algorithm, case: &Case) {
    if algo.needs_start_vertex() && case.graph.num_vertices() == 0 {
        // No valid start vertex exists; nothing to compare.
        return;
    }
    let runs: Vec<(Target, Result<RunResult, UgcError>)> = Target::ALL
        .into_iter()
        .map(|t| (t, run_backend(t, algo, &case.graph)))
        .collect();
    // All four backends must agree on whether the case runs at all.
    let failures: Vec<String> = runs
        .iter()
        .filter_map(|(t, r)| r.as_ref().err().map(|e| format!("{}: {e}", t.name())))
        .collect();
    if !failures.is_empty() {
        assert_eq!(
            failures.len(),
            runs.len(),
            "{} ({}, seed {}): some backends failed while others ran: {failures:?}",
            algo.name(),
            case.name,
            case.seed
        );
        return;
    }
    let ok: Vec<(Target, RunResult)> = runs
        .into_iter()
        .map(|(t, r)| (t, r.expect("checked above")))
        .collect();

    match algo {
        Algorithm::Bfs => {
            let reference = reference::bfs_levels(&case.graph, 0);
            for (t, run) in &ok {
                let depths = depths_from_parents(run.property_ints("parent"));
                assert_int_match(case, algo, t.name(), &depths, &reference);
            }
        }
        Algorithm::Sssp => {
            let reference = reference::dijkstra(&case.graph, 0);
            for (t, run) in &ok {
                assert_int_match(case, algo, t.name(), run.property_ints("dist"), &reference);
            }
        }
        Algorithm::Cc => {
            let reference = canonical_labels(&reference::cc_labels(&case.graph));
            for (t, run) in &ok {
                let canon = canonical_labels(run.property_ints("IDs"));
                assert_int_match(case, algo, t.name(), &canon, &reference);
            }
        }
        Algorithm::PageRank => {
            // Backends agree pairwise (within float-accumulation noise);
            // the first backend anchors the comparison.
            let (t0, anchor) = &ok[0];
            let anchor_ranks = anchor.property_floats("old_rank");
            for (t, run) in &ok[1..] {
                assert_float_match(
                    case,
                    algo,
                    &format!("{} vs {}", t.name(), t0.name()),
                    run.property_floats("old_rank"),
                    anchor_ranks,
                );
            }
            if case.graph.num_vertices() > 0 {
                ugc_algorithms::validate::check_pagerank(&case.graph, anchor_ranks, 1e-7)
                    .unwrap_or_else(|e| {
                        panic!(
                            "PR/{} ({}, seed {}): reference check failed: {e}",
                            t0.name(),
                            case.name,
                            case.seed
                        )
                    });
            }
        }
        Algorithm::Bc => {
            let reference = reference::bc_dependencies(&case.graph, 0);
            for (t, run) in &ok {
                assert_float_match(
                    case,
                    algo,
                    t.name(),
                    run.property_floats("centrality"),
                    &reference,
                );
            }
        }
        Algorithm::Tc => {
            // Integer arithmetic: counts must match the reference exactly,
            // including duplicate-edge and self-loop contributions.
            let reference = reference::triangle_counts(&case.graph);
            for (t, run) in &ok {
                assert_int_match(case, algo, t.name(), run.property_ints("tri"), &reference);
            }
        }
        Algorithm::KCore => {
            // The coreness vector is canonical (peeling order does not
            // affect it), so the comparison is exact.
            let reference = reference::coreness(&case.graph);
            for (t, run) in &ok {
                assert_int_match(case, algo, t.name(), run.property_ints("core"), &reference);
            }
        }
        Algorithm::Lp => {
            // Label values are representation-dependent; the induced
            // partition is canonical. Rewriting every label to the
            // smallest vertex id carrying it compares partitions exactly.
            let reference = canonical_labels(&reference::label_propagation(&case.graph, 20, 1));
            for (t, run) in &ok {
                let canon = canonical_labels(run.property_ints("labels"));
                assert_int_match(case, algo, t.name(), &canon, &reference);
            }
        }
    }
}

fn run_algo_over_all_cases(algo: Algorithm) {
    for case in cases() {
        differential(algo, &case);
    }
}

#[test]
fn differential_pagerank() {
    run_algo_over_all_cases(Algorithm::PageRank);
}

#[test]
fn differential_bfs() {
    run_algo_over_all_cases(Algorithm::Bfs);
}

#[test]
fn differential_sssp() {
    run_algo_over_all_cases(Algorithm::Sssp);
}

#[test]
fn differential_cc() {
    run_algo_over_all_cases(Algorithm::Cc);
}

#[test]
fn differential_bc() {
    run_algo_over_all_cases(Algorithm::Bc);
}

#[test]
fn differential_tc() {
    run_algo_over_all_cases(Algorithm::Tc);
}

#[test]
fn differential_kcore() {
    run_algo_over_all_cases(Algorithm::KCore);
}

#[test]
fn differential_lp() {
    run_algo_over_all_cases(Algorithm::Lp);
}

#[test]
fn bfs_depth_canonicalization_helpers() {
    // parent array: 0 is root, 1->0, 2->1, 3 unreached.
    assert_eq!(depths_from_parents(&[0, 0, 1, -1]), vec![0, 1, 2, -1]);
    // CC labels renamed consistently.
    assert_eq!(canonical_labels(&[7, 7, 3, 3]), vec![0, 0, 2, 2]);
}
