//! Frontier-reuse (liveness) analysis.
//!
//! When the input frontier of an `EdgeSetIterator` is deleted right after
//! the operator runs (the dominant pattern in round-based algorithms:
//! `output = edges.from(frontier)…; delete frontier; frontier = output`),
//! the output frontier can reuse the input's storage. The result is
//! recorded as [`keys::CAN_REUSE_FRONTIER`]; per Table III it is consumed
//! by the GPU, Swarm and HammerBlade GraphVMs and ignored by the CPU one.

use ugc_graphir::ir::{Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::visit::{stmt_exprs, walk_expr};

use crate::MidendError;

/// Runs the analysis. See the module docs.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(prog: &mut ugc_graphir::ir::Program) -> Result<(), MidendError> {
    analyze_block(&mut prog.main);
    Ok(())
}

fn analyze_block(stmts: &mut [Stmt]) {
    // Recurse into nested bodies.
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                analyze_block(then_body);
                analyze_block(else_body);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => analyze_block(body),
            _ => {}
        }
    }
    for i in 0..stmts.len() {
        let input = match &stmts[i].kind {
            StmtKind::EdgeSetIterator(d) => match (&d.input, &d.output) {
                (Some(inp), Some(_)) => inp.clone(),
                _ => continue,
            },
            _ => continue,
        };
        // The input is reusable if it is deleted before its next use.
        let mut reusable = false;
        for later in &stmts[i + 1..] {
            if let StmtKind::Delete { name } = &later.kind {
                if *name == input {
                    reusable = true;
                    break;
                }
            }
            if uses_var(later, &input) {
                break;
            }
        }
        if reusable {
            stmts[i].meta.set(keys::CAN_REUSE_FRONTIER, true);
        }
    }
}

/// Whether `stmt` (shallowly) reads or writes variable `name`.
fn uses_var(stmt: &Stmt, name: &str) -> bool {
    let mut used = false;
    stmt_exprs(stmt, &mut |e| {
        walk_expr(e, &mut |e| {
            if let ugc_graphir::ir::ExprKind::Var(v) = &e.kind {
                if v == name {
                    used = true;
                }
            }
        });
    });
    if used {
        return true;
    }
    match &stmt.kind {
        StmtKind::EdgeSetIterator(d) => {
            d.input.as_deref() == Some(name) || d.output.as_deref() == Some(name)
        }
        StmtKind::VertexSetIterator { set, .. } => set.as_deref() == Some(name),
        StmtKind::EnqueueVertex { set, .. } => set.as_deref() == Some(name),
        StmtKind::ListAppend { set, .. } => set == name,
        StmtKind::Assign {
            target: ugc_graphir::ir::LValue::Var(v),
            ..
        } => v == name,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ugc_graphir::visit::find_labeled;

    fn run_on(src: &str) -> ugc_graphir::ir::Program {
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        run(&mut p).unwrap();
        p
    }

    #[test]
    fn delete_after_iterator_marks_reusable() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
func upd(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(upd, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;
        let p = run_on(src);
        assert!(find_labeled(&p, "s1")
            .unwrap()
            .meta
            .flag(keys::CAN_REUSE_FRONTIER));
    }

    #[test]
    fn use_before_delete_blocks_reuse() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
func upd(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func mark(v : Vertex)
    parent[v] = 0;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(upd, parent, true);
    frontier.apply(mark);
    delete frontier;
end
"#;
        let p = run_on(src);
        assert!(!find_labeled(&p, "s1")
            .unwrap()
            .meta
            .flag(keys::CAN_REUSE_FRONTIER));
    }

    #[test]
    fn no_output_no_marking() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const r : vector{Vertex}(float) = 0.0;
func upd(src : Vertex, dst : Vertex)
    r[dst] += 1.0;
end
func main()
    #s1# edges.apply(upd);
end
"#;
        let p = run_on(src);
        assert!(!find_labeled(&p, "s1")
            .unwrap()
            .meta
            .flag(keys::CAN_REUSE_FRONTIER));
    }
}
