//! Comparator baselines for the paper's evaluation figures.
//!
//! * [`gpu_frameworks`] — mini reimplementations of the three GPU graph
//!   frameworks of Fig. 9 (Gunrock, GSwitch, SEP-Graph), hand-written
//!   directly against the [`ugc_sim_gpu`] simulator. Each encodes the
//!   design point the paper credits for its results: Gunrock's generic
//!   kernel-per-operation pipeline, GSwitch's adaptive direction/load-
//!   balance switching, SEP-Graph's asynchronous barrier-free execution
//!   (which beats UGC on road-graph SSSP).
//! * [`swarm_hand`] — the hand-tuned Swarm BFS/SSSP of Fig. 12 (prior-work
//!   style task programs written against the [`ugc_sim_swarm`] API),
//!   tailored to road graphs: eager per-neighbor task spawning that wins on
//!   low-degree graphs and drowns in task overhead on social graphs.

pub mod gpu_frameworks;
pub mod swarm_hand;

pub use gpu_frameworks::{run_framework, Framework, FrameworkRun};
pub use swarm_hand::{hand_tuned_bfs, hand_tuned_sssp};
