//! Regenerates representative cells of the paper's Fig. 8 heatmap:
//! baseline vs tuned schedule per architecture.
//!
//! Simulated targets report simulated time (1 cycle = 1 ns); the CPU
//! target reports wall-clock time. Runs on the in-tree timing harness
//! (warmup + median-of-N + one JSON line per cell on stdout).

use std::time::Duration;

use ugc::{Algorithm, Target};
use ugc_bench::{baseline_schedule, measure, tuned_schedule_for, Harness};
use ugc_graph::{Dataset, Scale};

fn bench_cell(h: &Harness, target: Target, algo: Algorithm, dataset: Dataset) {
    let graph = dataset.generate(Scale::Tiny);
    let group = format!(
        "fig8/{}/{}/{}",
        target.name(),
        algo.name(),
        dataset.abbrev()
    );
    for (label, sched) in [
        ("baseline", baseline_schedule(target, algo)),
        ("tuned", tuned_schedule_for(target, algo, &graph)),
    ] {
        h.bench(&group, label, || {
            let m = measure(target, algo, &graph, sched.clone(), 1);
            Duration::from_secs_f64(m.time_ms / 1e3)
        });
    }
}

fn main() {
    let h = Harness::from_args();
    // One road and one social representative per architecture.
    for target in Target::ALL {
        bench_cell(&h, target, Algorithm::Bfs, Dataset::RoadNetCa);
        bench_cell(&h, target, Algorithm::Bfs, Dataset::Pokec);
        bench_cell(&h, target, Algorithm::Sssp, Dataset::RoadNetCa);
        bench_cell(&h, target, Algorithm::PageRank, Dataset::Pokec);
        bench_cell(&h, target, Algorithm::Cc, Dataset::Pokec);
        bench_cell(&h, target, Algorithm::Bc, Dataset::Pokec);
        // The expanded suite on its most-interesting graph class: TC and
        // k-core are degenerate on road grids (≈no triangles, coreness ≤3),
        // so the social representative carries their signal.
        bench_cell(&h, target, Algorithm::Tc, Dataset::Pokec);
        bench_cell(&h, target, Algorithm::KCore, Dataset::Pokec);
        bench_cell(&h, target, Algorithm::Lp, Dataset::Pokec);
    }
}
