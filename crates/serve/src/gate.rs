//! Admission control: a bounded queue feeding a fixed set of worker
//! threads, with opportunistic batch formation at the head.
//!
//! In-flight work is bounded by the worker count (one batch per worker);
//! waiting work is bounded by the queue capacity, beyond which
//! [`Gate::submit`] rejects and the connection handler replies `err busy`
//! — backpressure the client can see instead of an unbounded pile-up.
//!
//! When a worker pops a batchable head query (BFS/SSSP), it lingers for
//! the *batch window*, collecting queries that
//! [coalesce](crate::protocol::QuerySpec::coalesces_with) with it (same
//! traversal, same cached graph) up to the batch cap. The window is the
//! latency price of coalescing and is deliberately small; a window of
//! zero degrades to strict one-query-per-traversal service.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::protocol::QuerySpec;

/// One admitted query waiting for (or riding) a traversal.
pub struct Pending {
    /// What to run.
    pub spec: QuerySpec,
    /// Where the response line goes (the connection handler blocks on the
    /// other end).
    pub reply: Sender<String>,
    /// Admission time, for the end-to-end latency histogram.
    pub enqueued: Instant,
}

struct GateState {
    queue: VecDeque<Pending>,
    open: bool,
}

/// The admission gate shared by connection handlers (producers) and
/// workers (consumers).
pub struct Gate {
    state: Mutex<GateState>,
    ready: Condvar,
    queue_cap: usize,
    batch_max: usize,
    batch_window: Duration,
}

impl Gate {
    /// A gate holding at most `queue_cap` waiting queries and forming
    /// batches of at most `batch_max` over a `batch_window` linger.
    pub fn new(queue_cap: usize, batch_max: usize, batch_window: Duration) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                queue: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            queue_cap,
            batch_max,
            batch_window,
        }
    }

    /// Admits a query, returning the queue depth after admission.
    ///
    /// # Errors
    ///
    /// Hands the query back when the queue is full or the gate is closed
    /// (shutting down); the caller replies `err busy`.
    pub fn submit(&self, p: Pending) -> Result<usize, Pending> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.open || st.queue.len() >= self.queue_cap {
            return Err(p);
        }
        st.queue.push_back(p);
        let depth = st.queue.len();
        // All waiters: an idle worker needs the new head, and a worker
        // lingering in a batch window needs to re-scan for a joiner.
        self.ready.notify_all();
        Ok(depth)
    }

    /// Stops admission; workers drain what is already queued, then their
    /// [`Gate::next_batch`] calls return `None`.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.open = false;
        self.ready.notify_all();
    }

    /// Queries currently waiting (excludes in-flight batches).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Blocks for the next unit of work: one query, plus every queued
    /// query that coalesces with it (collected over the batch window).
    /// Returns `None` once the gate is closed *and* drained.
    pub fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let head = loop {
            if let Some(head) = st.queue.pop_front() {
                break head;
            }
            if !st.open {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        let mut batch = vec![head];
        if batch[0].spec.batchable() && self.batch_max > 1 {
            let deadline = Instant::now() + self.batch_window;
            loop {
                let mut i = 0;
                while i < st.queue.len() && batch.len() < self.batch_max {
                    if batch[0].spec.coalesces_with(&st.queue[i].spec) {
                        batch.push(st.queue.remove(i).expect("index in range"));
                    } else {
                        i += 1;
                    }
                }
                if batch.len() >= self.batch_max || !st.open {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timed_out) = self
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timed_out.timed_out() {
                    // One final drain pass happens at the top of the loop;
                    // the deadline check then exits.
                }
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use ugc::Algorithm;
    use ugc_graph::{Dataset, Scale};

    fn pending(algo: Algorithm, source: u32) -> Pending {
        // The receiver is dropped: these unit tests only exercise queueing.
        let (tx, _rx) = channel();
        Pending {
            spec: QuerySpec {
                algo,
                dataset: Dataset::RoadNetCa,
                scale: Scale::Tiny,
                source,
                k: None,
                max_iters: None,
            },
            reply: tx,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn rejects_when_full_and_when_closed() {
        let gate = Gate::new(2, 4, Duration::ZERO);
        assert!(gate.submit(pending(Algorithm::Bfs, 0)).is_ok());
        assert!(gate.submit(pending(Algorithm::Bfs, 1)).is_ok());
        assert!(gate.submit(pending(Algorithm::Bfs, 2)).is_err());
        gate.close();
        assert!(gate.submit(pending(Algorithm::Bfs, 3)).is_err());
        assert_eq!(gate.depth(), 2);
    }

    #[test]
    fn coalesces_compatible_queue_entries() {
        let gate = Gate::new(16, 8, Duration::ZERO);
        gate.submit(pending(Algorithm::Bfs, 0)).ok().unwrap();
        gate.submit(pending(Algorithm::Cc, 0)).ok().unwrap();
        gate.submit(pending(Algorithm::Bfs, 5)).ok().unwrap();
        let batch = gate.next_batch().unwrap();
        let sources: Vec<u32> = batch.iter().map(|p| p.spec.source).collect();
        assert_eq!(sources, vec![0, 5], "bfs pair coalesces around the cc");
        let batch = gate.next_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].spec.algo, Algorithm::Cc);
    }

    #[test]
    fn window_waits_for_a_late_joiner() {
        let gate = Arc::new(Gate::new(16, 8, Duration::from_millis(200)));
        let g = gate.clone();
        let joiner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            g.submit(pending(Algorithm::Bfs, 7)).ok().unwrap();
        });
        gate.submit(pending(Algorithm::Bfs, 0)).ok().unwrap();
        let batch = gate.next_batch().unwrap();
        joiner.join().unwrap();
        assert_eq!(batch.len(), 2, "late joiner rode the window");
    }

    #[test]
    fn drains_after_close_then_ends() {
        let gate = Gate::new(16, 8, Duration::from_millis(50));
        gate.submit(pending(Algorithm::PageRank, 0)).ok().unwrap();
        gate.close();
        assert_eq!(gate.next_batch().unwrap().len(), 1);
        assert!(gate.next_batch().is_none());
    }

    #[test]
    fn batch_cap_is_respected() {
        let gate = Gate::new(64, 3, Duration::ZERO);
        for s in 0..5 {
            gate.submit(pending(Algorithm::Sssp, s)).ok().unwrap();
        }
        assert_eq!(gate.next_batch().unwrap().len(), 3);
        assert_eq!(gate.next_batch().unwrap().len(), 2);
    }
}
